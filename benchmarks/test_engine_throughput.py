"""Head-to-head throughput: row-wise vs vectorized execution.

Executes the Table 4.2 workload (the 40 seed-7 path queries over a DB2
instance) through both engines in the Table 4.2 configuration (nested-loop
joins, the strategy the cost-ratio experiment uses) and requires the
vectorized engine to be at least **3x** faster end to end, while returning
byte-identical rows and metrics for every plan.

Set ``REPRO_BENCH_SMOKE=1`` (as the CI smoke step does) to run the whole
benchmark for correctness but skip the speedup threshold — absolute timings
on shared CI runners are too noisy to gate on.
"""

import os
import time

from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import ConventionalPlanner, QueryExecutor, VectorizedExecutor

#: The acceptance bar for the vectorized engine on the Table 4.2 workload.
REQUIRED_SPEEDUP = 3.0

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _time_workload(executor, plans, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for plan in plans:
            executor.execute_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_beats_rowwise_on_table_4_2_workload():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB2"], query_count=40, seed=7
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    rowwise = QueryExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )
    vectorized = VectorizedExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )

    # Correctness first: identical rows and identical counters per plan.
    for plan in plans:
        row_result = rowwise.execute_plan(plan)
        vec_result = vectorized.execute_plan(plan)
        assert vec_result.rows == row_result.rows
        assert vec_result.metrics == row_result.metrics

    rowwise_time = _time_workload(rowwise, plans)
    vectorized_time = _time_workload(vectorized, plans)
    speedup = (
        rowwise_time / vectorized_time if vectorized_time > 0 else float("inf")
    )
    print()
    print(
        f"Table 4.2 workload (DB2, 40 queries, nested-loop): "
        f"rowwise {rowwise_time * 1000:.1f} ms, "
        f"vectorized {vectorized_time * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    if not SMOKE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"vectorized engine only {speedup:.2f}x faster "
            f"(need >= {REQUIRED_SPEEDUP}x)"
        )


def test_hash_join_speedup_reported():
    """The hash strategy also gains from vectorization (no hard threshold).

    Hash-join execution is dominated by irreducible per-row join probing
    and row materialization, so the win is smaller than nested-loop's; the
    assertion only requires the vectorized path not to be slower.
    """
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB2"], query_count=20, seed=7
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    rowwise = QueryExecutor(setup.schema, setup.store)
    vectorized = VectorizedExecutor(setup.schema, setup.store)
    for plan in plans:
        assert (
            vectorized.execute_plan(plan).rows == rowwise.execute_plan(plan).rows
        )
    rowwise_time = _time_workload(rowwise, plans)
    vectorized_time = _time_workload(vectorized, plans)
    speedup = (
        rowwise_time / vectorized_time if vectorized_time > 0 else float("inf")
    )
    print(f"\nhash-join workload: speedup {speedup:.2f}x")
    if not SMOKE:
        assert speedup >= 1.0, f"vectorized slower than rowwise ({speedup:.2f}x)"
