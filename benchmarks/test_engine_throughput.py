"""Head-to-head throughput: row-wise vs vectorized vs parallel execution.

Two workloads are measured:

* the Table 4.2 workload (the 40 seed-7 path queries over a DB2 instance)
  through the row-wise and vectorized engines in the Table 4.2
  configuration (nested-loop joins, the strategy the cost-ratio experiment
  uses), requiring the vectorized engine to be at least **3x** faster end
  to end while returning byte-identical rows and metrics for every plan;
* a scaled-up instance of the same workload shape (8x the DB2 class
  cardinality, 4-shard store) through the vectorized and parallel engines,
  requiring the parallel engine at 4 workers to be at least **2x** faster
  than vectorized — with identical rows and deterministically-merged,
  byte-identical metrics — whenever the machine actually has 4 cores to
  fan out to.  On fewer cores the correctness half still runs and the
  measured (physically meaningless) ratio is recorded, but the threshold
  is skipped: a fork pool cannot beat a single thread on a single core.

Set ``REPRO_BENCH_SMOKE=1`` (as the CI smoke step does) to run everything
for correctness but skip all speedup thresholds — absolute timings on
shared CI runners are too noisy to gate on.  Headline numbers land in
``BENCH_engine.json`` either way.
"""

import os
import time

from _artifacts import record_bench

from repro.data import DatabaseSpec, TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import (
    ConventionalPlanner,
    ParallelExecutor,
    QueryExecutor,
    VectorizedExecutor,
)

#: The acceptance bar for the vectorized engine on the Table 4.2 workload.
REQUIRED_SPEEDUP = 3.0

#: The acceptance bar for the parallel engine on the scaled workload.
REQUIRED_PARALLEL_SPEEDUP = 2.0

#: Worker-pool width the parallel acceptance bar is defined at.
PARALLEL_WORKERS = 4

#: The scaled workload: Table 4.2's shape at 8x DB2 cardinality, so one
#: plan carries enough work to amortize the pool's per-task transport.
SCALED_SPEC = DatabaseSpec(
    "DB2x8", class_cardinality=832, relationship_cardinality=2464
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _time_workload(executor, plans, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for plan in plans:
            executor.execute_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


def _time_batch(executor, plans, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        executor.execute_plans(plans)
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_beats_rowwise_on_table_4_2_workload():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB2"], query_count=40, seed=7
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    rowwise = QueryExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )
    vectorized = VectorizedExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )

    # Correctness first: identical rows and identical counters per plan.
    rows_total = 0
    for plan in plans:
        row_result = rowwise.execute_plan(plan)
        vec_result = vectorized.execute_plan(plan)
        assert vec_result.rows == row_result.rows
        assert vec_result.metrics == row_result.metrics
        rows_total += len(vec_result.rows)

    rowwise_time = _time_workload(rowwise, plans)
    vectorized_time = _time_workload(vectorized, plans)
    speedup = (
        rowwise_time / vectorized_time if vectorized_time > 0 else float("inf")
    )
    print()
    print(
        f"Table 4.2 workload (DB2, 40 queries, nested-loop): "
        f"rowwise {rowwise_time * 1000:.1f} ms, "
        f"vectorized {vectorized_time * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    record_bench(
        "BENCH_engine.json",
        "vectorized_vs_rowwise",
        {
            "workload": "table_4_2 DB2 x40 nested_loop",
            "mode": "vectorized",
            "baseline": "rowwise",
            "rowwise_ms": round(rowwise_time * 1000, 3),
            "vectorized_ms": round(vectorized_time * 1000, 3),
            "speedup": round(speedup, 2),
            "rows_per_s": (
                round(rows_total / vectorized_time) if vectorized_time > 0 else None
            ),
            "required_speedup": REQUIRED_SPEEDUP,
            "enforced": not SMOKE,
        },
    )
    if not SMOKE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"vectorized engine only {speedup:.2f}x faster "
            f"(need >= {REQUIRED_SPEEDUP}x)"
        )


def test_parallel_beats_vectorized_on_scaled_table_4_2_workload():
    setup = build_evaluation_setup(
        SCALED_SPEC, query_count=40, seed=7, shard_count=PARALLEL_WORKERS
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    vectorized = VectorizedExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )
    parallel = ParallelExecutor(
        setup.schema,
        setup.store,
        join_strategy="nested_loop",
        workers=PARALLEL_WORKERS,
        min_partition_rows=1,
    )
    try:
        # Correctness first, and unconditionally: identical rows and
        # deterministically-merged, byte-identical metrics for every plan.
        rows_total = 0
        fanned = 0
        for plan, result in zip(plans, parallel.execute_plans(plans)):
            reference = vectorized.execute_plan(plan)
            assert result.rows == reference.rows
            assert result.metrics == reference.metrics
            rows_total += len(result.rows)
            if result.shard_reports is not None:
                fanned += 1
        assert fanned > 0, "no plan fanned out on the scaled workload"

        vectorized_time = _time_workload(vectorized, plans, repeats=2)
        parallel_time = _time_batch(parallel, plans, repeats=2)
    finally:
        parallel.close()
    speedup = (
        vectorized_time / parallel_time if parallel_time > 0 else float("inf")
    )
    cpu_count = os.cpu_count() or 1
    enough_cores = cpu_count >= PARALLEL_WORKERS
    print()
    print(
        f"scaled Table 4.2 workload ({SCALED_SPEC.name}, 40 queries, "
        f"nested-loop, {PARALLEL_WORKERS} workers on {cpu_count} cores): "
        f"vectorized {vectorized_time * 1000:.1f} ms, "
        f"parallel {parallel_time * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    record_bench(
        "BENCH_engine.json",
        "parallel_vs_vectorized",
        {
            "workload": f"table_4_2 {SCALED_SPEC.name} x40 nested_loop",
            "mode": "parallel",
            "baseline": "vectorized",
            "workers": PARALLEL_WORKERS,
            "shards": PARALLEL_WORKERS,
            "fanned_out_plans": fanned,
            "vectorized_ms": round(vectorized_time * 1000, 3),
            "parallel_ms": round(parallel_time * 1000, 3),
            "speedup": round(speedup, 2),
            "rows_per_s": (
                round(rows_total / parallel_time) if parallel_time > 0 else None
            ),
            "required_speedup": REQUIRED_PARALLEL_SPEEDUP,
            "enforced": not SMOKE and enough_cores,
        },
    )
    if not SMOKE and enough_cores:
        assert speedup >= REQUIRED_PARALLEL_SPEEDUP, (
            f"parallel engine only {speedup:.2f}x faster than vectorized "
            f"(need >= {REQUIRED_PARALLEL_SPEEDUP}x at "
            f"{PARALLEL_WORKERS} workers)"
        )


def test_hash_join_speedup_reported():
    """The hash strategy also gains from vectorization (no hard threshold).

    Hash-join execution is dominated by irreducible per-row join probing
    and row materialization, so the win is smaller than nested-loop's; the
    assertion only requires the vectorized path not to be slower.
    """
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB2"], query_count=20, seed=7
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    rowwise = QueryExecutor(setup.schema, setup.store)
    vectorized = VectorizedExecutor(setup.schema, setup.store)
    for plan in plans:
        assert (
            vectorized.execute_plan(plan).rows == rowwise.execute_plan(plan).rows
        )
    rowwise_time = _time_workload(rowwise, plans)
    vectorized_time = _time_workload(vectorized, plans)
    speedup = (
        rowwise_time / vectorized_time if vectorized_time > 0 else float("inf")
    )
    print(f"\nhash-join workload: speedup {speedup:.2f}x")
    if not SMOKE:
        assert speedup >= 1.0, f"vectorized slower than rowwise ({speedup:.2f}x)"
