"""Benchmark: the O(m·n) transformation-complexity claim (Section 4)."""

import pytest

from repro.core import TransformationEngine, initialize
from repro.experiments import (
    build_chain_constraints,
    build_chain_query,
    build_chain_schema,
    run_complexity,
)


@pytest.mark.parametrize("constraint_count", [16, 64, 256])
def test_transformation_scaling(benchmark, constraint_count):
    schema = build_chain_schema(constraint_count + 2)
    constraints = build_chain_constraints(constraint_count)
    query = build_chain_query(1)

    def transform():
        init = initialize(query, constraints)
        engine = TransformationEngine(init.table, schema)
        engine.run()
        return engine.stats.fired

    fired = benchmark(transform)
    # Every constraint in the chain fires exactly once.
    assert fired == constraint_count


def test_complexity_report(benchmark):
    result = benchmark.pedantic(
        run_complexity,
        kwargs={"constraint_counts": (8, 16, 32, 64), "repeats": 1},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    per_cell = result.time_per_cell()
    # O(m*n): per-cell time must stay bounded as the table grows.
    assert max(per_cell) <= 20 * min(per_cell)
