"""Benchmark: self-tuning recovery after a workload shift.

The auto-indexer's performance contract: when the workload shifts onto an
attribute with no index, the advisor must notice (heat counters), create
the index through the journaled write path, and pull warm throughput back
to at least **0.8x of the pre-shift baseline** — scans of the hot extent
must not remain the steady state.

Three measured phases:

1. **pre-shift** — point lookups on an indexed attribute (``cargo.code``),
   warm;
2. **shift** — the same service hammered with equality predicates on the
   unindexed ``cargo.quantity``; the first passes pay full scans while
   the advisor's heat builds;
3. **recovered** — warm passes after the advisor created the index.

Numbers land in ``BENCH_autotune.json``.  The 0.8x gate is enforced only
on non-smoke hosts with at least 4 cores (as every timing gate here,
skipped under ``REPRO_BENCH_SMOKE=1``).
"""

import os
import time

from _artifacts import record_bench

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.query import parse_query
from repro.service import OptimizationService
from repro.tuning import TuningConfig

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
GATE = not SMOKE and (os.cpu_count() or 1) >= 4

#: Extra cargo rows grown into the store so a full scan visibly costs.
EXTENT_ROWS = 200 if SMOKE else 4000
REQUIRED_RATIO = 0.8


def _timed_pass(service, workload):
    start = time.perf_counter()
    for query in workload:
        service.execute(query, optimize=False, execution_mode="vectorized")
    elapsed = time.perf_counter() - start
    return len(workload) / elapsed if elapsed > 0 else 0.0


def test_autotune_throughput_recovers_after_shift():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB2"], query_count=4, seed=53, shard_count=2
    )
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    service = OptimizationService(
        setup.schema,
        repository=repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
    )
    try:
        service.mutate(
            "insert_many",
            "cargo",
            rows=[
                {
                    "code": f"AUTO-{i}",
                    "desc": "autotune extent",
                    "quantity": 10_000 + (i % 500),
                    "category": "general",
                }
                for i in range(EXTENT_ROWS)
            ],
        )
        manager = service.enable_self_tuning(
            TuningConfig(
                calibrate=False,
                learn_rules=False,
                advice_interval=16,
                create_threshold=24.0,
                decay_interval=65536,
                min_cardinality=64,
            )
        )

        # Phase 1: indexed point lookups (cargo.code is schema-indexed).
        pre_shift = [
            parse_query(
                f'(SELECT {{cargo.desc}} {{ }} {{cargo.code = "AUTO-{i * 7}"}}'
                " { } {cargo})",
                name=f"pre-{i}",
            )
            for i in range(32)
        ]
        _timed_pass(service, pre_shift)  # warm every per-request cache
        pre_qps = _timed_pass(service, pre_shift)

        # Phase 2: the shift — equality on the unindexed quantity column.
        shifted = [
            parse_query(
                "(SELECT {cargo.code} { } "
                f"{{cargo.quantity = {10_000 + (i * 11) % 500}}} {{ }} {{cargo}})",
                name=f"shift-{i}",
            )
            for i in range(32)
        ]
        reference_rows = [
            service.execute(q, optimize=False, execution_mode="vectorized").rows
            for q in shifted
        ]
        shift_cold_qps = _timed_pass(service, shifted)
        passes_to_index = 1
        while (
            not setup.store.indexes.is_indexed("cargo", "quantity")
            and passes_to_index < 8
        ):
            _timed_pass(service, shifted)
            passes_to_index += 1
        index_created = setup.store.indexes.is_indexed("cargo", "quantity")
        assert index_created, manager.snapshot()["advisor"]
        assert manager.advisor.creates == 1

        # Phase 3: warm recovered throughput — and unchanged answers.
        recovered = [
            service.execute(q, optimize=False, execution_mode="vectorized").rows
            for q in shifted
        ]
        assert recovered == reference_rows
        recovered_qps = _timed_pass(service, shifted)
        ratio = recovered_qps / pre_qps if pre_qps > 0 else 0.0

        print(
            f"\npre-shift {pre_qps:.0f} q/s, shift cold "
            f"{shift_cold_qps:.0f} q/s, recovered {recovered_qps:.0f} q/s "
            f"({ratio:.2f}x of pre-shift; index after "
            f"{passes_to_index} passes)"
        )
        record_bench(
            "BENCH_autotune.json",
            "workload_shift_recovery",
            {
                "workload": (
                    f"DB2 + {EXTENT_ROWS} grown cargo rows, 2 shards, "
                    "32 point lookups per pass"
                ),
                "pre_shift_qps": round(pre_qps, 1),
                "shift_cold_qps": round(shift_cold_qps, 1),
                "recovered_qps": round(recovered_qps, 1),
                "recovery_ratio": round(ratio, 3),
                "passes_until_index": passes_to_index,
                "advisor": manager.snapshot()["advisor"],
                "tuning_generation": manager.generation,
                "required_ratio": REQUIRED_RATIO,
                "enforced": GATE,
            },
        )
        if GATE:
            assert ratio >= REQUIRED_RATIO, (
                f"post-shift warm throughput at {ratio:.2f}x of the "
                f"pre-shift baseline ({recovered_qps:.0f} vs "
                f"{pre_qps:.0f} q/s)"
            )
    finally:
        service.close()
