"""Benchmark: regenerating the Table 4.1 database instances.

Times the synthetic data generator for each of the paper's database shapes
and prints the measured Table 4.1 row next to the paper's values.
"""

import pytest

from repro.data import TABLE_4_1_SPECS, DatabaseGenerator
from repro.experiments import PAPER_TABLE_4_1, run_table_4_1


@pytest.mark.parametrize("name", sorted(TABLE_4_1_SPECS))
def test_generate_database_instance(benchmark, name):
    generator = DatabaseGenerator(seed=7)
    database = benchmark(generator.generate, TABLE_4_1_SPECS[name])
    summary = database.summary()
    paper = PAPER_TABLE_4_1[name]
    assert summary["object_classes"] == paper["object_classes"]
    assert summary["avg_class_cardinality"] == pytest.approx(
        paper["avg_class_cardinality"]
    )
    assert summary["avg_relationship_cardinality"] == pytest.approx(
        paper["avg_relationship_cardinality"]
    )


def test_table_4_1_report(benchmark):
    result = benchmark.pedantic(run_table_4_1, kwargs={"seed": 7}, rounds=1, iterations=1)
    print()
    print(result.as_table())
    assert len(result.rows) == 4
