"""Benchmark: warm-cache read throughput across a live write.

The write path's performance contract is *recovery*: a mutation may evict
exactly the state it invalidates (the touched shards' executor caches, the
touched classes' optimization results, the touched classes' dynamic
rules), after which **one** pass over the workload must restore the warm
steady state.  This benchmark measures three passes of the same read
workload around a rule-moving write:

1. the **warm baseline** (all result-cache hits),
2. the **recovery pass** right after the write (queries over the mutated
   class recompute; everything else must still hit),
3. the **post-recovery pass**, which must be all-hits again and is gated
   at ≥ 50 % of the baseline throughput (skipped under
   ``REPRO_BENCH_SMOKE=1``, like every timing gate).

Numbers land in ``BENCH_mutation.json``.
"""

import os
import time

from _artifacts import record_bench

from repro.constraints import ConstraintRepository
from repro.constraints.dynamic import DerivationConfig
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.service import OptimizationService, ResultSource

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _timed_pass(service, workload):
    start = time.perf_counter()
    envelopes = [service.execute(query) for query in workload]
    return time.perf_counter() - start, envelopes


def _sources(envelopes):
    counts = {}
    for envelope in envelopes:
        source = envelope.optimization.source.value
        counts[source] = counts.get(source, 0) + 1
    return counts


def test_warm_read_throughput_recovers_within_one_pass():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=16, seed=23, shard_count=2
    )
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    service = OptimizationService(
        setup.schema,
        repository=repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
    )
    try:
        service.enable_dynamic_rules(
            config=DerivationConfig(derive_functional=False)
        )
        workload = list(setup.queries)

        _timed_pass(service, workload)  # cold pass fills every cache
        warm_time, warm = _timed_pass(service, workload)
        assert all(
            e.optimization.source is not ResultSource.COMPUTED for e in warm
        ), _sources(warm)

        # The write: far outside every observed bound, so the cargo rules
        # must genuinely change (worst case for the caches).
        mutation = service.mutate(
            "insert",
            "cargo",
            values={"code": "BENCH", "desc": "late arrival",
                    "quantity": 10_000_000, "category": "general"},
        )
        assert mutation.rules_changed and mutation.rules_refreshed == 1

        recovery_time, recovery = _timed_pass(service, workload)
        recovery_sources = _sources(recovery)
        # Class-granular invalidation: only queries touching the mutated
        # class recompute; the rest still hit the result cache.
        cargo_queries = sum(1 for q in workload if "cargo" in q.classes)
        assert recovery_sources.get("computed", 0) <= cargo_queries
        if cargo_queries < len(workload):
            assert recovery_sources.get("result_cache", 0) > 0

        post_time, post = _timed_pass(service, workload)
        assert all(
            e.optimization.source is not ResultSource.COMPUTED for e in post
        ), _sources(post)
        # Rows reflect the write on every later pass.
        assert any(
            any(row.get("cargo.code") == "BENCH" for row in envelope.rows)
            for envelope in post
            if "cargo" in envelope.query.classes
        )

        warm_qps = len(workload) / warm_time if warm_time > 0 else 0.0
        post_qps = len(workload) / post_time if post_time > 0 else 0.0
        ratio = post_qps / warm_qps if warm_qps > 0 else 0.0
        print(
            f"\nwarm {warm_qps:.0f} q/s, recovery "
            f"{len(workload) / recovery_time:.0f} q/s, post-write "
            f"{post_qps:.0f} q/s ({ratio:.2f}x of baseline); "
            f"mutation {mutation.mutate_time * 1000:.2f} ms"
        )
        record_bench(
            "BENCH_mutation.json",
            "write_recovery",
            {
                "workload": "DB1 x16, 2 shards, dynamic rules",
                "warm_pass_qps": round(warm_qps, 1),
                "recovery_pass_qps": round(
                    len(workload) / recovery_time, 1
                )
                if recovery_time > 0
                else None,
                "post_write_pass_qps": round(post_qps, 1),
                "post_to_warm_ratio": round(ratio, 3),
                "mutation_latency_ms": round(mutation.mutate_time * 1000, 3),
                "rules_refreshed": mutation.rules_refreshed,
                "rules_changed": mutation.rules_changed,
                "recovery_sources": recovery_sources,
                "required_ratio": 0.5,
                "enforced": not SMOKE,
            },
        )
        # The gate: one pass after a write, throughput is back.
        if not SMOKE:
            assert ratio >= 0.5, (
                f"post-write warm pass at {ratio:.2f}x of the pre-write "
                f"baseline ({post_qps:.0f} vs {warm_qps:.0f} q/s)"
            )
    finally:
        service.close()


def test_mutation_latency_recorded():
    """Raw service-level write latency (insert/update/delete), recorded."""
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=4, seed=29, shard_count=2
    )
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    service = OptimizationService(
        setup.schema,
        repository=repository,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
    )
    try:
        timings = {}
        inserted = []
        start = time.perf_counter()
        for i in range(100):
            result = service.mutate(
                "insert",
                "cargo",
                values={"code": f"L{i}", "desc": "bench", "quantity": i,
                        "category": "general"},
            )
            inserted.append(result.oids[0])
        timings["insert_us"] = (time.perf_counter() - start) * 1e4  # per op
        start = time.perf_counter()
        for oid in inserted:
            service.mutate("update", "cargo", oid=oid, values={"quantity": 1})
        timings["update_us"] = (time.perf_counter() - start) * 1e4
        start = time.perf_counter()
        for oid in inserted:
            service.mutate("delete", "cargo", oid=oid)
        timings["delete_us"] = (time.perf_counter() - start) * 1e4
        batch_start = time.perf_counter()
        batch = service.mutate(
            "insert_many",
            "cargo",
            rows=[
                {"code": f"B{i}", "desc": "bench", "quantity": i,
                 "category": "general"}
                for i in range(100)
            ],
        )
        timings["insert_many_us_per_row"] = (
            (time.perf_counter() - batch_start) * 1e4
        )
        assert batch.applied == 100
        print(
            "\n"
            + ", ".join(f"{name}: {value:.1f}" for name, value in timings.items())
        )
        record_bench(
            "BENCH_mutation.json",
            "write_latency",
            {name: round(value, 2) for name, value in timings.items()},
        )
    finally:
        service.close()
