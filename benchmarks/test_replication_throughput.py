"""Benchmark: read scale-out over a replicated fleet + replication lag.

Boots the real CLI topology as subprocesses — a primary serving DB1 with
``--replicate-on`` and two ``--follow`` read replicas — and measures:

* **replicated_reads** — the same closed-loop read workload driven first
  against the primary alone (baseline), then striped across the two
  replicas.  With every process on its own core the replicated run
  should scale reads; the ``speedup >= 2.0`` gate is enforced only on
  hosts with at least :data:`MIN_CORES` cores (and never under
  ``REPRO_BENCH_SMOKE=1``) — smaller machines still assert correctness
  (zero errors on both legs) and record ``enforced: false``.
* **replication_lag** — a burst of writes against the primary, then the
  wall-clock time until both replicas report an applied version at least
  the primary's final version (``catchup_ms``).

Headline numbers land in ``BENCH_replication.json``; CI uploads them per
matrix leg.
"""

import asyncio
import os
import re
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from _artifacts import record_bench

from repro.server import AsyncGatewayClient, connect_clients, run_load

ARTIFACT = "BENCH_replication.json"
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

CLIENTS = 8
REQUESTS_PER_CLIENT = 4 if SMOKE else 30
REPLICAS = 2
#: The ≥2x read-throughput gate only makes sense when the primary and
#: both replica processes can actually run in parallel.
MIN_CORES = 4
MIN_SPEEDUP = 2.0
LAG_WRITES = 8 if SMOKE else 40

SERVING = re.compile(r"serving DB1 on ([\d.]+):(\d+)")
FEED = re.compile(r"replication feed on ([\d.]+):(\d+)")

QUERIES = [
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 0} { } {cargo})',
    '(SELECT {cargo.code} { } {cargo.quantity >= 1} { } {cargo})',
    '(SELECT {cargo.desc} { } {cargo.quantity >= 2} { } {cargo})',
    '(SELECT {cargo.category} { } {cargo.quantity >= 3} { } {cargo})',
    '(SELECT {cargo.code, cargo.category} { } {cargo.quantity >= 4} { } {cargo})',
    '(SELECT {cargo.desc, cargo.quantity} { } {cargo.quantity >= 5} { } {cargo})',
]


def _spawn(*extra_args):
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + os.pathsep + existing if existing else src_dir
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", "DB1",
         "--port", "0", *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_patterns(proc, *patterns, timeout=120):
    matches = {}
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline and len(matches) < len(patterns):
        line = proc.stdout.readline()
        if not line:
            pytest.fail("server exited early:\n" + "".join(lines))
        lines.append(line)
        for pattern in patterns:
            if pattern not in matches:
                found = pattern.search(line)
                if found:
                    matches[pattern] = found
    if len(matches) < len(patterns):
        pytest.fail("server never printed its endpoints:\n" + "".join(lines))
    return [matches[pattern] for pattern in patterns]


def _await_socket(host, port, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection((host, port), 1).close()
            return
        except OSError:
            time.sleep(0.25)
    pytest.fail(f"{host}:{port} never accepted a connection")


def _terminate(proc):
    if proc is not None and proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)
    if proc is not None and proc.stdout is not None:
        proc.stdout.close()


class _Fleet:
    """A subprocess primary (+feed) and N subprocess read replicas."""

    def __init__(self, replicas=REPLICAS):
        self.procs = []
        self.primary_endpoint = None
        self.replica_endpoints = []
        self._replica_count = replicas

    def __enter__(self):
        primary = _spawn("--replicate-on", "0")
        self.procs.append(primary)
        serving, feed = _await_patterns(primary, SERVING, FEED)
        self.primary_endpoint = (serving.group(1), int(serving.group(2)))
        follow = f"{feed.group(1)}:{feed.group(2)}"
        for _ in range(self._replica_count):
            replica = _spawn("--follow", follow)
            self.procs.append(replica)
            (serving_r,) = _await_patterns(replica, SERVING)
            self.replica_endpoints.append(
                (serving_r.group(1), int(serving_r.group(2)))
            )
        for host, port in [self.primary_endpoint, *self.replica_endpoints]:
            _await_socket(host, port)
        return self

    def __exit__(self, *exc_info):
        for proc in self.procs:
            _terminate(proc)
        return False


async def _read_leg(endpoints):
    """One closed-loop read run striped over ``endpoints``; its report."""
    clients = await connect_clients(
        endpoints, CLIENTS, client_prefix="repl-bench"
    )
    try:
        return await run_load(
            clients, QUERIES, requests_per_client=REQUESTS_PER_CLIENT
        )
    finally:
        for client in clients:
            await client.close()


def test_replicated_read_throughput():
    """Two read replicas: ≥2x read throughput over the primary alone."""

    async def scenario(fleet):
        baseline = await _read_leg([fleet.primary_endpoint])
        replicated = await _read_leg(fleet.replica_endpoints)
        return baseline, replicated

    with _Fleet() as fleet:
        baseline, replicated = asyncio.run(scenario(fleet))

    assert baseline.errors == 0, (
        f"baseline leg must be error-free: {baseline.error_codes}"
    )
    assert replicated.errors == 0, (
        f"replicated leg must be error-free: {replicated.error_codes}"
    )
    assert baseline.requests == replicated.requests == CLIENTS * REQUESTS_PER_CLIENT
    # Replicas answer from the same replicated state the primary serves.
    assert replicated.rows == baseline.rows

    speedup = (
        replicated.requests_per_second / baseline.requests_per_second
        if baseline.requests_per_second > 0
        else 0.0
    )
    cpu_count = os.cpu_count() or 1
    enforced = not SMOKE and cpu_count >= MIN_CORES
    print()
    print(f"reads on primary alone: {baseline.describe()}")
    print(f"reads on {REPLICAS} replicas:  {replicated.describe()}")
    print(f"read scale-out: {speedup:.2f}x ({cpu_count} cores, "
          f"{'enforced' if enforced else 'not enforced'})")

    record_bench(
        ARTIFACT,
        "replicated_reads",
        {
            "clients": CLIENTS,
            "replicas": REPLICAS,
            "requests_per_leg": baseline.requests,
            "errors": baseline.errors + replicated.errors,
            "baseline_requests_per_s": baseline.requests_per_second,
            "replicated_requests_per_s": replicated.requests_per_second,
            "baseline_p50_ms": baseline.p50 * 1000.0,
            "baseline_p95_ms": baseline.p95 * 1000.0,
            "replicated_p50_ms": replicated.p50 * 1000.0,
            "replicated_p95_ms": replicated.p95 * 1000.0,
            "speedup": speedup,
            "threshold": MIN_SPEEDUP,
            "enforced": enforced,
        },
    )
    if enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"read scale-out too low: {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"({replicated.requests_per_second:.0f} vs "
            f"{baseline.requests_per_second:.0f} req/s)"
        )


def test_replication_catchup_lag():
    """A write burst reaches both replicas; the catch-up time is bounded."""

    async def scenario(fleet):
        host, port = fleet.primary_endpoint
        primary = await AsyncGatewayClient.connect(
            host, port, client_id="lag-writer"
        )
        replicas = [
            await AsyncGatewayClient.connect(
                rhost, rport, client_id=f"lag-probe-{index}"
            )
            for index, (rhost, rport) in enumerate(fleet.replica_endpoints)
        ]
        try:
            final_version = 0
            for number in range(LAG_WRITES):
                result = await primary.insert(
                    "cargo",
                    {"code": f"LAG-{number}", "desc": "lag probe",
                     "quantity": number, "category": "general"},
                )
                final_version = result["store_version"]
            burst_done = time.perf_counter()
            deadline = burst_done + 60.0
            pending = list(replicas)
            while pending:
                still_behind = []
                for client in pending:
                    status = await client.request({"op": "replica_status"})
                    if status.get("applied_version", 0) < final_version:
                        still_behind.append(client)
                pending = still_behind
                if pending:
                    assert time.perf_counter() < deadline, (
                        "replicas never caught up to "
                        f"v{final_version}"
                    )
                    await asyncio.sleep(0.01)
            catchup_ms = (time.perf_counter() - burst_done) * 1000.0
            return final_version, catchup_ms
        finally:
            await primary.close()
            for client in replicas:
                await client.close()

    with _Fleet() as fleet:
        final_version, catchup_ms = asyncio.run(scenario(fleet))

    assert final_version >= LAG_WRITES
    print()
    print(f"replication lag: {LAG_WRITES} writes to v{final_version}, "
          f"both replicas caught up {catchup_ms:.1f} ms after the burst")

    record_bench(
        ARTIFACT,
        "replication_lag",
        {
            "writes": LAG_WRITES,
            "replicas": REPLICAS,
            "final_primary_version": final_version,
            "catchup_ms": catchup_ms,
        },
    )
