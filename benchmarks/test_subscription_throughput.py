"""Benchmark: diff-push subscriptions vs naive per-write re-execution.

The subscription layer's performance claim: keeping N standing queries
live costs a *classification* per write — compiled single-class kernels
deciding which views could possibly change — plus a re-execution for
only the affected views, instead of re-executing all N queries after
every write (what a client polling for freshness would do).

The workload models a dashboard fleet: 32 watchers, each standing on a
selective predicate, over a few-hundred-row store taking a mixed write
stream where most writes matter to at most one watcher.  Both legs pay
the same mutation cost; the naive leg re-executes all 32 queries per
write, the diff leg pumps the registry.  The folded diff streams are
asserted byte-identical to fresh execution before any timing gate.

Numbers land in ``BENCH_subscribe.json``; the ≥ 3x speedup gate runs on
≥ 4-core hosts outside smoke mode.
"""

import json
import os
import random
import time

from _artifacts import record_bench

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig
from repro.data import build_evaluation_constraints, build_evaluation_schema
from repro.engine import ObjectStore
from repro.query import parse_query
from repro.service import OptimizationService
from repro.subscriptions import apply_changes

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

STANDING_QUERIES = 32
WRITES = 64
DESCS = ["frozen food", "textiles", "machinery"]


def _build_service():
    schema = build_evaluation_schema()
    store = ObjectStore(schema, shard_count=2)
    rng = random.Random(7)
    for i in range(3):
        store.insert(
            "supplier", {"name": f"S{i}", "region": "west", "rating": 1 + i}
        )
    for i in range(3):
        store.insert(
            "vehicle",
            {"vehicle_no": f"V{i}", "desc": "van", "class": 2, "capacity": 4000},
        )
    for i in range(400):
        store.insert(
            "cargo",
            {"code": f"C{i}", "desc": DESCS[i % 3],
             "quantity": rng.randint(5, 90), "category": "general"},
        )
    repository = ConstraintRepository(schema)
    repository.add_all(build_evaluation_constraints())
    service = OptimizationService(
        schema,
        repository=repository,
        config=OptimizerConfig(record_access_statistics=False),
        store=store,
    )
    return schema, store, service


def _watch_queries(schema):
    """32 selective watchers, one per dashboard entity."""
    queries = []
    for i in range(STANDING_QUERIES):
        text = (
            '(SELECT {cargo.code, cargo.quantity} { } '
            f'{{cargo.code = "W{i}", cargo.quantity >= 0}} {{ }} {{cargo}})'
        )
        query = parse_query(text, name=f"watch-{i}")
        query.validate(schema)
        queries.append(query)
    return queries


def _write_stream(offset=0):
    """The mixed write stream: every 8th write hits exactly one watcher."""
    rng = random.Random(31 + offset)
    writes = []
    for i in range(WRITES):
        if i % 8 == 0:
            code = f"W{(i + offset) % STANDING_QUERIES}"
        else:
            code = f"X{offset}-{i}"
        writes.append(
            {"code": code, "desc": rng.choice(DESCS),
             "quantity": rng.randint(5, 120), "category": "general"}
        )
    return writes


def _dump(rows):
    return json.dumps(rows, separators=(",", ":"), default=repr)


def test_diff_push_beats_naive_reexecution():
    schema, _store, service = _build_service()
    try:
        queries = _watch_queries(schema)

        # Naive leg first (the store grows leg over leg; running naive on
        # the smaller store biases the comparison *against* the diff leg).
        for query in queries:  # warm the optimization cache for both legs
            service.optimize(query)
        naive_start = time.perf_counter()
        for values in _write_stream(offset=1000):
            service.mutate("insert", "cargo", values=values)
            for query in queries:
                service.execute(query)
        naive_time = time.perf_counter() - naive_start

        # Diff leg: the same write shape against 32 standing views.
        registry = service.subscription_registry()
        streams = {}
        folded = {}
        for query in queries:
            frames = []
            snapshot = registry.subscribe(
                query, options={}, emit=frames.append
            )
            streams[snapshot["subscription"]] = frames
            folded[snapshot["subscription"]] = (query, list(snapshot["rows"]))
        diff_start = time.perf_counter()
        for values in _write_stream(offset=2000):
            service.mutate("insert", "cargo", values=values)
            registry.pump()
        diff_time = time.perf_counter() - diff_start

        # Correctness before any timing claim: every folded stream is
        # byte-identical to a fresh execution of its standing query.
        diff_frames = 0
        for sid, (query, rows) in folded.items():
            for frame in streams[sid]:
                diff_frames += 1
                if frame["push"] == "diff":
                    rows = apply_changes(rows, frame["changes"])
                else:
                    rows = [dict(row) for row in frame["rows"]]
            fresh = service.execute(query).execution.rows
            assert _dump(rows) == _dump(fresh), f"{sid} diverged after folding"
        assert diff_frames >= WRITES // 8  # the watcher hits produced diffs
        for sid in list(streams):
            registry.unsubscribe(sid)

        diff_ms = diff_time * 1000 / WRITES
        naive_ms = naive_time * 1000 / WRITES
        speedup = naive_ms / diff_ms if diff_ms > 0 else 0.0
        enforced = not SMOKE and (os.cpu_count() or 1) >= 4
        print(
            f"\ndiff-push {diff_ms:.2f} ms/write vs naive re-execute "
            f"{naive_ms:.2f} ms/write ({speedup:.1f}x, "
            f"{diff_frames} diff frames over {WRITES} writes)"
        )
        record_bench(
            "BENCH_subscribe.json",
            "diff_push_vs_reexecute",
            {
                "workload": f"{STANDING_QUERIES} watchers, 400-row store, "
                            f"{WRITES} mixed writes",
                "diff_ms_per_write": round(diff_ms, 3),
                "naive_ms_per_write": round(naive_ms, 3),
                "speedup": round(speedup, 2),
                "standing_queries": STANDING_QUERIES,
                "writes": WRITES,
                "diff_frames": diff_frames,
                "required_speedup": 3.0,
                "enforced": enforced,
            },
        )
        if enforced:
            assert speedup >= 3.0, (
                f"diff push at {speedup:.2f}x of naive re-execution "
                f"({diff_ms:.2f} vs {naive_ms:.2f} ms/write)"
            )
    finally:
        service.close()
