"""Microbenchmark: OptimizationService repeated-workload throughput.

A server optimizing production traffic sees the same (or structurally
equal) queries over and over.  This benchmark optimizes one workload twice
through the same :class:`~repro.service.OptimizationService`: the cold pass
runs the full pipeline for every unique query, the warm pass must be served
from the result cache — skipping constraint retrieval, closure work and all
four optimizer phases — and is therefore required to be at least 2x faster
per query on average.
"""

import os
import time

from _artifacts import record_bench

from repro.core import OptimizerConfig
from repro.query import structurally_equal
from repro.service import OptimizationService, ResultSource

#: REPRO_BENCH_SMOKE=1 (the CI smoke step) runs everything but skips the
#: timing threshold, which is too noisy to gate on for shared runners.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _timed_batch(service, queries, **kwargs):
    start = time.perf_counter()
    batch = service.optimize_many(queries, **kwargs)
    return time.perf_counter() - start, batch


def test_repeated_workload_throughput(bench_setup):
    # Duplicate the workload inside the batch too, so batch-level
    # deduplication is exercised alongside the cross-batch result cache.
    workload = list(bench_setup.queries) + [
        q.renamed(f"{q.name}_dup") for q in bench_setup.queries
    ]
    service = OptimizationService(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )

    cold_time, cold = _timed_batch(service, workload)
    warm_time, warm = _timed_batch(service, workload)
    # Re-time the warm pass twice more and keep the fastest run: the real
    # margin is >10x, so this only guards the assertion against a GC pause
    # or scheduler hiccup on a loaded CI runner.
    for _ in range(2):
        retime, _unused = _timed_batch(service, workload)
        warm_time = min(warm_time, retime)

    cold_mean = cold_time / len(workload)
    warm_mean = warm_time / len(workload)
    speedup = cold_mean / warm_mean if warm_mean > 0 else float("inf")
    print()
    print(
        f"cold: {cold_time * 1000:.2f} ms, warm: {warm_time * 1000:.2f} ms, "
        f"speedup {speedup:.1f}x over {len(workload)} queries"
    )
    print(f"cold batch: {cold.summary()}")
    print(f"warm batch: {warm.summary()}")

    # The cold pass computed every unique query exactly once; the in-batch
    # duplicates were answered by deduplication.
    assert cold.stats.unique == len(bench_setup.queries)
    assert cold.stats.computed == cold.stats.unique
    assert cold.stats.duplicates == len(bench_setup.queries)

    # The warm pass hit the result cache for every unique query.
    assert warm.stats.result_cache_hits == warm.stats.unique
    assert warm.stats.computed == 0
    assert warm.cache.result_hits > 0

    # Even when the result cache is bypassed (a pipeline re-run), the
    # repository serves constraint retrieval from its keyed cache.
    rerun = service.optimize(workload[0], use_cache=False)
    assert rerun.result.retrieval_stats is not None
    assert rerun.result.retrieval_stats.cache_hit
    assert service.cache_stats().retrieval_hits > 0

    # Cached results are the same results.
    for cold_envelope, warm_envelope in zip(cold.results, warm.results):
        assert warm_envelope.source in (
            ResultSource.RESULT_CACHE,
            ResultSource.BATCH_DEDUP,
        )
        assert structurally_equal(cold_envelope.optimized, warm_envelope.optimized)

    record_bench(
        "BENCH_service.json",
        "repeated_workload",
        {
            "workload": "DB2 x20 duplicated (40 queries)",
            "mode": "optimize_many",
            "cold_ms": round(cold_time * 1000, 3),
            "warm_ms": round(warm_time * 1000, 3),
            "speedup": round(speedup, 2),
            "queries_per_s_warm": (
                round(len(workload) / warm_time) if warm_time > 0 else None
            ),
            "required_speedup": 2.0,
            "enforced": not SMOKE,
        },
    )
    # The acceptance bar: serving from cache beats recomputation >= 2x.
    if not SMOKE:
        assert warm_mean * 2.0 <= cold_mean, (
            f"warm pass only {speedup:.2f}x faster "
            f"(cold {cold_mean * 1e6:.0f} us/q, warm {warm_mean * 1e6:.0f} us/q)"
        )


def test_execute_many_throughput_recorded(bench_setup):
    """End-to-end execution throughput per engine, recorded (no threshold).

    ``execute_many`` optimizes the workload once (batch dedup + result
    cache) and executes it on each engine against the same store; every
    engine must return the same rows, and the per-engine wall times land in
    the service artifact.  No speedup gate: on a single-core runner the
    parallel engine is *expected* to lose — the point of the record is the
    trajectory on real hardware.
    """
    workload = list(bench_setup.queries)
    service = OptimizationService(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=bench_setup.store,
        engine_workers=4,
    )
    try:
        reference = None
        throughput = {}
        for mode in ("rowwise", "vectorized", "parallel"):
            best = None
            for _ in range(2):
                batch = service.execute_many(workload, execution_mode=mode)
                if best is None or batch.stats.execute_time < best.stats.execute_time:
                    best = batch
            rows = [envelope.rows for envelope in best]
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"{mode} rows diverge"
            throughput[mode] = {
                "execute_ms": round(best.stats.execute_time * 1000, 3),
                "queries_per_s": round(
                    len(workload) / best.stats.execute_time
                )
                if best.stats.execute_time > 0
                else None,
                "rows_per_s": round(
                    best.total_rows() / best.stats.execute_time
                )
                if best.stats.execute_time > 0
                else None,
                "workers": best.stats.workers,
            }
            print(f"\nexecute_many[{mode}]: {best.summary()}")
        record_bench(
            "BENCH_service.json",
            "execute_many",
            {"workload": "DB2 x20", "modes": throughput},
        )
    finally:
        service.close()


def test_parallel_batch_matches_sequential(bench_setup):
    """Thread fan-out returns the same optimized queries as a serial pass."""
    workload = list(bench_setup.queries)
    sequential_service = OptimizationService(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    parallel_service = OptimizationService(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        max_workers=4,
    )
    sequential = sequential_service.optimize_many(workload, use_cache=False)
    parallel = parallel_service.optimize_many(workload, use_cache=False)
    assert parallel.stats.workers > 1
    for left, right in zip(sequential.results, parallel.results):
        assert structurally_equal(left.optimized, right.optimized)
