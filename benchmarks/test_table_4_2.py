"""Benchmark: Table 4.2 — optimized/original cost ratio per database instance.

Runs the full Table 4.2 experiment (smaller workload than the paper's 40
queries to keep the benchmark fast) and prints the bucket histogram.  The
assertions encode the paper's qualitative findings: the large database
benefits at least as much as the small one, and some queries improve
dramatically while answers never change.
"""


from repro.data import DatabaseSpec
from repro.experiments import run_table_4_2

BENCH_SPECS = {
    "DB1": DatabaseSpec("DB1", class_cardinality=52, relationship_cardinality=77),
    "DB4": DatabaseSpec("DB4", class_cardinality=208, relationship_cardinality=616),
}


def test_table_4_2_report(benchmark):
    result = benchmark.pedantic(
        run_table_4_2,
        kwargs={
            "specs": BENCH_SPECS,
            "query_count": 20,
            "seed": 7,
            "check_answers": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    db1 = result.rows["DB1"]
    db4 = result.rows["DB4"]
    # Semantic optimization never changes an answer.
    assert db1.all_answers_agree and db4.all_answers_agree
    # The big database benefits at least as much as the small one.
    assert db4.faster >= db1.faster
    assert db4.much_faster >= db1.much_faster
    # Overhead hurts the small database at least as often as the large one.
    assert db1.slower >= db4.slower


def test_single_query_cost_ratio_measurement(benchmark, bench_setup):
    """Times one optimize+execute+execute cycle (the Table 4.2 inner loop)."""
    from repro.core import OptimizerConfig, SemanticQueryOptimizer
    from repro.engine import QueryExecutor

    optimizer = SemanticQueryOptimizer(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    executor = QueryExecutor(bench_setup.schema, bench_setup.store)
    query = bench_setup.queries[0]

    def measure():
        outcome = optimizer.optimize(query)
        original = executor.execute(query)
        optimized = executor.execute(outcome.optimized)
        return (
            bench_setup.cost_model.measured_cost(optimized.metrics),
            bench_setup.cost_model.measured_cost(original.metrics),
        )

    optimized_cost, original_cost = benchmark(measure)
    assert original_cost >= 0 and optimized_cost >= 0
