"""Benchmark: tentative application vs the straight-forward baseline (Section 4)."""

from repro.experiments import run_baseline_ablation


def test_baseline_ablation_report(benchmark):
    result = benchmark.pedantic(
        run_baseline_ablation,
        kwargs={"query_count": 15, "seed": 7, "orderings": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    # The tentative approach is order-insensitive by construction and needs
    # fewer profitability evaluations than the straight-forward approach.
    assert result.tentative_profitability_checks <= result.baseline_profitability_checks
    # It is at least as good (small tolerance for cost-model estimates).
    assert result.tentative_mean_ratio <= result.baseline_mean_ratio + 0.05
