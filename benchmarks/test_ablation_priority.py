"""Benchmark: priority queue vs FIFO under a transformation budget (Section 4)."""

from repro.experiments import run_priority_ablation


def test_priority_ablation_report(benchmark):
    result = benchmark.pedantic(
        run_priority_ablation,
        kwargs={"query_count": 20, "seed": 7, "budget": 1},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    fifo = result.measurements["fifo"]
    priority = result.measurements["priority"]
    # With one transformation allowed per query, the priority queue spends it
    # on the most profitable rule (index introduction) at least as often.
    assert priority.index_introductions >= fifo.index_introductions
    # And the resulting plans are at least as cheap on average.
    assert priority.mean_cost_ratio <= fifo.mean_cost_ratio + 0.05
