"""Micro-benchmarks of the optimizer's individual phases.

Not tied to a specific table or figure; these keep an eye on the cost of the
pipeline stages the paper's Figure 4.1 aggregates (constraint retrieval,
initialization + transformation, formulation) so regressions are visible.
"""

from repro.core import (
    OptimizerConfig,
    SemanticQueryOptimizer,
    TransformationEngine,
    initialize,
)


def _longest_query(setup):
    return max(setup.queries, key=lambda q: q.class_count)


def test_constraint_retrieval(benchmark, bench_setup):
    query = _longest_query(bench_setup)
    result = benchmark(
        bench_setup.repository.retrieve_relevant,
        query.classes,
        query.relationships,
        False,
    )
    relevant, stats = result
    assert stats.fetched >= len(relevant)


def test_initialization_phase(benchmark, bench_setup):
    query = _longest_query(bench_setup)
    relevant, _stats = bench_setup.repository.retrieve_relevant(
        query.classes, query.relationships, record_access=False
    )
    init = benchmark(initialize, query, relevant, True, True)
    assert init.table.constraint_count() == len(relevant)


def test_transformation_phase(benchmark, bench_setup):
    query = _longest_query(bench_setup)
    relevant, _stats = bench_setup.repository.retrieve_relevant(
        query.classes, query.relationships, record_access=False
    )

    def run():
        init = initialize(query, relevant, assume_relevant=True)
        engine = TransformationEngine(init.table, bench_setup.schema)
        engine.run()
        return engine

    engine = benchmark(run)
    assert engine.stats.fired >= 0


def test_end_to_end_optimization(benchmark, bench_setup):
    optimizer = SemanticQueryOptimizer(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    query = _longest_query(bench_setup)
    result = benchmark(optimizer.optimize, query)
    assert result.timings.total < 1.0
