"""Benchmark: constraint grouping policy ablation (Section 3 enhancement)."""

from repro.experiments import run_grouping_ablation


def test_grouping_ablation_report(benchmark):
    result = benchmark.pedantic(
        run_grouping_ablation,
        kwargs={"query_count": 20, "seed": 7},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    arbitrary = result.measurements["arbitrary"]
    least_frequent = result.measurements["least_frequent"]
    # Every policy retrieves all relevant constraints (completeness) ...
    assert arbitrary.relevant == least_frequent.relevant
    # ... and the least-frequently-accessed policy never fetches more than
    # the arbitrary assignment does.
    assert least_frequent.fetched <= arbitrary.fetched
