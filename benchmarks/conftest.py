"""Shared fixtures for the benchmark suite.

The benchmarks exercise the same experiment entry points that regenerate the
paper's tables and figures (``repro.experiments``), with pytest-benchmark
providing the timing statistics.  Workload sizes are kept moderate so the
whole suite runs in well under a minute; pass ``--benchmark-only`` to skip
the functional tests and run just these.

Headline numbers additionally land in JSON artifacts (see
:mod:`_artifacts`) that CI uploads per matrix leg.
"""

import pytest

from repro.data import TABLE_4_1_SPECS, build_evaluation_setup


@pytest.fixture(scope="session")
def bench_setup():
    """One DB2-sized evaluation setup shared by the benchmarks."""
    return build_evaluation_setup(TABLE_4_1_SPECS["DB2"], query_count=20, seed=7)
