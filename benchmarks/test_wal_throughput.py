"""Benchmark: durable write latency and recovery time.

Two questions an operator needs answered before turning ``--data-dir`` on:

1. **What does durability cost per write?**  The same seeded insert
   workload runs through a durable :class:`OptimizationService` under each
   fsync policy — ``always`` (fsync every commit), ``batch`` (group
   commit), and ``off`` (OS-buffered) — plus a memory-only baseline, so
   the artifact shows the incremental cost of the WAL itself versus the
   cost of the fsyncs.

2. **How long does recovery take as the WAL tail grows?**  Recovery time
   is dominated by replaying frames past the newest snapshot; this
   measures wall-clock recovery at several tail lengths so regressions in
   the replay path show up run over run.

Numbers land in ``BENCH_wal.json``.  There are no timing gates here —
fsync latency is hardware- and filesystem-dependent — only recorded
numbers plus invariant checks that the measured runs were correct.
"""

import os
import shutil
import time

from _artifacts import record_bench

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_schema
from repro.durability import DurabilityManager, recover
from repro.engine.storage import ShardedObjectStore
from repro.service import OptimizationService

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Writes per measured leg (smoke mode keeps CI fast).
WRITES = 40 if SMOKE else 400
#: WAL tail lengths for the recovery-time sweep.
TAILS = (20, 60) if SMOKE else (100, 400, 1600)


def _durable_service(data_dir, fsync_policy, fsync_interval=8):
    schema = build_evaluation_schema()
    manager = DurabilityManager(
        str(data_dir),
        fsync_policy=fsync_policy,
        fsync_interval=fsync_interval,
        snapshot_frames=10_000_000,  # keep snapshotting out of the timings
    )
    store, _ = manager.open(ShardedObjectStore(schema, shard_count=3))
    service = OptimizationService(
        schema, repository=ConstraintRepository(schema), store=store
    )
    service.attach_durability(manager)
    return service, manager


def _insert_pass(service, count):
    start = time.perf_counter()
    for index in range(count):
        service.mutate(
            "insert",
            "cargo",
            values={"desc": f"wal bench {index}", "quantity": index},
        )
    return (time.perf_counter() - start) / count * 1e6  # us per write


def test_write_latency_across_fsync_policies(tmp_path):
    schema = build_evaluation_schema()
    baseline_service = OptimizationService(
        schema,
        repository=ConstraintRepository(schema),
        store=ShardedObjectStore(schema, shard_count=3),
    )
    try:
        baseline_us = _insert_pass(baseline_service, WRITES)
    finally:
        baseline_service.close()

    legs = {"memory_only_us": round(baseline_us, 2)}
    for policy in ("off", "batch", "always"):
        service, manager = _durable_service(tmp_path / policy, policy)
        try:
            legs[f"fsync_{policy}_us"] = round(
                _insert_pass(service, WRITES), 2
            )
            stats = manager.stats()
            assert stats["wal_frames"] == WRITES
            if policy == "always":
                assert stats["wal_fsyncs"] >= WRITES
        finally:
            service.close()
            manager.close()
        # Every leg's writes must actually be recoverable.
        recovered, report = recover(str(tmp_path / policy), schema)
        assert report.clean and recovered.version == WRITES

    print(
        "\n"
        + ", ".join(f"{name}: {value}" for name, value in legs.items())
    )
    record_bench(
        "BENCH_wal.json",
        "write_latency",
        {
            "writes_per_leg": WRITES,
            "fsync_interval": 8,
            "shard_count": 3,
            **legs,
        },
    )


def test_recovery_time_vs_journal_length(tmp_path):
    schema = build_evaluation_schema()
    points = []
    for tail in TAILS:
        data_dir = tmp_path / f"tail-{tail}"
        service, manager = _durable_service(data_dir, "off")
        try:
            _insert_pass(service, tail)
        finally:
            service.close()
            manager.close()
        # snapshot_frames is huge, so the only snapshot is the empty one
        # from open(): recovery replays the full tail, the dimension
        # under test here.
        start = time.perf_counter()
        recovered, report = recover(str(data_dir), schema)
        elapsed_ms = (time.perf_counter() - start) * 1000
        assert report.clean
        assert recovered.version == tail
        points.append(
            {
                "wal_frames_replayed": report.replayed_frames,
                "recovery_ms": round(elapsed_ms, 3),
                "ms_per_1k_frames": round(
                    elapsed_ms / tail * 1000, 3
                ),
            }
        )
        shutil.rmtree(data_dir)

    print("\n" + ", ".join(
        f"{p['wal_frames_replayed']} frames: {p['recovery_ms']} ms"
        for p in points
    ))
    record_bench(
        "BENCH_wal.json",
        "recovery_time",
        {"shard_count": 3, "points": points},
    )
