"""Machine-readable benchmark artifacts.

Benchmarks that produce headline numbers write them into JSON artifacts
(``BENCH_engine.json`` / ``BENCH_service.json`` next to this file) through
:func:`record_bench`; CI uploads the files per matrix leg, so the
performance trajectory of the project is tracked run over run instead of
living only in scrollback.
"""

import json
import os
from pathlib import Path

#: Directory the benchmark artifacts are written into.
ARTIFACT_DIR = Path(__file__).resolve().parent


def record_bench(artifact: str, section: str, payload: dict) -> Path:
    """Merge one benchmark's numbers into a JSON artifact.

    ``artifact`` is the file name (e.g. ``"BENCH_engine.json"``); each
    benchmark owns one ``section`` key so reruns replace their own numbers
    without clobbering the other sections.  Environment context that
    affects interpretation (core count, engine matrix leg, smoke mode) is
    stamped at the top level.
    """
    path = ARTIFACT_DIR / artifact
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, ValueError):
        data = {}
    data[section] = payload
    data["context"] = {
        "cpu_count": os.cpu_count(),
        "engine_env": os.environ.get("REPRO_ENGINE", ""),
        "smoke": bool(os.environ.get("REPRO_BENCH_SMOKE")),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
