"""Benchmark: Figure 4.1 — query transformation time.

Times individual optimizer runs grouped by the number of object classes in
the query (the x-axis of Figure 4.1) and prints the aggregated table the
figure plots.
"""

import pytest

from repro.core import OptimizerConfig, SemanticQueryOptimizer
from repro.experiments import run_figure_4_1
from repro.query import QueryGenerator


@pytest.mark.parametrize("class_count", [1, 2, 3, 4, 5])
def test_transformation_time_by_class_count(benchmark, bench_setup, class_count):
    generator = QueryGenerator(
        bench_setup.schema,
        value_catalog=bench_setup.database.value_catalog,
        seed=13,
    )
    queries = generator.queries_by_class_count([class_count], per_count=3)[class_count]
    if not queries:
        pytest.skip(f"no schema path of length {class_count}")
    optimizer = SemanticQueryOptimizer(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )

    def optimize_all():
        return [optimizer.optimize(query) for query in queries]

    results = benchmark(optimize_all)
    assert all(r.timings.transformation_only < 1.0 for r in results)


def test_figure_4_1_report(benchmark):
    result = benchmark.pedantic(
        run_figure_4_1,
        kwargs={"query_count": 20, "seed": 7, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_table())
    # The paper's observation: every transformation well under a second.
    assert result.max_transformation_time() < 1.0
