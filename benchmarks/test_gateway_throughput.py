"""Benchmark: 16-client load against the async query gateway.

Drives the DB2 evaluation workload through a real served gateway
(vectorized engine) with the multi-client load generator and pins the
serving-layer contract:

* a 16-client run completes with **zero errors**;
* every gateway response is **byte-identical** (as sorted JSON) to a
  direct ``OptimizationService.execute`` call;
* a repeated-query lockstep workload achieves **≥ 90 %** single-flight
  deduplication (15 of every 16 identical concurrent requests share the
  leader's work).

Headline numbers — p50/p95 latency, requests/s, rows/s, dedup rate — are
persisted into ``BENCH_gateway.json`` alongside the engine/service
artifacts; CI uploads them per matrix leg.
"""

import asyncio
import json

from _artifacts import record_bench

from repro.query import format_query
from repro.server import AsyncGatewayClient, QueryGateway, run_load
from repro.service import OptimizationService

CLIENTS = 16
REQUESTS_PER_CLIENT = 12
ARTIFACT = "BENCH_gateway.json"


def _build_service(bench_setup) -> OptimizationService:
    return OptimizationService(
        bench_setup.schema,
        repository=bench_setup.repository,
        cost_model=bench_setup.cost_model,
        store=bench_setup.store,
        execution_mode="vectorized",
    )


def test_gateway_16_client_load(bench_setup):
    """16 TCP clients, mixed DB2 workload: zero errors, identical rows."""
    queries = bench_setup.queries
    texts = [format_query(query) for query in queries]

    async def scenario():
        service = _build_service(bench_setup)
        gateway = QueryGateway(service, worker_threads=4)
        host, port = await gateway.start()
        clients = [
            await AsyncGatewayClient.connect(host, port, client_id=f"load-{index}")
            for index in range(CLIENTS)
        ]
        try:
            report = await run_load(
                clients,
                texts,
                requests_per_client=REQUESTS_PER_CLIENT,
                options={"execution_mode": "vectorized"},
            )
            # Byte-identical answers: every workload query through the
            # gateway against the same query executed directly.
            for text, query in zip(texts, queries):
                payload = await clients[0].execute(
                    text, execution_mode="vectorized"
                )
                direct = service.execute(query, execution_mode="vectorized")
                assert json.dumps(payload["rows"], sort_keys=True) == json.dumps(
                    direct.execution.rows, sort_keys=True
                ), f"gateway rows diverge from direct execution for {query.name}"
            stats = await clients[0].stats()
        finally:
            for client in clients:
                await client.close()
            await gateway.stop()
        return report, stats

    report, stats = asyncio.run(scenario())

    assert report.requests == CLIENTS * REQUESTS_PER_CLIENT
    assert report.errors == 0, f"load run must be error-free: {report.error_codes}"
    assert report.rows > 0
    print()
    print(f"gateway load: {report.describe()}")

    record_bench(
        ARTIFACT,
        "gateway_load",
        {
            "clients": CLIENTS,
            "requests": report.requests,
            "errors": report.errors,
            "latency_p50_ms": report.p50 * 1000.0,
            "latency_p95_ms": report.p95 * 1000.0,
            "requests_per_s": report.requests_per_second,
            "rows_per_s": report.rows_per_second,
            "engine": "vectorized",
            "workload": "DB2",
            "admission": stats["gateway"]["admission"],
        },
    )


def test_gateway_single_flight_dedup(bench_setup):
    """16 lockstep clients repeating one query: ≥90 % requests coalesce."""
    text = format_query(bench_setup.queries[0])

    async def scenario():
        service = _build_service(bench_setup)
        gateway = QueryGateway(service, worker_threads=4)
        await gateway.start()
        # In-process clients share the gateway's event loop, so each
        # lockstep wave of 16 identical requests deterministically elects
        # one leader and 15 followers.
        clients = [
            AsyncGatewayClient.in_process(gateway, client_id=f"dedup-{index}")
            for index in range(CLIENTS)
        ]
        try:
            report = await run_load(
                clients,
                [text],
                requests_per_client=8,
                options={"execution_mode": "vectorized"},
                lockstep=True,
            )
            flight = service.single_flight.snapshot()
        finally:
            await gateway.stop()
        return report, flight

    report, flight = asyncio.run(scenario())

    assert report.errors == 0
    assert report.coalesced_rate >= 0.90, (
        f"single-flight dedup too low: {report.coalesced_rate:.1%} "
        f"({report.coalesced}/{report.requests})"
    )
    print()
    print(
        f"gateway dedup: {report.coalesced_rate:.1%} of {report.requests} "
        f"requests coalesced ({flight.leaders} leaders, "
        f"{flight.followers} followers)"
    )

    record_bench(
        ARTIFACT,
        "gateway_dedup",
        {
            "clients": CLIENTS,
            "requests": report.requests,
            "errors": report.errors,
            "coalesced": report.coalesced,
            "dedup_rate": report.coalesced_rate,
            "single_flight_leaders": flight.leaders,
            "single_flight_followers": flight.followers,
            "engine": "vectorized",
            "workload": "DB2-repeated",
        },
    )
