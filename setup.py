"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that the package can be installed editable on machines without the ``wheel``
package (offline environments), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
