"""Setuptools shim.

The project is fully described by ``pyproject.toml``; with network access a
plain ``pip install -e .`` works.  This file exists so the package can also
be installed editable on machines without the ``wheel`` package (offline
environments), via::

    python setup.py develop
"""

from setuptools import setup

setup()
