"""Workload study: does semantic optimization pay off on a fleet database?

Generates one of the paper's database instances (Table 4.1), builds a
40-query workload from schema paths exactly as Section 4 describes, and then
measures — query by query — the execution cost of the original versus the
semantically optimized query, including the transformation overhead.  Ends
with the bucket histogram of Table 4.2 for the chosen instance.

Run with::

    python examples/fleet_workload_study.py [DB1|DB2|DB3|DB4]
"""

import sys

from repro import SemanticQueryOptimizer, QueryExecutor
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.experiments import DEFAULT_OVERHEAD_UNITS_PER_SECOND
from repro.experiments.reporting import format_histogram
from repro.query import answers_match


def main() -> None:
    instance = sys.argv[1] if len(sys.argv) > 1 else "DB2"
    spec = TABLE_4_1_SPECS[instance]
    print(f"Generating {instance}: {spec.class_cardinality} instances/class, "
          f"{spec.relationship_cardinality} links/relationship ...")
    setup = build_evaluation_setup(spec, query_count=40, seed=7)
    print("Database summary:", setup.database.summary())

    optimizer = SemanticQueryOptimizer(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    executor = QueryExecutor(setup.schema, setup.store, join_strategy="nested_loop")
    cost_model = setup.cost_model

    ratios = []
    print(f"\n{'query':8} {'classes':>7} {'original':>10} {'optimized':>10} "
          f"{'overhead':>9} {'ratio':>6}  transformed  answers")
    for query in setup.queries:
        outcome = optimizer.optimize(query)
        original = cost_model.measured_cost(executor.execute(query).metrics)
        optimized = cost_model.measured_cost(
            executor.execute(outcome.optimized).metrics
        )
        overhead = (
            outcome.timings.transformation_only * DEFAULT_OVERHEAD_UNITS_PER_SECOND
        )
        ratio = (optimized + overhead) / original if original else 1.0
        ratios.append(ratio)
        agree = answers_match(setup.schema, setup.store, query, outcome.optimized)
        print(
            f"{query.name:8} {query.class_count:>7} {original:>10.0f} "
            f"{optimized:>10.0f} {overhead:>9.0f} {ratio:>6.2f}  "
            f"{'yes' if outcome.was_transformed else 'no ':11} "
            f"{'ok' if agree else 'MISMATCH'}"
        )

    buckets = {}
    for low in range(0, 120, 10):
        label = f"{low}%"
        buckets[label] = sum(1 for r in ratios if low <= r * 100 < low + 10)
    buckets["110%"] += sum(1 for r in ratios if r >= 1.2)
    print(f"\nCost-ratio histogram for {instance} (cf. Table 4.2):")
    print(format_histogram(buckets, total=len(ratios)))
    faster = sum(1 for r in ratios if r < 1.0)
    print(
        f"\n{faster}/{len(ratios)} queries executed more cheaply after semantic "
        f"optimization on {instance}."
    )


if __name__ == "__main__":
    main()
