"""Extension example: Siegel-style state-derived rules.

Section 1 of the paper notes that rules reflecting the *current database
state* (Siegel 1988, Yu & Sun 1989) "can easily be accommodated" by the same
transformation algorithm.  This example demonstrates that accommodation:

1. generate a small fleet database,
2. derive dynamic rules from its current contents (value ranges and
   functional patterns),
3. add them to the constraint repository next to the declared integrity
   constraints,
4. optimize a query and show which derived rules fired.

Run with::

    python examples/dynamic_rules.py
"""

from repro import SemanticQueryOptimizer, derive_rules
from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.query import format_query


def main() -> None:
    setup = build_evaluation_setup(TABLE_4_1_SPECS["DB1"], query_count=12, seed=19)

    # Derive rules from the current database state.
    derived = derive_rules(
        setup.schema,
        setup.store,
        existing_names={c.name for c in setup.constraints},
    )
    print(f"Derived {len(derived)} state-dependent rules, for example:")
    for rule in derived[:6]:
        print(f"  {rule}")

    # A repository holding both integrity constraints and derived rules.
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    repository.add_all(derived)
    stats = repository.precompile()
    print(
        f"\nRepository: {stats.declared} rules "
        f"({len(setup.constraints)} static, {len(derived)} derived), "
        f"{stats.closed} after closure"
    )

    optimizer = SemanticQueryOptimizer(
        setup.schema,
        repository=repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )

    derived_names = {rule.name for rule in derived}
    for query in setup.queries:
        result = optimizer.optimize(query)
        fired_derived = [
            record
            for record in result.trace
            if record.constraint_name in derived_names
        ]
        if not fired_derived:
            continue
        print(f"\nQuery {query.name}: {format_query(query)}")
        print("  transformations driven by state-derived rules:")
        for record in fired_derived:
            print(f"    {record.describe()}")
        print(f"  optimized: {format_query(result.optimized)}")
        print(
            "  note: equivalence holds in the *current* database state only, "
            "as Siegel's extension defines."
        )


if __name__ == "__main__":
    main()
