"""Extension example: budgeted optimization with the priority queue.

Section 4 of the paper proposes turning the transformation queue into a
priority queue "when it is necessary to assign a budget and limit the number
of transformations".  This example optimizes the same workload under a
one-transformation budget with both queue disciplines and compares which
kinds of transformations each spends its budget on and how good the
resulting queries are.

Run with::

    python examples/budgeted_optimization.py
"""

from collections import Counter

from repro import QueryExecutor, SemanticQueryOptimizer
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup


def run(setup, use_priority: bool, budget: int):
    optimizer = SemanticQueryOptimizer(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(
            use_priority_queue=use_priority,
            transformation_budget=budget,
            record_access_statistics=False,
        ),
    )
    executor = QueryExecutor(setup.schema, setup.store)
    kinds = Counter()
    ratios = []
    for query in setup.queries:
        result = optimizer.optimize(query)
        kinds.update(
            record.kind.value for record in result.trace if record.constraint_name
        )
        original = setup.cost_model.measured_cost(executor.execute(query).metrics)
        optimized = setup.cost_model.measured_cost(
            executor.execute(result.optimized).metrics
        )
        ratios.append(optimized / original if original else 1.0)
    return kinds, sum(ratios) / len(ratios)


def main() -> None:
    setup = build_evaluation_setup(TABLE_4_1_SPECS["DB2"], query_count=30, seed=7)
    budget = 1
    print(f"Workload: {len(setup.queries)} queries, budget: {budget} transformation/query\n")
    for use_priority in (False, True):
        name = "priority queue" if use_priority else "FIFO queue"
        kinds, mean_ratio = run(setup, use_priority, budget)
        print(f"{name}:")
        for kind, count in sorted(kinds.items()):
            print(f"  {kind:28} x{count}")
        print(f"  mean optimized/original cost ratio: {mean_ratio:.3f}\n")
    print(
        "The priority queue spends its single allowed transformation on index "
        "introductions first, which is where the execution-cost savings are."
    )


if __name__ == "__main__":
    main()
