"""Walkthrough of the paper's worked example (Figure 2.3 / Section 3.5).

Reproduces, step by step, the optimization of the sample query "List the
vehicle# of refrigerated trucks that we sent to SFI to collect cargoes, and
the description and quantity of the cargoes to be collected":

* the initial transformation table T and queue Q,
* transformation #1 (restriction introduction using c1),
* transformation #2 (restriction elimination using c2),
* transformation #3 (class elimination of supplier),
* the final transformed query of Figure 2.3.

Run with::

    python examples/paper_walkthrough.py
"""

from repro import (
    ConstraintRepository,
    SemanticQueryOptimizer,
    build_example_constraints,
    build_example_schema,
    format_query,
    parse_query,
)
from repro.core import TransformationEngine, initialize


def main() -> None:
    schema = build_example_schema()
    constraints = build_example_constraints()
    repository = ConstraintRepository(schema)
    repository.add_all(constraints)

    print("Semantic constraints (Figure 2.2):")
    for constraint in constraints:
        print(f"  {constraint}")

    query = parse_query(
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
        '{collects, supplies} {supplier, cargo, vehicle})',
        name="figure_2_3",
    )
    print("\nSample query (Figure 2.3):")
    print(format_query(query, multiline=True, indent="  "))

    # Step 1: initialization — build C, P and the transformation table T.
    relevant, retrieval = repository.retrieve_relevant(
        query.classes, query_relationships=query.relationships
    )
    print(
        f"\nStep 1 — initialization: fetched {retrieval.fetched} constraints "
        f"from the groups of the query's classes, {retrieval.relevant} relevant"
    )
    init = initialize(query, relevant, assume_relevant=True)
    print("Initial transformation table T:")
    print("  " + init.table.render().replace("\n", "\n  "))

    # Step 2: transformations — run the queue and show each firing.
    engine = TransformationEngine(init.table, schema)
    trace = engine.run()
    print("\nStep 2 — transformations:")
    for index, record in enumerate(trace, start=1):
        print(f"  #{index} {record.describe()}")
    print("Final transformation table T:")
    print("  " + init.table.render().replace("\n", "\n  "))

    # Step 3: query formulation (including class elimination), via the full
    # optimizer so profitability analysis runs exactly as in the library.
    optimizer = SemanticQueryOptimizer(schema, repository=repository)
    result = optimizer.optimize(query)
    print("\nStep 3 — query formulation:")
    for predicate, tag in result.predicate_tags.items():
        print(f"  {predicate}  ->  {tag.value}")
    print(f"  eliminated classes: {result.eliminated_classes}")
    print("\nTransformed query (matches Figure 2.3, transformation #3):")
    print(format_query(result.optimized, multiline=True, indent="  "))


if __name__ == "__main__":
    main()
