"""Quickstart: optimize a single query with semantic knowledge.

Builds the paper's Figure 2.1 logistics schema, declares the Figure 2.2
semantic constraints, and runs the semantic query optimizer on a simple
query, printing the transformation trace and the final query in the paper's
notation.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ConstraintRepository,
    SemanticQueryOptimizer,
    build_example_constraints,
    build_example_schema,
    format_query,
    parse_query,
)


def main() -> None:
    # 1. The schema: object classes, pointer relationships, indexes.
    schema = build_example_schema()
    print("Schema classes:", ", ".join(schema.class_names()))

    # 2. The semantic knowledge: Horn-clause constraints, precompiled into a
    #    repository (transitive closure + grouping by object class).
    repository = ConstraintRepository(schema)
    repository.add_all(build_example_constraints())
    stats = repository.precompile()
    print(
        f"Constraints: {stats.declared} declared, {stats.derived} derived by "
        f"closure, {stats.intra_class} intra-class / {stats.inter_class} inter-class"
    )

    # 3. A query in the paper's five-part notation: list frozen-food cargoes
    #    supplied by SFI together with the collecting vehicle.
    query = parse_query(
        '(SELECT {vehicle.vehicle#, cargo.quantity} { } '
        '{cargo.desc = "frozen food", supplier.name = "SFI"} '
        '{collects, supplies} {supplier, cargo, vehicle})',
        name="quickstart",
    )
    print("\nOriginal query:")
    print(format_query(query, multiline=True, indent="  "))

    # 4. Optimize.
    optimizer = SemanticQueryOptimizer(schema, repository=repository)
    result = optimizer.optimize(query)

    print("\nTransformations applied:")
    print(result.trace.describe())
    print("\nPredicate classification:")
    for predicate, tag in result.predicate_tags.items():
        print(f"  [{tag.value:10}] {predicate}")
    print("\nOptimized query:")
    print(format_query(result.optimized, multiline=True, indent="  "))
    print(f"\n{result.summary()}")


if __name__ == "__main__":
    main()
