"""Transformation traces.

Every transformation the optimizer applies (tentatively, on the table) is
recorded as a :class:`TransformationRecord`; the whole list forms the trace
attached to an :class:`~repro.core.optimizer.OptimizationResult`.  Traces
are what the worked-example test checks against the paper's Section 3.5 and
what the examples print to explain the optimizer's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..constraints.predicate import Predicate
from .rules import TransformationKind
from .tags import PredicateTag


@dataclass(frozen=True)
class TransformationRecord:
    """One applied transformation.

    Attributes
    ----------
    kind:
        Which rule fired.
    constraint_name:
        The semantic constraint used (empty for class elimination).
    predicate:
        The consequent predicate whose tag changed (``None`` for class
        elimination).
    new_tag:
        The classification assigned by the transformation.
    previous_tag:
        The classification before the transformation (``None`` when the
        predicate was being introduced).
    eliminated_class:
        For class elimination, the dropped class.
    """

    kind: TransformationKind
    constraint_name: str = ""
    predicate: Optional[Predicate] = None
    new_tag: Optional[PredicateTag] = None
    previous_tag: Optional[PredicateTag] = None
    eliminated_class: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.kind is TransformationKind.CLASS_ELIMINATION:
            return f"class elimination: dropped {self.eliminated_class}"
        before = self.previous_tag.value if self.previous_tag else "absent"
        after = self.new_tag.value if self.new_tag else "?"
        return (
            f"{self.kind.value} via {self.constraint_name}: "
            f"{self.predicate} [{before} -> {after}]"
        )


@dataclass
class OptimizationTrace:
    """The ordered list of transformations applied during one optimization."""

    records: List[TransformationRecord] = field(default_factory=list)

    def add(self, record: TransformationRecord) -> None:
        """Append a record."""
        self.records.append(record)

    def of_kind(self, kind: TransformationKind) -> List[TransformationRecord]:
        """All records of one transformation kind."""
        return [record for record in self.records if record.kind is kind]

    def eliminations(self) -> List[TransformationRecord]:
        """Restriction eliminations performed."""
        return self.of_kind(TransformationKind.RESTRICTION_ELIMINATION)

    def introductions(self) -> List[TransformationRecord]:
        """Index and restriction introductions performed."""
        return self.of_kind(TransformationKind.INDEX_INTRODUCTION) + self.of_kind(
            TransformationKind.RESTRICTION_INTRODUCTION
        )

    def class_eliminations(self) -> List[TransformationRecord]:
        """Class eliminations performed."""
        return self.of_kind(TransformationKind.CLASS_ELIMINATION)

    def constraints_used(self) -> List[str]:
        """Names of constraints that fired, in firing order."""
        return [r.constraint_name for r in self.records if r.constraint_name]

    def describe(self) -> str:
        """Multi-line description of the whole trace."""
        if not self.records:
            return "(no transformations applied)"
        return "\n".join(
            f"#{index + 1} {record.describe()}"
            for index, record in enumerate(self.records)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
