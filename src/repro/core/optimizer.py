"""The semantic query optimizer (the paper's contribution, end to end).

:class:`SemanticQueryOptimizer` strings the four components of Figure 3.1
together — initialization, update-transformation-queue, transformation and
query formulation — and measures each phase, because the phase timings are
exactly what the paper's Figure 4.1 reports (query transformation time,
excluding constraint retrieval I/O).

The optimizer can be driven from a
:class:`~repro.constraints.repository.ConstraintRepository` (the normal
setup: grouping, closure and relevance filtering all happen there) or from
an explicit constraint list (convenient in unit tests and in the baseline
comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..constraints.groups import RetrievalStats
from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import Predicate
from ..constraints.repository import ConstraintRepository
from ..query.equivalence import structurally_equal
from ..query.query import Query
from ..schema.schema import Schema
from .formulation import FormulationResult, QueryFormulator
from .initialization import InitializationResult, initialize
from .profitability import ProfitabilityAnalyzer
from .queue import PriorityTransformationQueue, TransformationQueue
from .tags import PredicateTag
from .trace import OptimizationTrace
from .transformation import TransformationEngine, TransformationStats

try:  # pragma: no cover - engine is always available in-tree
    from ..engine.cost_model import CostModel
except Exception:  # pragma: no cover
    CostModel = None  # type: ignore[assignment]


@dataclass
class OptimizerConfig:
    """Behavioural switches of the optimizer.

    Parameters
    ----------
    use_priority_queue:
        Use the Section 4 priority queue instead of the FIFO queue.
    transformation_budget:
        Optional cap on the number of transformations performed; most useful
        together with the priority queue.
    enable_class_elimination:
        Apply the class elimination rule during formulation.
    use_implication:
        Let query predicates satisfy constraint antecedents by implication
        (not just verbatim match) during initialization.
    record_access_statistics:
        Update the repository's access-frequency statistics on retrieval.
    """

    use_priority_queue: bool = False
    transformation_budget: Optional[int] = None
    enable_class_elimination: bool = True
    use_implication: bool = True
    record_access_statistics: bool = True


@dataclass
class PhaseTimings:
    """Wall-clock duration of each optimizer phase, in seconds."""

    retrieval: float = 0.0
    initialization: float = 0.0
    transformation: float = 0.0
    formulation: float = 0.0

    @property
    def total(self) -> float:
        """Total optimization time."""
        return (
            self.retrieval
            + self.initialization
            + self.transformation
            + self.formulation
        )

    @property
    def transformation_only(self) -> float:
        """The paper's "query transformation time": everything except retrieval."""
        return self.initialization + self.transformation + self.formulation


@dataclass
class OptimizationResult:
    """Everything produced by one optimizer run."""

    original: Query
    optimized: Query
    trace: OptimizationTrace
    predicate_tags: Dict[Predicate, PredicateTag]
    timings: PhaseTimings
    relevant_constraints: int
    distinct_predicates: int
    eliminated_classes: List[str] = field(default_factory=list)
    retained_optional: List[Predicate] = field(default_factory=list)
    discarded_optional: List[Predicate] = field(default_factory=list)
    discarded_redundant: List[Predicate] = field(default_factory=list)
    retrieval_stats: Optional[RetrievalStats] = None
    transformation_stats: Optional[TransformationStats] = None

    @property
    def was_transformed(self) -> bool:
        """Whether the optimized query differs from the original."""
        return not structurally_equal(self.original, self.optimized)

    @property
    def transformations_applied(self) -> int:
        """Number of transformations recorded in the trace."""
        return len(self.trace)

    def summary(self) -> str:
        """A short human-readable summary for logs and examples."""
        return (
            f"{self.relevant_constraints} relevant constraints, "
            f"{self.distinct_predicates} predicates, "
            f"{self.transformations_applied} transformations, "
            f"{len(self.eliminated_classes)} classes eliminated, "
            f"transformation time {self.timings.transformation_only * 1000:.2f} ms"
        )


class SemanticQueryOptimizer:
    """The four-phase semantic query optimization pipeline."""

    def __init__(
        self,
        schema: Schema,
        repository: Optional[ConstraintRepository] = None,
        constraints: Optional[Sequence[SemanticConstraint]] = None,
        cost_model: Optional["CostModel"] = None,
        config: Optional[OptimizerConfig] = None,
        index_probe: Optional[Callable[[str, str], Optional[bool]]] = None,
    ) -> None:
        if repository is None and constraints is None:
            raise ValueError(
                "provide either a constraint repository or an explicit "
                "constraint list"
            )
        self.schema = schema
        self.repository = repository
        self.explicit_constraints = list(constraints) if constraints else None
        self.cost_model = cost_model
        self.config = config or OptimizerConfig()
        # Live index availability for profitability decisions; the static
        # schema is only the fallback (see ProfitabilityAnalyzer).
        self.index_probe = index_probe
        # Optional predicate over retrieved constraints; a service wires a
        # rule-payoff tracker here so demoted rules sit out of
        # transformation without being undeclared from the repository.
        self.rule_filter: Optional[
            Callable[[SemanticConstraint], bool]
        ] = None

    # ------------------------------------------------------------------
    # Constraint retrieval
    # ------------------------------------------------------------------
    def _retrieve(self, query: Query):
        """Fetch the relevant constraints for ``query``."""
        if self.repository is not None:
            relevant, stats = self.repository.retrieve_relevant(
                query.classes,
                query_relationships=query.relationships,
                record_access=self.config.record_access_statistics,
            )
        else:
            assert self.explicit_constraints is not None
            relevant = [
                c
                for c in self.explicit_constraints
                if c.is_relevant_to(
                    query.referenced_classes(), query.relationships
                )
            ]
            stats = RetrievalStats(
                groups_touched=0,
                fetched=len(self.explicit_constraints),
                relevant=len(relevant),
            )
        if self.rule_filter is not None:
            relevant = [c for c in relevant if self.rule_filter(c)]
        return relevant, stats

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> OptimizationResult:
        """Run the full pipeline on ``query`` and return the result."""
        query.validate(self.schema)
        timings = PhaseTimings()

        start = time.perf_counter()
        relevant, retrieval_stats = self._retrieve(query)
        timings.retrieval = time.perf_counter() - start

        start = time.perf_counter()
        init: InitializationResult = initialize(
            query,
            relevant,
            use_implication=self.config.use_implication,
            assume_relevant=True,
        )
        timings.initialization = time.perf_counter() - start

        start = time.perf_counter()
        queue: TransformationQueue = (
            PriorityTransformationQueue()
            if self.config.use_priority_queue
            else TransformationQueue()
        )
        engine = TransformationEngine(
            init.table,
            self.schema,
            queue=queue,
            transformation_budget=self.config.transformation_budget,
        )
        trace = engine.run()
        timings.transformation = time.perf_counter() - start

        start = time.perf_counter()
        analyzer = ProfitabilityAnalyzer(
            self.schema,
            cost_model=self.cost_model,
            index_probe=self.index_probe,
        )
        formulator = QueryFormulator(
            self.schema,
            analyzer=analyzer,
            enable_class_elimination=self.config.enable_class_elimination,
        )
        formulation: FormulationResult = formulator.formulate(
            query, init.table, trace=trace
        )
        timings.formulation = time.perf_counter() - start

        return OptimizationResult(
            original=query,
            optimized=formulation.query,
            trace=trace,
            predicate_tags=formulation.predicate_tags,
            timings=timings,
            relevant_constraints=len(init.constraints),
            distinct_predicates=init.table.predicate_count(),
            eliminated_classes=formulation.eliminated_classes,
            retained_optional=formulation.retained_optional,
            discarded_optional=formulation.discarded_optional,
            discarded_redundant=formulation.discarded_redundant,
            retrieval_stats=retrieval_stats,
            transformation_stats=engine.stats,
        )

    def optimize_all(self, queries: Iterable[Query]) -> List[OptimizationResult]:
        """Optimize a workload of queries."""
        return [self.optimize(query) for query in queries]
