"""The transformation rules of Tables 3.1, 3.2 and 3.3.

Three decisions are table-driven in the paper and reproduced here verbatim:

* **Table 3.1** — when *restriction elimination* fires a constraint whose
  consequent predicate is already in the query, what does the predicate's
  tag become?
* **Table 3.2** — when *index / restriction introduction* fires a constraint
  whose consequent predicate is *not* in the query, what tag does the newly
  introduced predicate get?
* **Table 3.3** — at query-formulation time, is a predicate retained,
  discarded, or subjected to cost-benefit analysis, based on its final tag?

Both 3.1 and 3.2 reduce to the same mapping (the paper's prose spells out the
reasoning): an intra-class constraint whose consequent is **not** on an
indexed attribute yields ``redundant``; an intra-class constraint whose
consequent **is** indexed yields ``optional``; an inter-class constraint
always yields ``optional``.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..constraints.horn_clause import ConstraintClass
from .tags import PredicateTag


class TransformationKind(enum.Enum):
    """Which transformation rule a queue entry will perform."""

    #: The consequent predicate is already in the query; firing lowers its tag.
    RESTRICTION_ELIMINATION = "restriction_elimination"
    #: The consequent predicate is absent and on an indexed attribute; firing
    #: introduces it as an (optional) indexed predicate.
    INDEX_INTRODUCTION = "index_introduction"
    #: The consequent predicate is absent and not indexed; firing introduces it.
    RESTRICTION_INTRODUCTION = "restriction_introduction"
    #: Performed at query-formulation time rather than through the queue.
    CLASS_ELIMINATION = "class_elimination"


#: Default priorities for the Section 4 priority-queue enhancement: "index
#: introduction is likely to be more profitable than predicate elimination,
#: and predicate elimination is preferred over predicate introduction".
#: Lower numbers are served first.
DEFAULT_PRIORITIES = {
    TransformationKind.INDEX_INTRODUCTION: 0,
    TransformationKind.RESTRICTION_ELIMINATION: 1,
    TransformationKind.RESTRICTION_INTRODUCTION: 2,
    TransformationKind.CLASS_ELIMINATION: 3,
}


def target_tag(
    constraint_class: ConstraintClass, consequent_indexed: bool
) -> PredicateTag:
    """The tag a fired constraint assigns to its consequent predicate.

    Implements the shared mapping of Tables 3.1 and 3.2:

    ========== ================= ==========
    constraint consequent indexed new tag
    ========== ================= ==========
    intra      no                 redundant
    intra      yes                optional
    inter      (don't care)       optional
    ========== ================= ==========
    """
    if constraint_class is ConstraintClass.INTRA:
        return PredicateTag.OPTIONAL if consequent_indexed else PredicateTag.REDUNDANT
    return PredicateTag.OPTIONAL


def classify_transformation(
    present_in_query: bool, consequent_indexed: bool
) -> TransformationKind:
    """Which transformation a fireable constraint will perform.

    A constraint whose consequent is already present performs restriction
    elimination; otherwise it introduces the predicate — as an index
    introduction when the consequent attribute is indexed, as a plain
    restriction introduction when it is not.
    """
    if present_in_query:
        return TransformationKind.RESTRICTION_ELIMINATION
    if consequent_indexed:
        return TransformationKind.INDEX_INTRODUCTION
    return TransformationKind.RESTRICTION_INTRODUCTION


class RetentionAction(enum.Enum):
    """Table 3.3: what to do with a predicate given its final tag."""

    RETAIN = "retain"
    COST_BENEFIT = "cost-benefit analysis"
    DISCARD = "discard"


def retention_action(tag: PredicateTag) -> RetentionAction:
    """Table 3.3 lookup."""
    if tag is PredicateTag.IMPERATIVE:
        return RetentionAction.RETAIN
    if tag is PredicateTag.OPTIONAL:
        return RetentionAction.COST_BENEFIT
    return RetentionAction.DISCARD


def priority_for(
    kind: TransformationKind, overrides: Optional[dict] = None
) -> int:
    """Priority of a transformation kind (lower is served earlier)."""
    if overrides and kind in overrides:
        return overrides[kind]
    return DEFAULT_PRIORITIES[kind]
