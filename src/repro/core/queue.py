"""The transformation queue ``Q``.

The queue holds the semantic constraints that are currently *fireable*: all
their antecedent predicates are present (in the query or introduced by an
earlier transformation) and firing them would still achieve something (lower
a tag or introduce a predicate).  The base implementation is the FIFO queue
of Section 3; :class:`PriorityTransformationQueue` is the Section 4
enhancement that serves more promising transformation kinds first, which
matters when the optimizer runs under a transformation budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from .rules import DEFAULT_PRIORITIES, TransformationKind, priority_for


@dataclass(frozen=True)
class QueueEntry:
    """One pending transformation: a constraint plus the kind of rule it fires."""

    constraint_name: str
    kind: TransformationKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint_name} ({self.kind.value})"


class TransformationQueue:
    """FIFO queue of fireable constraints.

    A constraint is never queued twice while it is still pending; it may be
    re-queued after it has been served if a later transformation makes it
    fireable again (this cannot loop because tags only ever go down).
    """

    def __init__(self) -> None:
        self._entries: List[QueueEntry] = []
        self._pending: Dict[str, QueueEntry] = {}
        self._enqueued_total = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, entry: QueueEntry) -> bool:
        """Add ``entry`` unless the constraint is already pending.

        Returns ``True`` when the entry was added.
        """
        if entry.constraint_name in self._pending:
            return False
        self._entries.append(entry)
        self._pending[entry.constraint_name] = entry
        self._enqueued_total += 1
        return True

    def pop(self) -> QueueEntry:
        """Remove and return the next entry (FIFO order)."""
        if not self._entries:
            raise IndexError("pop from an empty transformation queue")
        entry = self._entries.pop(0)
        self._pending.pop(entry.constraint_name, None)
        return entry

    def discard(self, constraint_name: str) -> None:
        """Remove a pending entry for ``constraint_name``, if any."""
        entry = self._pending.pop(constraint_name, None)
        if entry is not None:
            self._entries = [e for e in self._entries if e is not entry]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, constraint_name: str) -> bool:
        """Whether ``constraint_name`` is currently pending."""
        return constraint_name in self._pending

    @property
    def enqueued_total(self) -> int:
        """How many entries were pushed over the queue's lifetime."""
        return self._enqueued_total

    def pending(self) -> List[QueueEntry]:
        """A snapshot of the pending entries in service order."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class PriorityTransformationQueue(TransformationQueue):
    """Priority-ordered queue (the Section 4 enhancement).

    Entries are served by ascending priority of their transformation kind
    (index introduction first by default), with FIFO order among equal
    priorities so behaviour is deterministic.
    """

    def __init__(
        self, priorities: Optional[Dict[TransformationKind, int]] = None
    ) -> None:
        super().__init__()
        self._priorities = dict(DEFAULT_PRIORITIES)
        if priorities:
            self._priorities.update(priorities)
        self._heap: List[tuple] = []
        self._sequence = 0

    def push(self, entry: QueueEntry) -> bool:
        if entry.constraint_name in self._pending:
            return False
        self._pending[entry.constraint_name] = entry
        priority = priority_for(entry.kind, self._priorities)
        heapq.heappush(self._heap, (priority, self._sequence, entry))
        self._sequence += 1
        self._enqueued_total += 1
        return True

    def pop(self) -> QueueEntry:
        while self._heap:
            _priority, _sequence, entry = heapq.heappop(self._heap)
            if self._pending.get(entry.constraint_name) is entry:
                del self._pending[entry.constraint_name]
                return entry
        raise IndexError("pop from an empty transformation queue")

    def discard(self, constraint_name: str) -> None:
        # Lazy deletion: drop the pending marker; stale heap entries are
        # skipped by pop().
        self._pending.pop(constraint_name, None)

    def pending(self) -> List[QueueEntry]:
        ordered = sorted(self._heap)
        return [
            entry
            for _priority, _sequence, entry in ordered
            if self._pending.get(entry.constraint_name) is entry
        ]

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)
