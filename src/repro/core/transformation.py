"""The queue-driven transformation step (Sections 3.2 and 3.3).

The :class:`TransformationEngine` repeatedly

1. identifies the constraints that can be *fired* — all antecedents present
   and firing would still lower a tag or introduce a predicate — and places
   them on the transformation queue (Section 3.2, *Update Transformation
   Queue*), then
2. serves the queue: each served constraint changes the tag of its
   consequent predicate in the transformation table according to Tables 3.1
   and 3.2 and propagates the change down the predicate's column
   (Section 3.3, *Transformation*).

The query itself is never touched: every transformation is tentative and
recorded only in the table (plus the trace), so transformations can never
preclude one another and their order is immaterial.  The work performed is
bounded by the size of the table — ``O(m·n)`` for ``m`` distinct predicates
and ``n`` relevant constraints — because each cell can only be lowered a
constant number of times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import Predicate
from ..schema.schema import Schema
from .queue import QueueEntry, TransformationQueue
from .rules import TransformationKind, classify_transformation, target_tag
from .table import TransformationTable
from .tags import CellTag, PredicateTag, can_lower
from .trace import OptimizationTrace, TransformationRecord


@dataclass
class TransformationStats:
    """Counters describing one transformation run."""

    fired: int = 0
    enqueued: int = 0
    skipped_already_lowered: int = 0
    budget_exhausted: bool = False


class TransformationEngine:
    """Runs the tentative-transformation loop over a transformation table."""

    def __init__(
        self,
        table: TransformationTable,
        schema: Schema,
        queue: Optional[TransformationQueue] = None,
        transformation_budget: Optional[int] = None,
    ) -> None:
        self.table = table
        self.schema = schema
        self.queue = queue if queue is not None else TransformationQueue()
        self.transformation_budget = transformation_budget
        self.trace = OptimizationTrace()
        self.stats = TransformationStats()

    # ------------------------------------------------------------------
    # Constraint assessment
    # ------------------------------------------------------------------
    def _consequent_indexed(self, constraint: SemanticConstraint) -> bool:
        """Whether the constraint's consequent is a predicate on an indexed attribute."""
        consequent = constraint.consequent
        if not consequent.is_selection:
            return False
        try:
            return self.schema.is_indexed(
                consequent.left.class_name, consequent.left.attribute_name
            )
        except Exception:
            return False

    def _assess(
        self, constraint: SemanticConstraint
    ) -> Optional[Tuple[TransformationKind, PredicateTag, Optional[PredicateTag]]]:
        """Determine whether firing ``constraint`` would achieve anything.

        Returns ``(kind, new_tag, previous_tag)`` when the constraint is
        useful, ``None`` otherwise.  ``previous_tag`` is ``None`` when the
        consequent predicate would be introduced rather than re-classified.
        """
        cell = self.table.consequent_cell(constraint)
        indexed = self._consequent_indexed(constraint)
        new_tag = target_tag(constraint.classification, indexed)

        if cell is CellTag.ABSENT_CONSEQUENT:
            kind = classify_transformation(present_in_query=False, consequent_indexed=indexed)
            return kind, new_tag, None
        current = cell.as_predicate_tag()
        if current is None:
            # The consequent predicate is not present and not introducible
            # through this cell (should not happen after initialization).
            return None
        if not can_lower(current, new_tag):
            return None
        kind = classify_transformation(present_in_query=True, consequent_indexed=indexed)
        return kind, new_tag, current

    def _is_fireable(self, constraint: SemanticConstraint) -> bool:
        """Whether every antecedent of ``constraint`` is currently present."""
        return self.table.antecedents_all_present(constraint)

    # ------------------------------------------------------------------
    # Queue maintenance (Section 3.2)
    # ------------------------------------------------------------------
    def _consider(self, constraint: SemanticConstraint) -> None:
        """Enqueue ``constraint`` if it is fireable and still useful."""
        if self.queue.contains(constraint.name):
            return
        if not self._is_fireable(constraint):
            return
        assessment = self._assess(constraint)
        if assessment is None:
            return
        kind, _new_tag, _previous = assessment
        if self.queue.push(QueueEntry(constraint.name, kind)):
            self.stats.enqueued += 1

    def update_queue(self, constraints: Optional[Iterable[SemanticConstraint]] = None) -> None:
        """(Re-)populate the queue from the given constraints (default: all rows)."""
        targets = (
            list(constraints)
            if constraints is not None
            else self.table.constraints()
        )
        for constraint in targets:
            self._consider(constraint)

    def _constraints_referencing(self, predicate: Predicate) -> List[SemanticConstraint]:
        """Constraints whose row has a cell in the predicate's column."""
        column = self.table.column(predicate)
        return [self.table.constraint(name) for name in column]

    # ------------------------------------------------------------------
    # Firing (Section 3.3)
    # ------------------------------------------------------------------
    def _fire(self, entry: QueueEntry) -> bool:
        """Serve one queue entry.  Returns ``True`` if a tag actually changed."""
        constraint = self.table.constraint(entry.constraint_name)
        assessment = self._assess(constraint)
        if assessment is None:
            # Some constraint served earlier already lowered the tag — the
            # paper's "ignore c_i then" branch.
            self.stats.skipped_already_lowered += 1
            return False
        kind, new_tag, previous = assessment
        consequent = constraint.consequent
        new_cell = CellTag.from_predicate_tag(new_tag)
        self.table.set(constraint.name, consequent, new_cell)

        # Propagate down the column: other rows that classify this predicate
        # adopt the new classification; rows waiting for it as an absent
        # antecedent now see it present.
        affected = self._constraints_referencing(consequent)
        for other in affected:
            if other.name == constraint.name:
                continue
            cell = self.table.get(other.name, consequent)
            if cell is CellTag.ABSENT_ANTECEDENT:
                self.table.set(
                    other.name, consequent, CellTag.PRESENT_ANTECEDENT
                )
            elif cell.is_classification:
                current = cell.as_predicate_tag()
                if current is not None and new_tag.is_lower_than(current):
                    self.table.set(other.name, consequent, new_cell)

        self.trace.add(
            TransformationRecord(
                kind=kind,
                constraint_name=constraint.name,
                predicate=consequent,
                new_tag=new_tag,
                previous_tag=previous,
            )
        )
        self.stats.fired += 1

        # Newly enabled or newly useful constraints are exactly those whose
        # row mentions the consequent predicate.
        self.update_queue(affected)
        return True

    def run(self) -> OptimizationTrace:
        """Run the transformation loop to completion (or budget exhaustion)."""
        self.update_queue()
        while self.queue:
            if (
                self.transformation_budget is not None
                and self.stats.fired >= self.transformation_budget
            ):
                self.stats.budget_exhausted = True
                break
            entry = self.queue.pop()
            self._fire(entry)
        return self.trace

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def final_tags(self) -> Dict[Predicate, PredicateTag]:
        """Final classification of every candidate predicate."""
        return dict(self.table.final_predicates())
