"""The straight-forward baseline optimizer (Section 4 comparison).

The paper contrasts its tentative-application strategy with "a
straight-forward approach ... to evaluate the profitability of each
transformation, and if deemed profitable, immediately apply it to the
query.  This way, some transformations might preclude other transformations
(eg. eliminating an antecedent predicate of a semantic constraint means it
cannot be used to introduce its consequent predicate) and hence the order of
transformations is important."

:class:`StraightforwardOptimizer` implements exactly that strategy so the
ablation benchmark can demonstrate the two properties the paper claims for
its own algorithm: (1) the tentative approach is never worse, and (2) the
straight-forward approach is sensitive to constraint ordering while the
tentative approach is not.  The baseline also counts how many profitability
evaluations it performs — the paper notes its approach "is only necessary to
test the profitability of a subset of transformations".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.implication import implies
from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema
from .profitability import ProfitabilityAnalyzer

try:  # pragma: no cover - engine is always available in-tree
    from ..engine.cost_model import CostModel
except Exception:  # pragma: no cover
    CostModel = None  # type: ignore[assignment]


@dataclass
class BaselineResult:
    """Outcome of one straight-forward optimization run."""

    original: Query
    optimized: Query
    applied: List[str] = field(default_factory=list)
    profitability_checks: int = 0
    eliminated_classes: List[str] = field(default_factory=list)
    elapsed: float = 0.0


class StraightforwardOptimizer:
    """Immediately applies each profitable transformation, in constraint order."""

    def __init__(
        self,
        schema: Schema,
        constraints: Sequence[SemanticConstraint],
        cost_model: Optional["CostModel"] = None,
        max_passes: int = 4,
        enable_class_elimination: bool = True,
    ) -> None:
        self.schema = schema
        self.constraints = list(constraints)
        self.analyzer = ProfitabilityAnalyzer(schema, cost_model=cost_model)
        self.max_passes = max_passes
        self.enable_class_elimination = enable_class_elimination

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _antecedents_hold(query: Query, constraint: SemanticConstraint) -> bool:
        """Whether the current (physical) query implies every antecedent."""
        return all(
            any(implies(p, antecedent) for p in query.predicates())
            for antecedent in constraint.antecedents
        )

    @staticmethod
    def _remove_predicate(query: Query, predicate: Predicate) -> Query:
        target = predicate.normalized()
        return Query(
            projections=query.projections,
            join_predicates=tuple(
                p for p in query.join_predicates if p.normalized() != target
            ),
            selective_predicates=tuple(
                p for p in query.selective_predicates if p.normalized() != target
            ),
            relationships=query.relationships,
            classes=query.classes,
            name=query.name,
        )

    @staticmethod
    def _add_predicate(query: Query, predicate: Predicate) -> Query:
        if predicate.is_join:
            return Query(
                projections=query.projections,
                join_predicates=query.join_predicates + (predicate,),
                selective_predicates=query.selective_predicates,
                relationships=query.relationships,
                classes=query.classes,
                name=query.name,
            )
        return query.add_selective_predicates([predicate])

    def _try_class_elimination(self, query: Query, result: BaselineResult) -> Query:
        projected = query.projection_classes()
        changed = True
        while changed and len(query.classes) > 1:
            changed = False
            for class_name in query.classes:
                if class_name in projected:
                    continue
                if query.predicates_on(class_name):
                    continue
                degree = sum(
                    1
                    for name in query.relationships
                    if self.schema.relationship(name).involves(class_name)
                )
                if degree > 1:
                    continue
                result.profitability_checks += 1
                decision = self.analyzer.class_elimination_is_profitable(
                    query, class_name
                )
                if not decision.profitable:
                    continue
                keep = [
                    name
                    for name in query.relationships
                    if not self.schema.relationship(name).involves(class_name)
                ]
                query = query.without_classes([class_name]).keep_relationships(keep)
                result.eliminated_classes.append(class_name)
                result.applied.append(f"class elimination: {class_name}")
                changed = True
                break
        return query

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def optimize(self, query: Query) -> BaselineResult:
        """Run the straight-forward strategy over the constraint list."""
        start = time.perf_counter()
        result = BaselineResult(original=query, optimized=query)
        working = query
        query_classes = query.referenced_classes()

        for _pass in range(self.max_passes):
            changed = False
            for constraint in self.constraints:
                if not constraint.is_relevant_to(query_classes, query.relationships):
                    continue
                if not self._antecedents_hold(working, constraint):
                    continue
                consequent = constraint.consequent
                if working.has_predicate(consequent):
                    # Candidate restriction elimination: profitable when the
                    # query is cheaper without the predicate.
                    result.profitability_checks += 1
                    without = self._remove_predicate(working, consequent)
                    decision = self.analyzer.predicate_is_profitable(
                        working, consequent
                    )
                    if not decision.profitable:
                        working = without
                        result.applied.append(
                            f"restriction elimination via {constraint.name}: "
                            f"{consequent}"
                        )
                        changed = True
                else:
                    # Candidate introduction: profitable when the query is
                    # cheaper with the predicate added.
                    if not consequent.referenced_classes() <= query_classes:
                        continue
                    result.profitability_checks += 1
                    decision = self.analyzer.predicate_is_profitable(
                        self._add_predicate(working, consequent), consequent
                    )
                    if decision.profitable:
                        working = self._add_predicate(working, consequent)
                        result.applied.append(
                            f"restriction introduction via {constraint.name}: "
                            f"{consequent}"
                        )
                        changed = True
            if not changed:
                break

        if self.enable_class_elimination:
            working = self._try_class_elimination(working, result)

        result.optimized = working
        result.elapsed = time.perf_counter() - start
        return result
