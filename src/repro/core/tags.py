"""Tags used by the transformation algorithm.

The paper classifies

* **predicates in a query** as ``imperative``, ``optional`` or ``redundant``
  (the tag ``tp(pj)``),
* **cells of the transformation table** ``t(ci, pj)`` with the richer set
  ``{AbsentAntecedent, PresentAntecedent, AbsentConsequent, Imperative,
  Optional, Redundant, _}``, and
* **semantic constraints** as ``intra``- or ``inter``-class (``tc(ci)``,
  modelled by :class:`repro.constraints.horn_clause.ConstraintClass`).

This module defines the first two tag sets plus the *lowering* partial order
``Imperative > Optional > Redundant`` the algorithm relies on: a
transformation may only ever lower a predicate's classification, which is
what makes the tentative-application strategy order-insensitive.
"""

from __future__ import annotations

import enum
from typing import Optional


class PredicateTag(enum.Enum):
    """Final classification of a predicate (``tp`` in the paper).

    * ``IMPERATIVE`` — removal would change the query's answer.
    * ``OPTIONAL`` — inclusion does not change the answer but may change
      execution efficiency; kept only if the cost model finds it profitable.
    * ``REDUNDANT`` — affects neither the answer nor efficiency; dropped.
    """

    IMPERATIVE = "imperative"
    OPTIONAL = "optional"
    REDUNDANT = "redundant"

    @property
    def rank(self) -> int:
        """Lowering rank: imperative (2) > optional (1) > redundant (0)."""
        return _PREDICATE_RANK[self]

    def is_lower_than(self, other: "PredicateTag") -> bool:
        """Whether this tag is a strict lowering of ``other``."""
        return self.rank < other.rank


_PREDICATE_RANK = {
    PredicateTag.IMPERATIVE: 2,
    PredicateTag.OPTIONAL: 1,
    PredicateTag.REDUNDANT: 0,
}


class CellTag(enum.Enum):
    """State of one cell ``t(ci, pj)`` of the transformation table.

    ``NOT_PRESENT`` is the paper's ``_`` — the predicate does not appear in
    the constraint at all.
    """

    ABSENT_ANTECEDENT = "AbsentAntecedent"
    PRESENT_ANTECEDENT = "PresentAntecedent"
    ABSENT_CONSEQUENT = "AbsentConsequent"
    IMPERATIVE = "Imperative"
    PRESENT_OPTIONAL = "Optional"
    PRESENT_REDUNDANT = "Redundant"
    NOT_PRESENT = "_"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @property
    def is_classification(self) -> bool:
        """Whether the cell carries a predicate classification."""
        return self in (
            CellTag.IMPERATIVE,
            CellTag.PRESENT_OPTIONAL,
            CellTag.PRESENT_REDUNDANT,
        )

    @property
    def is_antecedent(self) -> bool:
        """Whether the predicate is an antecedent of the row's constraint."""
        return self in (CellTag.ABSENT_ANTECEDENT, CellTag.PRESENT_ANTECEDENT)

    @property
    def is_consequent(self) -> bool:
        """Whether the predicate is the consequent of the row's constraint."""
        return self in (
            CellTag.ABSENT_CONSEQUENT,
            CellTag.IMPERATIVE,
            CellTag.PRESENT_OPTIONAL,
            CellTag.PRESENT_REDUNDANT,
        )

    def as_predicate_tag(self) -> Optional[PredicateTag]:
        """The predicate tag this cell encodes, if any."""
        mapping = {
            CellTag.IMPERATIVE: PredicateTag.IMPERATIVE,
            CellTag.PRESENT_OPTIONAL: PredicateTag.OPTIONAL,
            CellTag.PRESENT_REDUNDANT: PredicateTag.REDUNDANT,
        }
        return mapping.get(self)

    @staticmethod
    def from_predicate_tag(tag: PredicateTag) -> "CellTag":
        """The cell tag encoding a predicate classification."""
        mapping = {
            PredicateTag.IMPERATIVE: CellTag.IMPERATIVE,
            PredicateTag.OPTIONAL: CellTag.PRESENT_OPTIONAL,
            PredicateTag.REDUNDANT: CellTag.PRESENT_REDUNDANT,
        }
        return mapping[tag]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def lower_of(first: PredicateTag, second: PredicateTag) -> PredicateTag:
    """The lower (weaker) of two predicate tags."""
    return first if first.rank <= second.rank else second


def can_lower(current: Optional[PredicateTag], target: PredicateTag) -> bool:
    """Whether a cell currently classified ``current`` can be lowered to ``target``.

    ``current`` is ``None`` for an ``AbsentConsequent`` cell — introduction is
    always possible there, whatever the target classification.
    """
    if current is None:
        return True
    return target.is_lower_than(current)
