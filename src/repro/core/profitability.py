"""Profitability analysis for optional predicates and class elimination.

The paper delegates the decision to retain an *optional* predicate — and the
decision to eliminate a dangling class — to "a cost model and conventional
query optimization techniques".  :class:`ProfitabilityAnalyzer` provides
that decision procedure:

* with a :class:`~repro.engine.cost_model.CostModel` (i.e. with database
  statistics available), the analyzer compares the estimated execution cost
  of the working query with and without the candidate predicate/class and
  keeps whichever alternative is cheaper;
* without a cost model, it falls back to a structural heuristic: optional
  predicates on indexed attributes are retained (they enable index scans,
  the paper's primary motivation for index introduction), other optional
  predicates are retained only when they are the sole selective predicate on
  their class (they then cut intermediate results), and dangling classes are
  always eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema

try:  # pragma: no cover - import guard exercised implicitly
    from ..engine.cost_model import CostModel
except Exception:  # pragma: no cover - engine is always available in-tree
    CostModel = None  # type: ignore[assignment]


@dataclass
class ProfitabilityDecision:
    """Outcome of a profitability question, with the numbers behind it."""

    profitable: bool
    cost_with: Optional[float] = None
    cost_without: Optional[float] = None
    reason: str = ""

    @property
    def saving(self) -> Optional[float]:
        """Estimated cost saving (positive when the change helps)."""
        if self.cost_with is None or self.cost_without is None:
            return None
        return self.cost_without - self.cost_with


class ProfitabilityAnalyzer:
    """Cost-benefit decisions used during query formulation."""

    def __init__(
        self,
        schema: Schema,
        cost_model: Optional["CostModel"] = None,
        epsilon: float = 1e-9,
        index_probe: Optional[Callable[[str, str], Optional[bool]]] = None,
    ) -> None:
        self.schema = schema
        self.cost_model = cost_model
        self.epsilon = epsilon
        # Live index availability (e.g. the store's IndexManager).  The
        # static schema only records the *declared* index set; runtime
        # create/drop (the auto-indexer, operators) must steer the
        # heuristic too, or a dropped index keeps attracting predicates
        # that no longer pay off.
        self.index_probe = index_probe

    def _is_indexed(self, class_name: str, attribute_name: str) -> bool:
        if self.index_probe is not None:
            try:
                known = self.index_probe(class_name, attribute_name)
            except Exception:
                known = None
            if known is not None:
                return bool(known)
        try:
            return self.schema.is_indexed(class_name, attribute_name)
        except Exception:
            return False

    # ------------------------------------------------------------------
    # Optional predicates
    # ------------------------------------------------------------------
    def predicate_is_profitable(
        self, query: Query, predicate: Predicate
    ) -> ProfitabilityDecision:
        """Should ``predicate`` be retained in ``query``?

        ``query`` is the working query *including* the predicate when it is
        already part of it; the analyzer always compares the variant with the
        predicate against the variant without it.
        """
        if self.cost_model is not None:
            with_predicate = (
                query
                if query.has_predicate(predicate)
                else query.add_selective_predicates([predicate])
            )
            without_predicate = with_predicate.with_selective_predicates(
                [
                    p
                    for p in with_predicate.selective_predicates
                    if p.normalized() != predicate.normalized()
                ]
            )
            cost_with = self.cost_model.estimate_query_cost(with_predicate)
            cost_without = self.cost_model.estimate_query_cost(without_predicate)
            return ProfitabilityDecision(
                profitable=cost_with + self.epsilon < cost_without,
                cost_with=cost_with,
                cost_without=cost_without,
                reason="cost-model comparison",
            )
        return self._heuristic_predicate_decision(query, predicate)

    def _heuristic_predicate_decision(
        self, query: Query, predicate: Predicate
    ) -> ProfitabilityDecision:
        if predicate.is_selection:
            class_name = predicate.left.class_name
            attribute_name = predicate.left.attribute_name
            if self._is_indexed(class_name, attribute_name):
                return ProfitabilityDecision(
                    profitable=True,
                    reason="selection on an indexed attribute enables an index scan",
                )
            other_selections = [
                p
                for p in query.selective_predicates
                if p.normalized() != predicate.normalized()
                and p.referenced_classes() == frozenset({class_name})
            ]
            if not other_selections:
                return ProfitabilityDecision(
                    profitable=True,
                    reason=(
                        "only selective predicate on its class; cuts the "
                        "instances flowing into later joins"
                    ),
                )
            return ProfitabilityDecision(
                profitable=False,
                reason="not indexed and the class is already restricted",
            )
        return ProfitabilityDecision(
            profitable=False,
            reason="cross-class comparison adds CPU work without cutting retrieval",
        )

    # ------------------------------------------------------------------
    # Class elimination
    # ------------------------------------------------------------------
    def class_elimination_is_profitable(
        self, query: Query, class_name: str
    ) -> ProfitabilityDecision:
        """Should the dangling class ``class_name`` be dropped from ``query``?"""
        if self.cost_model is not None:
            reduced = query.without_classes([class_name])
            remaining_relationships = [
                name
                for name in query.relationships
                if self.schema.relationship(name).source != class_name
                and self.schema.relationship(name).target != class_name
            ]
            reduced = reduced.keep_relationships(remaining_relationships)
            cost_with = self.cost_model.estimate_query_cost(query)
            cost_without = self.cost_model.estimate_query_cost(reduced)
            return ProfitabilityDecision(
                profitable=cost_without + self.epsilon < cost_with,
                cost_with=cost_with,
                cost_without=cost_without,
                reason="cost-model comparison",
            )
        return ProfitabilityDecision(
            profitable=True,
            reason="dangling class contributes no output and no restriction",
        )
