"""The transformation table ``T``.

``T`` has one row per relevant semantic constraint and one column per
distinct predicate appearing in the query or in any relevant constraint.
Each cell ``t(ci, pj)`` records the role predicate ``pj`` plays in constraint
``ci`` together with its current classification (see
:class:`repro.core.tags.CellTag`).  The whole transformation process only
ever mutates this table — the query itself is untouched until formulation —
which is the paper's central trick for making transformation order
immaterial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import Predicate
from .tags import CellTag, PredicateTag


class TransformationTable:
    """The (constraint x predicate) tag table.

    Rows are keyed by constraint name, columns by the normalized predicate's
    identity key.  The table also remembers which predicates were part of the
    original query and the interned predicate objects themselves, since the
    formulation step needs to turn columns back into predicates.
    """

    def __init__(
        self,
        constraints: Sequence[SemanticConstraint],
        predicates: Sequence[Predicate],
        query_predicates: Iterable[Predicate],
    ) -> None:
        self._constraints: Dict[str, SemanticConstraint] = {
            c.name: c for c in constraints
        }
        self._constraint_order: List[str] = [c.name for c in constraints]
        self._predicates: Dict[Tuple, Predicate] = {}
        self._predicate_order: List[Tuple] = []
        for predicate in predicates:
            key = predicate.normalized().key()
            if key not in self._predicates:
                self._predicates[key] = predicate.normalized()
                self._predicate_order.append(key)
        self._query_keys = {p.normalized().key() for p in query_predicates}
        self._cells: Dict[Tuple[str, Tuple], CellTag] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def constraint_names(self) -> List[str]:
        """Row keys in insertion order."""
        return list(self._constraint_order)

    def constraints(self) -> List[SemanticConstraint]:
        """The constraints forming the rows."""
        return [self._constraints[name] for name in self._constraint_order]

    def constraint(self, name: str) -> SemanticConstraint:
        """Row lookup by constraint name."""
        return self._constraints[name]

    def predicates(self) -> List[Predicate]:
        """The predicates forming the columns, in insertion order."""
        return [self._predicates[key] for key in self._predicate_order]

    def predicate_count(self) -> int:
        """Number of columns (``m`` in the complexity bound)."""
        return len(self._predicate_order)

    def constraint_count(self) -> int:
        """Number of rows (``n`` in the complexity bound)."""
        return len(self._constraint_order)

    def was_in_query(self, predicate: Predicate) -> bool:
        """Whether ``predicate`` appeared in the original query."""
        return predicate.normalized().key() in self._query_keys

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------
    def _key(self, predicate: Predicate) -> Tuple:
        return predicate.normalized().key()

    def get(self, constraint_name: str, predicate: Predicate) -> CellTag:
        """The cell ``t(constraint, predicate)`` (``NOT_PRESENT`` by default)."""
        return self._cells.get(
            (constraint_name, self._key(predicate)), CellTag.NOT_PRESENT
        )

    def set(
        self, constraint_name: str, predicate: Predicate, tag: CellTag
    ) -> None:
        """Set the cell ``t(constraint, predicate)``."""
        if constraint_name not in self._constraints:
            raise KeyError(f"unknown constraint {constraint_name!r}")
        key = self._key(predicate)
        if key not in self._predicates:
            self._predicates[key] = predicate.normalized()
            self._predicate_order.append(key)
        self._cells[(constraint_name, key)] = tag

    def column(self, predicate: Predicate) -> Dict[str, CellTag]:
        """All non-``NOT_PRESENT`` cells of the predicate's column."""
        key = self._key(predicate)
        return {
            name: self._cells[(name, key)]
            for name in self._constraint_order
            if (name, key) in self._cells
        }

    def row(self, constraint_name: str) -> Dict[Tuple, CellTag]:
        """All non-``NOT_PRESENT`` cells of a constraint's row."""
        return {
            key: tag
            for (name, key), tag in self._cells.items()
            if name == constraint_name
        }

    # ------------------------------------------------------------------
    # Derived views used by the algorithm
    # ------------------------------------------------------------------
    def consequent_cell(self, constraint: SemanticConstraint) -> CellTag:
        """The cell of the constraint's consequent predicate."""
        return self.get(constraint.name, constraint.consequent)

    def antecedents_all_present(self, constraint: SemanticConstraint) -> bool:
        """Whether every antecedent of ``constraint`` is PresentAntecedent.

        Constraints with an empty antecedent list (class-membership-only
        conditions such as c3 and c4 of the paper) are trivially fireable.
        """
        return all(
            self.get(constraint.name, antecedent) is CellTag.PRESENT_ANTECEDENT
            for antecedent in constraint.antecedents
        )

    def classification_of(self, predicate: Predicate) -> Optional[PredicateTag]:
        """The classification carried by the predicate's column, if any.

        Because the transformation step propagates every lowering to all
        classification cells of the column, any classified cell is
        representative; for robustness the lowest classification found is
        returned.
        """
        lowest: Optional[PredicateTag] = None
        for tag in self.column(predicate).values():
            predicate_tag = tag.as_predicate_tag()
            if predicate_tag is None:
                continue
            if lowest is None or predicate_tag.rank < lowest.rank:
                lowest = predicate_tag
        return lowest

    def was_introduced(self, predicate: Predicate) -> bool:
        """Whether ``predicate`` was absent from the query but got classified.

        This happens exactly when an introduction transformation fired for
        it: some cell moved from ``AbsentConsequent`` to a classification.
        """
        if self.was_in_query(predicate):
            return False
        return self.classification_of(predicate) is not None

    def final_predicates(self) -> List[Tuple[Predicate, PredicateTag]]:
        """Predicates of the final candidate set with their final tags.

        The candidate set contains every original query predicate plus every
        introduced predicate.  Query predicates with no classification cell
        stay imperative (the paper's default: "unless proven otherwise, we
        have to assume that all the predicates contribute to the results").
        """
        result: List[Tuple[Predicate, PredicateTag]] = []
        for key in self._predicate_order:
            predicate = self._predicates[key]
            classification = self.classification_of(predicate)
            if self.was_in_query(predicate):
                result.append(
                    (predicate, classification or PredicateTag.IMPERATIVE)
                )
            elif classification is not None:
                result.append((predicate, classification))
        return result

    # ------------------------------------------------------------------
    # Rendering (used in examples and the worked-example test)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """A compact textual rendering of the table, constraints as rows."""
        predicates = self.predicates()
        header = ["constraint"] + [str(p) for p in predicates]
        lines = ["  |  ".join(header)]
        for name in self._constraint_order:
            cells = [
                str(self.get(name, predicate)) for predicate in predicates
            ]
            lines.append("  |  ".join([name] + cells))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformationTable(constraints={self.constraint_count()}, "
            f"predicates={self.predicate_count()})"
        )
