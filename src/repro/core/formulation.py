"""Query formulation (Section 3.4).

Once the transformation loop has settled the tag of every candidate
predicate, the formulation step builds the transformed query:

1. derive the final tag ``tp(pj)`` of every candidate predicate from the
   transformation table (imperative / optional / redundant);
2. apply the **class elimination** rule where desirable: a class with no
   projected attribute, no imperative predicate and linked to at most one
   other class in the query is dangling and may be dropped (profitability is
   checked through the cost model when available);
3. run the **cost-benefit analysis** of Table 3.3 on the optional
   predicates, reclassifying the unprofitable ones as redundant;
4. emit the final query containing only the imperative and retained optional
   predicates, over the surviving classes and relationships.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema
from .profitability import ProfitabilityAnalyzer, ProfitabilityDecision
from .rules import RetentionAction, TransformationKind, retention_action
from .table import TransformationTable
from .tags import PredicateTag
from .trace import OptimizationTrace, TransformationRecord


@dataclass
class FormulationResult:
    """The transformed query plus everything decided on the way."""

    query: Query
    predicate_tags: Dict[Predicate, PredicateTag] = field(default_factory=dict)
    retained_optional: List[Predicate] = field(default_factory=list)
    discarded_optional: List[Predicate] = field(default_factory=list)
    discarded_redundant: List[Predicate] = field(default_factory=list)
    eliminated_classes: List[str] = field(default_factory=list)
    decisions: Dict[str, ProfitabilityDecision] = field(default_factory=dict)


class QueryFormulator:
    """Builds the final query from the transformation table."""

    def __init__(
        self,
        schema: Schema,
        analyzer: Optional[ProfitabilityAnalyzer] = None,
        enable_class_elimination: bool = True,
    ) -> None:
        self.schema = schema
        self.analyzer = analyzer or ProfitabilityAnalyzer(schema)
        self.enable_class_elimination = enable_class_elimination

    # ------------------------------------------------------------------
    # Class elimination
    # ------------------------------------------------------------------
    def _query_degree(self, query: Query, class_name: str) -> int:
        """Number of query relationships the class participates in."""
        degree = 0
        for name in query.relationships:
            relationship = self.schema.relationship(name)
            if relationship.involves(class_name):
                degree += 1
        return degree

    def _eliminable_classes(
        self,
        query: Query,
        tags: Dict[Predicate, PredicateTag],
    ) -> List[str]:
        """Classes currently satisfying the dangling-class condition."""
        projected = query.projection_classes()
        candidates = []
        for class_name in query.classes:
            if class_name in projected:
                continue
            has_imperative = any(
                tag is PredicateTag.IMPERATIVE and predicate.references_class(class_name)
                for predicate, tag in tags.items()
            )
            if has_imperative:
                continue
            if self._query_degree(query, class_name) <= 1 and len(query.classes) > 1:
                candidates.append(class_name)
        return candidates

    def _drop_class(self, query: Query, class_name: str) -> Query:
        """Physically remove a class (and its relationships) from the query."""
        keep_relationships = [
            name
            for name in query.relationships
            if not self.schema.relationship(name).involves(class_name)
        ]
        return query.without_classes([class_name]).keep_relationships(
            keep_relationships
        )

    # ------------------------------------------------------------------
    # Formulation
    # ------------------------------------------------------------------
    def formulate(
        self,
        original: Query,
        table: TransformationTable,
        trace: Optional[OptimizationTrace] = None,
    ) -> FormulationResult:
        """Produce the transformed query from the final table state."""
        tags: Dict[Predicate, PredicateTag] = dict(table.final_predicates())
        result = FormulationResult(query=original, predicate_tags=dict(tags))

        # Step 1/2: class elimination (iterated — dropping one dangling class
        # can make its neighbour dangling in turn).
        working = original
        if self.enable_class_elimination:
            changed = True
            while changed and len(working.classes) > 1:
                changed = False
                for class_name in self._eliminable_classes(working, tags):
                    decision = self.analyzer.class_elimination_is_profitable(
                        working, class_name
                    )
                    result.decisions[f"class:{class_name}"] = decision
                    if not decision.profitable:
                        continue
                    working = self._drop_class(working, class_name)
                    result.eliminated_classes.append(class_name)
                    if trace is not None:
                        trace.add(
                            TransformationRecord(
                                kind=TransformationKind.CLASS_ELIMINATION,
                                eliminated_class=class_name,
                            )
                        )
                    changed = True
                    break

        surviving_classes: Set[str] = set(working.classes)

        # Step 3: partition predicates by their retention action.
        imperative: List[Predicate] = []
        optional: List[Predicate] = []
        for predicate, tag in tags.items():
            if not predicate.referenced_classes() <= surviving_classes:
                # The predicate referenced an eliminated class; it vanishes
                # with the class.
                continue
            action = retention_action(tag)
            if action is RetentionAction.RETAIN:
                imperative.append(predicate)
            elif action is RetentionAction.COST_BENEFIT:
                optional.append(predicate)
            else:
                result.discarded_redundant.append(predicate)

        # Step 4: cost-benefit analysis of optional predicates.  The working
        # query used for the comparison carries the imperative predicates
        # plus all optional predicates, so each decision sees the richest
        # available context (matching the paper, which evaluates
        # profitability of retaining the predicate in the final query).
        candidate_query = self._build_query(working, imperative + optional)
        retained_optional: List[Predicate] = []
        for predicate in optional:
            decision = self.analyzer.predicate_is_profitable(
                candidate_query, predicate
            )
            result.decisions[f"predicate:{predicate}"] = decision
            if decision.profitable:
                retained_optional.append(predicate)
            else:
                result.discarded_optional.append(predicate)
        result.retained_optional = retained_optional

        final_query = self._build_query(working, imperative + retained_optional)
        result.query = final_query
        return result

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build_query(base: Query, predicates: Sequence[Predicate]) -> Query:
        """Assemble a query over ``base``'s classes with the given predicates."""
        joins: List[Predicate] = []
        selections: List[Predicate] = []
        seen = set()
        for predicate in predicates:
            key = predicate.normalized().key()
            if key in seen:
                continue
            seen.add(key)
            if predicate.is_join:
                joins.append(predicate)
            else:
                selections.append(predicate)
        return Query(
            projections=base.projections,
            join_predicates=tuple(joins),
            selective_predicates=tuple(selections),
            relationships=base.relationships,
            classes=base.classes,
            name=base.name,
        )
