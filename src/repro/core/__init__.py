"""The paper's contribution: the efficient semantic query optimization algorithm.

Predicate/constraint/cell tags, the transformation table, the FIFO and
priority transformation queues, the four pipeline phases (initialization,
queue update + transformation, query formulation), profitability analysis,
the end-to-end :class:`SemanticQueryOptimizer`, and the straight-forward
immediate-application baseline used for comparison.
"""

from .tags import CellTag, PredicateTag, can_lower, lower_of
from .rules import (
    DEFAULT_PRIORITIES,
    RetentionAction,
    TransformationKind,
    classify_transformation,
    priority_for,
    retention_action,
    target_tag,
)
from .table import TransformationTable
from .queue import PriorityTransformationQueue, QueueEntry, TransformationQueue
from .trace import OptimizationTrace, TransformationRecord
from .initialization import (
    InitializationResult,
    collect_predicates,
    filter_relevant,
    initialize,
)
from .transformation import TransformationEngine, TransformationStats
from .profitability import ProfitabilityAnalyzer, ProfitabilityDecision
from .formulation import FormulationResult, QueryFormulator
from .optimizer import (
    OptimizationResult,
    OptimizerConfig,
    PhaseTimings,
    SemanticQueryOptimizer,
)
from .baseline import BaselineResult, StraightforwardOptimizer

__all__ = [
    "BaselineResult",
    "CellTag",
    "DEFAULT_PRIORITIES",
    "FormulationResult",
    "InitializationResult",
    "OptimizationResult",
    "OptimizationTrace",
    "OptimizerConfig",
    "PhaseTimings",
    "PredicateTag",
    "PriorityTransformationQueue",
    "ProfitabilityAnalyzer",
    "ProfitabilityDecision",
    "QueryFormulator",
    "QueueEntry",
    "RetentionAction",
    "SemanticQueryOptimizer",
    "StraightforwardOptimizer",
    "TransformationEngine",
    "TransformationKind",
    "TransformationQueue",
    "TransformationRecord",
    "TransformationStats",
    "TransformationTable",
    "can_lower",
    "classify_transformation",
    "collect_predicates",
    "filter_relevant",
    "initialize",
    "lower_of",
    "priority_for",
    "retention_action",
    "target_tag",
]
