"""Initialization of the transformation data structures (Section 3.1).

Given a query and the relevant semantic constraints, initialization builds

* ``C`` — the relevant constraints (rows of the table),
* ``P`` — every distinct predicate appearing in the query or in a relevant
  constraint (columns of the table),
* ``T`` — the transformation table with each cell set according to the
  paper's initialization algorithm:

  ====================================  =====================
  predicate's role in the constraint     initial cell value
  ====================================  =====================
  consequent, appears in the query       ``Imperative``
  consequent, absent from the query      ``AbsentConsequent``
  antecedent, appears in the query       ``PresentAntecedent``
  antecedent, absent from the query      ``AbsentAntecedent``
  not in the constraint                  ``_`` (NOT_PRESENT)
  ====================================  =====================

"Appears in the query" is an exact (normalized) match for consequent
predicates — only a predicate literally present can be eliminated — while
for antecedents the optimizer may optionally accept a query predicate that
*implies* the antecedent (e.g. ``quantity = 500`` satisfies an antecedent
``quantity > 100``); this is a sound strengthening controlled by
``use_implication`` and enabled by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.implication import implies
from ..constraints.predicate import Predicate
from ..query.query import Query
from .table import TransformationTable
from .tags import CellTag


@dataclass
class InitializationResult:
    """The data structures produced by the initialization step."""

    table: TransformationTable
    constraints: Tuple[SemanticConstraint, ...]
    predicates: Tuple[Predicate, ...]
    query_predicates: Tuple[Predicate, ...]


def _query_contains(query_predicates: Sequence[Predicate], predicate: Predicate) -> bool:
    target = predicate.normalized()
    return any(p.normalized() == target for p in query_predicates)


def _query_implies(
    query_predicates: Sequence[Predicate], predicate: Predicate
) -> bool:
    return any(implies(p, predicate) for p in query_predicates)


def collect_predicates(
    query: Query, constraints: Sequence[SemanticConstraint]
) -> List[Predicate]:
    """Build ``P``: distinct normalized predicates of the query and constraints."""
    predicates: List[Predicate] = []
    seen = set()

    def add(predicate: Predicate) -> None:
        normalized = predicate.normalized()
        key = normalized.key()
        if key not in seen:
            seen.add(key)
            predicates.append(normalized)

    for predicate in query.predicates():
        add(predicate)
    for constraint in constraints:
        for predicate in constraint.predicates():
            add(predicate)
    return predicates


def filter_relevant(
    constraints: Iterable[SemanticConstraint], query: Query
) -> List[SemanticConstraint]:
    """Keep only constraints relevant to ``query``.

    Relevance requires every class referenced by the constraint to appear in
    the query, and every relationship the constraint is anchored on to be
    traversed by the query.
    """
    classes = query.referenced_classes()
    return [
        c for c in constraints if c.is_relevant_to(classes, query.relationships)
    ]


def initialize(
    query: Query,
    constraints: Sequence[SemanticConstraint],
    use_implication: bool = True,
    assume_relevant: bool = False,
) -> InitializationResult:
    """Build the transformation table for ``query`` and ``constraints``.

    Parameters
    ----------
    query:
        The query being optimized.
    constraints:
        Candidate semantic constraints.  Unless ``assume_relevant`` is set,
        they are filtered down to the relevant ones first.
    use_implication:
        Treat an antecedent as present when some query predicate *implies*
        it (not only when it appears verbatim).
    assume_relevant:
        Skip the relevance filter (used when the caller already retrieved
        relevant constraints through the repository).
    """
    relevant = (
        list(constraints) if assume_relevant else filter_relevant(constraints, query)
    )
    query_predicates = tuple(p.normalized() for p in query.predicates())
    predicates = collect_predicates(query, relevant)
    table = TransformationTable(relevant, predicates, query_predicates)

    for constraint in relevant:
        consequent = constraint.consequent
        if _query_contains(query_predicates, consequent):
            table.set(constraint.name, consequent, CellTag.IMPERATIVE)
        else:
            table.set(constraint.name, consequent, CellTag.ABSENT_CONSEQUENT)
        for antecedent in constraint.antecedents:
            present = (
                _query_implies(query_predicates, antecedent)
                if use_implication
                else _query_contains(query_predicates, antecedent)
            )
            table.set(
                constraint.name,
                antecedent,
                CellTag.PRESENT_ANTECEDENT if present else CellTag.ABSENT_ANTECEDENT,
            )
    return InitializationResult(
        table=table,
        constraints=tuple(relevant),
        predicates=tuple(predicates),
        query_predicates=query_predicates,
    )
