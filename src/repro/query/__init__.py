"""Query substrate.

The five-part query representation from the paper, a parser and formatter
for the paper's textual notation, the path-based workload generator used in
the evaluation, and semantic-equivalence checks between original and
optimized queries.
"""

from .query import Query, QueryError
from .formatter import (
    describe_query,
    format_name_list,
    format_predicate,
    format_predicate_list,
    format_query,
)
from .parser import QueryParseError, parse_constant, parse_predicate, parse_query
from .generator import GeneratorConfig, QueryGenerator, ValueCatalog
from .equivalence import (
    answers_match,
    equivalence_key,
    results_equal,
    structurally_equal,
)

__all__ = [
    "GeneratorConfig",
    "Query",
    "QueryError",
    "QueryGenerator",
    "QueryParseError",
    "ValueCatalog",
    "answers_match",
    "describe_query",
    "equivalence_key",
    "format_name_list",
    "format_predicate",
    "format_predicate_list",
    "format_query",
    "parse_constant",
    "parse_predicate",
    "parse_query",
    "results_equal",
    "structurally_equal",
]
