"""Parsing the paper's textual query notation.

The parser accepts the five-part form used throughout the paper::

    (SELECT {projections} {join predicates} {selective predicates}
            {relationships} {classes})

with predicates written either in infix form (``vehicle.desc = "refrigerated
truck"``, ``driver.licenseClass >= vehicle.class``) or in the functional form
the paper uses inside constraints (``equal(cargo.desc, "frozen food")``,
``greaterThanOrEqualTo(driver.licenseClass, vehicle.class)``).

The parser exists so that examples and tests can state queries exactly as
the paper prints them; programmatic construction through :class:`Query` and
:class:`Predicate` is equally supported and used by the generator.
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from ..constraints.predicate import (
    ComparisonOperator,
    Constant,
    Predicate,
    parse_operator,
)
from .query import Query, QueryError

_BRACED = re.compile(r"\{([^{}]*)\}")
_INFIX = re.compile(
    r"^\s*(?P<left>[\w#]+\.[\w#]+)\s*"
    r"(?P<op><=|>=|!=|<>|==|=|<|>)\s*"
    r"(?P<right>.+?)\s*$"
)
_FUNCTIONAL = re.compile(
    r"^\s*(?P<fn>\w+)\s*\(\s*(?P<left>[^,]+?)\s*,\s*(?P<right>.+?)\s*\)\s*$"
)
_ATTRIBUTE = re.compile(r"^[\w#]+\.[\w#]+$")

# The paper names some attributes with '#'; our schema uses '_no' suffixes.
_HASH_ALIASES = {
    "vehicle#": "vehicle_no",
    "engine#": "engine_no",
    "license#": "license_no",
}


class QueryParseError(QueryError):
    """Raised when the textual query form cannot be parsed."""


def _normalize_attribute(token: str) -> str:
    class_name, _, attribute = token.partition(".")
    attribute = _HASH_ALIASES.get(attribute, attribute.replace("#", "_no"))
    return f"{class_name}.{attribute}"


def parse_constant(token: str) -> Constant:
    """Parse a constant literal: quoted string, integer, float or boolean."""
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return token[1:-1]
    lowered = token.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise QueryParseError(f"cannot parse constant literal {token!r}")


def _parse_operand(token: str) -> Union[str, Constant]:
    token = token.strip()
    if _ATTRIBUTE.match(token):
        return _normalize_attribute(token)
    return parse_constant(token)


def parse_predicate(text: str) -> Predicate:
    """Parse one predicate in infix or functional notation."""
    text = text.strip()
    if not text:
        raise QueryParseError("empty predicate")

    functional = _FUNCTIONAL.match(text)
    if functional and not _INFIX.match(text):
        operator = parse_operator(functional.group("fn"))
        left = _parse_operand(functional.group("left"))
        right = _parse_operand(functional.group("right"))
        if not isinstance(left, str):
            raise QueryParseError(
                f"left operand of {text!r} must be an attribute reference"
            )
        return _build_predicate(left, operator, right)

    infix = _INFIX.match(text)
    if infix:
        operator = parse_operator(infix.group("op"))
        left = _normalize_attribute(infix.group("left"))
        right = _parse_operand(infix.group("right"))
        return _build_predicate(left, operator, right)

    raise QueryParseError(f"cannot parse predicate {text!r}")


def _build_predicate(
    left: str, operator: ComparisonOperator, right: Union[str, Constant]
) -> Predicate:
    if isinstance(right, str) and _ATTRIBUTE.match(right):
        return Predicate.comparison(left, operator, right)
    return Predicate.selection(left, operator, right)


def _split_items(body: str) -> List[str]:
    """Split a braced body on commas that are not inside quotes or parens."""
    items: List[str] = []
    current: List[str] = []
    depth = 0
    quote: Optional[str] = None
    for char in body:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in ("'", '"'):
            quote = char
            current.append(char)
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item for item in items if item]


def parse_query(text: str, name: Optional[str] = None) -> Query:
    """Parse a query in the paper's five-part SELECT notation."""
    stripped = text.strip()
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1].strip()
    if not stripped.upper().startswith("SELECT"):
        raise QueryParseError("query must start with SELECT")
    body = stripped[len("SELECT"):]

    groups = _BRACED.findall(body)
    if len(groups) != 5:
        raise QueryParseError(
            f"expected 5 braced parts (projections, joins, selections, "
            f"relationships, classes), found {len(groups)}"
        )
    projections_raw, joins_raw, selections_raw, relationships_raw, classes_raw = groups

    projections = []
    for item in _split_items(projections_raw):
        # The paper sometimes annotates a projection with the value implied
        # by a constraint (e.g. cargo.desc="frozen food"); keep only the
        # attribute part.
        attribute = item.split("=", 1)[0].strip()
        projections.append(_normalize_attribute(attribute))

    join_predicates = tuple(parse_predicate(item) for item in _split_items(joins_raw))
    selective_predicates = tuple(
        parse_predicate(item) for item in _split_items(selections_raw)
    )
    relationships = tuple(_split_items(relationships_raw))
    classes = tuple(_split_items(classes_raw))

    return Query(
        projections=tuple(projections),
        join_predicates=join_predicates,
        selective_predicates=selective_predicates,
        relationships=relationships,
        classes=classes,
        name=name,
    )
