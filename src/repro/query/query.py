"""The query representation used throughout the system.

The paper represents queries in a five-part form::

    (SELECT {projectList} {joinPredicateList} {selectivePredicateList}
            {relationshipList} {classList})

describing "the attributes required, the join predicates and selective
predicates on object classes, the relationships between the classes
involved, and the object classes to be accessed".  :class:`Query` is a
faithful, immutable rendering of that form.  The optimizer never mutates a
query — it produces a new one during query formulation — so immutability is
both safe and convenient.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from ..constraints.predicate import Predicate
from ..schema.schema import Schema


class QueryError(Exception):
    """Raised when a query is malformed or inconsistent with its schema."""


@dataclass(frozen=True)
class Query:
    """A five-part query.

    Parameters
    ----------
    projections:
        Qualified attribute names (``class.attribute``) to return.
    join_predicates:
        Explicit attribute-to-attribute join predicates.  In the paper's
        OODB setting most joins are expressed through the ``relationships``
        list instead, so this list is frequently empty — exactly as in the
        Figure 2.3 example where the join predicate list is ``{ }``.
    selective_predicates:
        Predicates comparing attributes to constants (or attributes across
        classes, for constraint-introduced comparisons).
    relationships:
        Names of schema relationships connecting the classes of the query.
    classes:
        The object classes accessed by the query.
    name:
        Optional identifier used by the workload generator and experiment
        reports.
    """

    projections: Tuple[str, ...] = ()
    join_predicates: Tuple[Predicate, ...] = ()
    selective_predicates: Tuple[Predicate, ...] = ()
    relationships: Tuple[str, ...] = ()
    classes: Tuple[str, ...] = ()
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "projections", tuple(self.projections))
        object.__setattr__(self, "join_predicates", tuple(self.join_predicates))
        object.__setattr__(
            self, "selective_predicates", tuple(self.selective_predicates)
        )
        object.__setattr__(self, "relationships", tuple(self.relationships))
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise QueryError("a query must access at least one object class")
        if len(set(self.classes)) != len(self.classes):
            raise QueryError("duplicate class in query class list")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def predicates(self) -> Tuple[Predicate, ...]:
        """All predicates of the query (joins then selections)."""
        return self.join_predicates + self.selective_predicates

    def referenced_classes(self) -> FrozenSet[str]:
        """The classes in the query's class list."""
        return frozenset(self.classes)

    def projection_classes(self) -> FrozenSet[str]:
        """Classes that contribute at least one projected attribute."""
        classes: Set[str] = set()
        for projection in self.projections:
            classes.add(projection.split(".", 1)[0])
        return frozenset(classes)

    def predicate_classes(self) -> FrozenSet[str]:
        """Classes referenced by any predicate of the query."""
        classes: Set[str] = set()
        for predicate in self.predicates():
            classes.update(predicate.referenced_classes())
        return frozenset(classes)

    def predicates_on(self, class_name: str) -> List[Predicate]:
        """All predicates that mention ``class_name``."""
        return [p for p in self.predicates() if p.references_class(class_name)]

    def has_predicate(self, predicate: Predicate) -> bool:
        """Whether the query contains ``predicate`` (modulo normalization)."""
        target = predicate.normalized()
        return any(p.normalized() == target for p in self.predicates())

    @property
    def class_count(self) -> int:
        """Number of object classes accessed."""
        return len(self.classes)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def with_selective_predicates(
        self, predicates: Iterable[Predicate]
    ) -> "Query":
        """A copy of the query with a replaced selective-predicate list."""
        return replace(self, selective_predicates=tuple(predicates))

    def add_selective_predicates(
        self, predicates: Iterable[Predicate]
    ) -> "Query":
        """A copy of the query with extra selective predicates appended."""
        extra = [p for p in predicates if not self.has_predicate(p)]
        return replace(
            self,
            selective_predicates=self.selective_predicates + tuple(extra),
        )

    def without_classes(self, class_names: Iterable[str]) -> "Query":
        """A copy of the query with ``class_names`` (and everything that
        referenced them) removed.

        Used by class elimination: the classes are dropped from the class
        list, relationships that no longer connect two remaining classes are
        dropped, and predicates/projections referencing the dropped classes
        are removed.
        """
        dropped = set(class_names)
        remaining = tuple(c for c in self.classes if c not in dropped)
        if not remaining:
            raise QueryError("cannot eliminate every class from a query")
        projections = tuple(
            p for p in self.projections if p.split(".", 1)[0] not in dropped
        )
        joins = tuple(
            p
            for p in self.join_predicates
            if not (p.referenced_classes() & dropped)
        )
        selections = tuple(
            p
            for p in self.selective_predicates
            if not (p.referenced_classes() & dropped)
        )
        return replace(
            self,
            projections=projections,
            join_predicates=joins,
            selective_predicates=selections,
            classes=remaining,
        )

    def keep_relationships(self, names: Iterable[str]) -> "Query":
        """A copy of the query keeping only the listed relationships."""
        keep = set(names)
        return replace(
            self,
            relationships=tuple(r for r in self.relationships if r in keep),
        )

    def renamed(self, name: str) -> "Query":
        """A copy of the query carrying a different name."""
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, schema: Schema) -> None:
        """Check the query against ``schema``.

        Verifies that every class exists, every projected / filtered
        attribute resolves, every relationship exists and connects two
        classes of the query, and every predicate only references classes in
        the class list.

        Raises
        ------
        QueryError
            On the first inconsistency found.
        """
        for class_name in self.classes:
            if not schema.has_class(class_name):
                raise QueryError(f"query references unknown class {class_name!r}")
        class_set = set(self.classes)
        for projection in self.projections:
            try:
                ref = schema.resolve(projection)
            except Exception as exc:
                raise QueryError(f"bad projection {projection!r}: {exc}") from exc
            if ref.class_name not in class_set:
                raise QueryError(
                    f"projection {projection!r} references class outside the "
                    "query's class list"
                )
        for predicate in self.predicates():
            for operand in predicate.referenced_attributes():
                if operand.class_name not in class_set:
                    raise QueryError(
                        f"predicate {predicate} references class "
                        f"{operand.class_name!r} outside the query's class list"
                    )
                try:
                    schema.attribute(operand.class_name, operand.attribute_name)
                except Exception as exc:
                    raise QueryError(
                        f"predicate {predicate} references unknown attribute "
                        f"{operand.qualified_name}: {exc}"
                    ) from exc
        for rel_name in self.relationships:
            if not schema.has_relationship(rel_name):
                raise QueryError(
                    f"query references unknown relationship {rel_name!r}"
                )
            rel = schema.relationship(rel_name)
            if rel.source not in class_set or rel.target not in class_set:
                raise QueryError(
                    f"relationship {rel_name!r} connects classes outside the "
                    "query's class list"
                )

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    def connected_components(self, schema: Schema) -> List[Set[str]]:
        """Partition the query's classes by relationship connectivity."""
        remaining = set(self.classes)
        components: List[Set[str]] = []
        rel_objects = [schema.relationship(name) for name in self.relationships]
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for rel in rel_objects:
                    if not rel.involves(current):
                        continue
                    other = rel.other(current)
                    if other in remaining:
                        remaining.discard(other)
                        component.add(other)
                        frontier.append(other)
            components.append(component)
        return components

    def __str__(self) -> str:
        from .formatter import format_query

        return format_query(self)
