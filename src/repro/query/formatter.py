"""Rendering queries in the paper's textual notation.

The paper writes queries as::

    (SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { }
            {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
            {collects, supplies}
            {supplier, cargo, vehicle})

:func:`format_query` reproduces that layout (useful in examples, traces and
experiment reports); :func:`format_predicate_list` and friends are the
building blocks, shared with the parser's round-trip tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..constraints.predicate import Predicate
from .query import Query


def format_predicate(predicate: Predicate) -> str:
    """Render a single predicate as ``class.attr <op> operand``."""
    return str(predicate)


def format_predicate_list(predicates: Sequence[Predicate]) -> str:
    """Render a predicate list as ``{p1, p2, ...}`` (``{ }`` when empty)."""
    if not predicates:
        return "{ }"
    return "{" + ", ".join(format_predicate(p) for p in predicates) + "}"


def format_name_list(names: Iterable[str]) -> str:
    """Render a list of names as ``{a, b, c}`` (``{ }`` when empty)."""
    names = list(names)
    if not names:
        return "{ }"
    return "{" + ", ".join(names) + "}"


def format_query(query: Query, indent: str = "", multiline: bool = False) -> str:
    """Render ``query`` in the paper's 5-part SELECT notation.

    Parameters
    ----------
    query:
        The query to render.
    indent:
        Prefix applied to continuation lines in multiline mode.
    multiline:
        When ``True`` each of the five parts goes on its own line, matching
        the layout of Figure 2.3 in the paper.
    """
    parts = [
        format_name_list(query.projections),
        format_predicate_list(query.join_predicates),
        format_predicate_list(query.selective_predicates),
        format_name_list(query.relationships),
        format_name_list(query.classes),
    ]
    if multiline:
        separator = "\n" + indent + "        "
        return indent + "(SELECT " + separator.join(parts) + ")"
    return "(SELECT " + " ".join(parts) + ")"


def describe_query(query: Query) -> str:
    """A short human-readable description used in logs and reports."""
    label = query.name or "query"
    return (
        f"{label}: {len(query.classes)} classes, "
        f"{len(query.selective_predicates)} selections, "
        f"{len(query.join_predicates)} joins, "
        f"{len(query.relationships)} relationships"
    )
