"""Semantic equivalence checking between queries.

Semantic query optimization must produce a query that *"produces the same
answer as the original query in any database state"* (or, for state-derived
rules, in the current database state).  This module provides two levels of
checking used pervasively in the test suite:

* :func:`structurally_equal` — a cheap syntactic comparison that ignores
  ordering of predicate/class/relationship lists.
* :func:`results_equal` / :func:`answers_match` — execute both queries
  against an actual database instance and compare the returned answer sets
  projected onto the *original* query's projection list.  This is the check
  that matters for the Table 4.2 reproduction: whatever the optimizer does,
  the answers must agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Sequence, Tuple

from .query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.storage import ObjectStore
    from ..schema.schema import Schema


def _predicate_keys(query: Query) -> FrozenSet:
    return frozenset(p.key() for p in query.predicates())


def equivalence_key(query: Query) -> Tuple:
    """A hashable structural identity key for ``query``.

    Two queries compare :func:`structurally_equal` exactly when their keys
    are equal, which is what lets batch callers deduplicate structurally
    equivalent queries (and cache optimization results) with a dict instead
    of pairwise comparisons.
    """
    return (
        frozenset(query.projections),
        _predicate_keys(query),
        frozenset(query.relationships),
        frozenset(query.classes),
    )


def structurally_equal(left: Query, right: Query) -> bool:
    """Whether two queries are the same modulo list ordering."""
    return equivalence_key(left) == equivalence_key(right)


def _project_rows(
    rows: Sequence[dict], projections: Sequence[str]
) -> List[Tuple]:
    """Project result rows onto the given projection list as hashable tuples."""
    projected = []
    for row in rows:
        projected.append(tuple(row.get(attribute) for attribute in projections))
    return projected


def results_equal(
    original_rows: Sequence[dict],
    optimized_rows: Sequence[dict],
    projections: Sequence[str],
) -> bool:
    """Whether two result sets agree on ``projections``.

    The comparison is set-based (duplicates removed): the paper's queries
    return the distinct combinations of projected attribute values, so a
    transformation that eliminates a class may change how many *duplicate*
    rows a fan-out join produces without changing the answer.
    """
    left = set(_project_rows(original_rows, projections))
    right = set(_project_rows(optimized_rows, projections))
    return left == right


def answers_match(
    schema: "Schema",
    store: "ObjectStore",
    original: Query,
    optimized: Query,
    execution_mode=None,
) -> bool:
    """Execute both queries and compare their answers.

    The comparison projects both answer sets onto the original query's
    projection list restricted to classes still present in the optimized
    query (class elimination may legitimately drop a class none of whose
    attributes were projected; projected classes are never eliminated).
    ``execution_mode`` selects the engine (an
    :class:`~repro.engine.modes.ExecutionMode` or its name); ``None`` uses
    the process default, so the whole suite's answer checks run under
    whichever engine the CI matrix selects.
    """
    from ..engine.modes import create_executor

    executor = create_executor(schema, store, mode=execution_mode)
    try:
        original_result = executor.execute(original)
        optimized_result = executor.execute(optimized)
    finally:
        # The parallel engine may have forked a worker pool for this
        # one-shot executor; release it deterministically rather than
        # leaving the processes to the GC finalizer.
        close = getattr(executor, "close", None)
        if close is not None:
            close()

    optimized_classes = set(optimized.classes)
    shared_projections = [
        attribute
        for attribute in original.projections
        if attribute.split(".", 1)[0] in optimized_classes
    ]
    if not shared_projections:
        shared_projections = list(optimized.projections)
    return results_equal(
        original_result.rows, optimized_result.rows, shared_projections
    )
