"""Path-based query workload generation.

Section 4 of the paper builds its test workload as follows: *"All possible
paths in this schema were identified ... A query was formulated for each such
path and thus a set of queries was generated.  From this set of queries, 40
test queries were randomly chosen and sent to the optimizer."*

:class:`QueryGenerator` reproduces that procedure:

1. enumerate the simple paths of the schema graph
   (:func:`repro.schema.paths.enumerate_paths`);
2. formulate one query per path — the query accesses every class on the
   path, traverses every relationship on the path, projects a couple of
   value attributes from the end-point classes, and draws selective
   predicates from a *value catalog* so that predicates refer to values that
   actually occur in (or are near) the database;
3. randomly sample the requested number of queries.

A deterministic ``random.Random`` seeded by the caller keeps workloads
reproducible across runs, which the experiments rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints.predicate import ComparisonOperator, Constant, Predicate
from ..schema.attribute import Attribute
from ..schema.paths import SchemaPath, enumerate_paths
from ..schema.schema import Schema
from .query import Query


#: Maps a qualified attribute name to sample constants that selective
#: predicates may compare against.  Built by the data generator from the
#: values it actually inserts so the workload predicates are selective but
#: satisfiable.
ValueCatalog = Mapping[str, Sequence[Constant]]


@dataclass
class GeneratorConfig:
    """Tuning knobs for workload generation.

    Parameters
    ----------
    selection_probability:
        Probability that a class on the path contributes one selective
        predicate.
    max_projections_per_class:
        How many value attributes of each end-point class are projected.
    min_path_length / max_path_length:
        Bounds on the number of classes in the underlying schema path.
    equality_bias:
        Probability that a generated numeric selective predicate uses ``=``
        rather than a range operator; string attributes always use ``=``.
    preferred_bias:
        When the generator was given *preferred predicates* for a class
        (typically the antecedent selections of the semantic constraints,
        see :class:`QueryGenerator`), probability that the class's selective
        predicate is drawn from that pool rather than from the value
        catalog.  This models the fact that real application queries tend to
        select on the same domain values the integrity constraints talk
        about.
    endpoint_projection_probability:
        Probability that each end-point class of the path contributes
        projections.  Values below 1.0 produce queries that touch a class
        without returning any of its attributes — the situation in which the
        paper's class elimination rule can apply (at least one class always
        keeps its projections so the query stays meaningful).
    """

    selection_probability: float = 0.75
    max_projections_per_class: int = 2
    min_path_length: int = 1
    max_path_length: Optional[int] = None
    equality_bias: float = 0.6
    preferred_bias: float = 0.5
    endpoint_projection_probability: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.selection_probability <= 1.0:
            raise ValueError("selection_probability must be within [0, 1]")
        if not 0.0 <= self.equality_bias <= 1.0:
            raise ValueError("equality_bias must be within [0, 1]")
        if not 0.0 <= self.preferred_bias <= 1.0:
            raise ValueError("preferred_bias must be within [0, 1]")
        if not 0.0 <= self.endpoint_projection_probability <= 1.0:
            raise ValueError(
                "endpoint_projection_probability must be within [0, 1]"
            )
        if self.max_projections_per_class < 1:
            raise ValueError("max_projections_per_class must be >= 1")


class QueryGenerator:
    """Formulates queries from schema paths, following the paper's procedure."""

    def __init__(
        self,
        schema: Schema,
        value_catalog: Optional[ValueCatalog] = None,
        config: Optional[GeneratorConfig] = None,
        seed: int = 0,
        preferred_predicates: Optional[Mapping[str, Sequence[Predicate]]] = None,
    ) -> None:
        self.schema = schema
        self.value_catalog: Dict[str, List[Constant]] = {
            key: list(values) for key, values in (value_catalog or {}).items()
        }
        self.config = config or GeneratorConfig()
        self._random = random.Random(seed)
        self.preferred_predicates: Dict[str, List[Predicate]] = {
            class_name: list(predicates)
            for class_name, predicates in (preferred_predicates or {}).items()
            if predicates
        }

    # ------------------------------------------------------------------
    # Path enumeration
    # ------------------------------------------------------------------
    def paths(self) -> List[SchemaPath]:
        """All schema paths eligible for query formulation."""
        return enumerate_paths(
            self.schema,
            min_length=self.config.min_path_length,
            max_length=self.config.max_path_length,
        )

    # ------------------------------------------------------------------
    # Query formulation
    # ------------------------------------------------------------------
    def _projections_for(self, class_name: str) -> List[str]:
        cls = self.schema.object_class(class_name)
        value_attributes = cls.value_attributes
        if not value_attributes:
            return []
        count = min(self.config.max_projections_per_class, len(value_attributes))
        chosen = self._random.sample(value_attributes, count)
        return [f"{class_name}.{attribute.name}" for attribute in chosen]

    def _selective_predicate_for(self, class_name: str) -> Optional[Predicate]:
        preferred = self.preferred_predicates.get(class_name)
        if preferred and self._random.random() < self.config.preferred_bias:
            return self._random.choice(preferred)
        cls = self.schema.object_class(class_name)
        candidates: List[Tuple[str, Attribute]] = [
            (f"{class_name}.{attribute.name}", attribute)
            for attribute in cls.value_attributes
            if self.value_catalog.get(f"{class_name}.{attribute.name}")
        ]
        if not candidates:
            return None
        qualified, attribute = self._random.choice(candidates)
        value = self._random.choice(self.value_catalog[qualified])
        if attribute.domain.is_numeric and isinstance(value, (int, float)):
            if self._random.random() >= self.config.equality_bias:
                operator = self._random.choice(
                    [
                        ComparisonOperator.LE,
                        ComparisonOperator.GE,
                        ComparisonOperator.LT,
                        ComparisonOperator.GT,
                    ]
                )
                return Predicate.selection(qualified, operator, value)
        return Predicate.equals(qualified, value)

    def query_for_path(self, path: SchemaPath, name: Optional[str] = None) -> Query:
        """Formulate one query for ``path``.

        The query accesses every class on the path, lists every relationship
        traversed, projects value attributes of the two end-point classes
        (or the single class for length-1 paths) and adds selective
        predicates drawn from the value catalog.
        """
        endpoint_classes = {path.start, path.end}
        projections: List[str] = []
        for class_name in path.classes:
            if class_name not in endpoint_classes:
                continue
            if (
                self._random.random()
                < self.config.endpoint_projection_probability
            ):
                projections.extend(self._projections_for(class_name))
        if not projections:
            projections.extend(self._projections_for(path.start))

        selections: List[Predicate] = []
        for class_name in path.classes:
            if self._random.random() < self.config.selection_probability:
                predicate = self._selective_predicate_for(class_name)
                if predicate is not None:
                    selections.append(predicate)

        query = Query(
            projections=tuple(dict.fromkeys(projections)),
            join_predicates=(),
            selective_predicates=tuple(selections),
            relationships=path.relationships,
            classes=path.classes,
            name=name,
        )
        query.validate(self.schema)
        return query

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    def generate_workload(
        self,
        count: int = 40,
        allow_repeats: bool = True,
    ) -> List[Query]:
        """Randomly choose ``count`` path queries, as in the paper.

        When the schema has fewer distinct paths than ``count`` and
        ``allow_repeats`` is true, paths are re-used with fresh random
        projections/selections so the workload still reaches the requested
        size (the sample database of the paper has few classes, so its "40
        randomly chosen" queries necessarily repeat path shapes too).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        paths = self.paths()
        if not paths:
            raise ValueError("the schema has no paths to formulate queries from")

        chosen: List[SchemaPath] = []
        if len(paths) >= count:
            chosen = self._random.sample(paths, count)
        else:
            if not allow_repeats:
                chosen = list(paths)
            else:
                chosen = [self._random.choice(paths) for _ in range(count)]

        return [
            self.query_for_path(path, name=f"q{index + 1}")
            for index, path in enumerate(chosen)
        ]

    def queries_by_class_count(
        self, counts: Sequence[int], per_count: int = 5
    ) -> Dict[int, List[Query]]:
        """Generate ``per_count`` queries for each requested class count.

        Used by the Figure 4.1 experiment, which plots transformation time
        against the number of object classes in the query.
        """
        by_length: Dict[int, List[SchemaPath]] = {}
        for path in self.paths():
            by_length.setdefault(path.length, []).append(path)
        result: Dict[int, List[Query]] = {}
        for count in counts:
            available = by_length.get(count, [])
            if not available:
                result[count] = []
                continue
            queries = []
            for index in range(per_count):
                path = available[index % len(available)]
                queries.append(
                    self.query_for_path(path, name=f"len{count}_q{index + 1}")
                )
            result[count] = queries
        return result
