"""Thread-safe caching primitives shared by the caching layers.

Three caches in the system follow the same pattern — the repository's
constraint-retrieval and closure caches and the service's result cache:
keyed lookups, least-recently-used eviction at a size bound, and hit /
miss / eviction counters for reporting.  :class:`LruCache` implements that
pattern once, behind its own lock so callers on different threads can
share an instance without coordination.  :meth:`LruCache.snapshot` reads
every counter under that same lock, so concurrent reporting (the service's
``stats`` RPC) sees one consistent point in time instead of counters torn
across in-flight updates.

:class:`SingleFlightMap` is the companion primitive for *in-flight*
deduplication: where the LRU cache collapses repeated work over time, the
single-flight map collapses identical work happening *right now* — N
concurrent requests for the same key cost one computation, with the N-1
followers waiting on the leader's future.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


@dataclass(frozen=True)
class CacheCounters:
    """One consistent point-in-time view of an :class:`LruCache`.

    Produced by :meth:`LruCache.snapshot` with the cache lock held, so the
    fields are mutually consistent even while other threads keep hitting
    the cache.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class SingleFlightStats:
    """Point-in-time counters of a :class:`SingleFlightMap`."""

    #: Calls that started a fresh computation.
    leaders: int = 0
    #: Calls that attached to an already in-flight computation.
    followers: int = 0
    #: Keys currently being computed.
    in_flight: int = 0

    @property
    def calls(self) -> int:
        """Total deduplicated entry points (leaders + followers)."""
        return self.leaders + self.followers

    @property
    def dedup_rate(self) -> float:
        """Fraction of calls that shared another call's work."""
        return self.followers / self.calls if self.calls else 0.0


class LruCache(Generic[K, V]):
    """Thread-safe LRU mapping with hit/miss/eviction accounting.

    A ``maxsize`` of ``0`` disables the cache: lookups return ``None``
    without counting and stores are dropped, so callers need no separate
    enabled/disabled branch.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: K) -> Optional[V]:
        """The cached value for ``key`` (marked most recently used), or ``None``."""
        if self.maxsize == 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Store ``key`` as most recently used, evicting the oldest past the bound."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> CacheCounters:
        """All counters read atomically under the cache lock.

        Prefer this over reading :attr:`hits` / :attr:`misses` /
        :attr:`evictions` individually when the numbers are reported
        together: individual property reads can interleave with concurrent
        updates and produce a torn view (e.g. more hits than lookups).
        """
        with self._lock:
            return CacheCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                maxsize=self.maxsize,
            )

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the size bound."""
        return self._evictions

    def __len__(self) -> int:
        return len(self._entries)


class ReadWriteLock:
    """A readers-writer lock for the single-writer live mutation path.

    Any number of readers (query executions) may hold the lock together; a
    writer (a store mutation) waits for the readers to drain and then runs
    exclusively.  Writers take priority over *new* readers once waiting, so
    a steady read workload cannot starve writes.  Not reentrant — a thread
    must not acquire the read side while holding the write side (the write
    section simply performs its reads directly; it is already exclusive).

    >>> lock = ReadWriteLock()
    >>> with lock.read():
    ...     pass  # shared with other readers
    >>> with lock.write():
    ...     pass  # exclusive
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared (reader) side for the duration of the block."""
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive (writer) side for the duration of the block."""
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._condition:
                self._writer = False
                self._condition.notify_all()


class SingleFlightMap(Generic[K, V]):
    """Collapse concurrent computations of the same key into one.

    The first caller to :meth:`begin` a key becomes the **leader** and is
    expected to perform the computation and publish it with
    :meth:`resolve` (or :meth:`fail`); every caller that begins the same
    key while the leader is still working becomes a **follower** and
    receives the *same* future, so N identical concurrent requests cost
    one computation.

    The map is safe to drive from plain threads and from asyncio alike:
    entries hold :class:`concurrent.futures.Future` objects, which threads
    can ``result()`` on directly and event loops can await through
    :func:`asyncio.wrap_future`.

    Abandonment safety — the property the gateway's timeout tests pin —
    falls out of the protocol: a follower that stops waiting (request
    timeout, client disconnect) merely drops its reference to the shared
    future.  The leader's resolve/fail is what removes the key, so an
    abandoned wait can never strand a stale entry that would swallow
    future requests ("poisoning" the map).

    >>> flight = SingleFlightMap()
    >>> future, leader = flight.begin("answer")
    >>> leader
    True
    >>> follower_future, also_leader = flight.begin("answer")
    >>> (follower_future is future, also_leader)
    (True, False)
    >>> flight.resolve("answer", 42)
    >>> follower_future.result()
    42
    >>> flight.snapshot().dedup_rate
    0.5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: "OrderedDict[K, Future]" = OrderedDict()
        self._leaders = 0
        self._followers = 0

    def begin(self, key: K) -> Tuple["Future[V]", bool]:
        """Join the in-flight computation for ``key``.

        Returns ``(future, is_leader)``.  A leader must eventually call
        :meth:`resolve` or :meth:`fail` for the key — followers only wait.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self._followers += 1
                return future, False
            future = Future()
            self._inflight[key] = future
            self._leaders += 1
            return future, True

    def resolve(self, key: K, value: V) -> None:
        """Publish the leader's result and retire the key.

        The key is removed *before* the future is resolved, so a request
        arriving after completion starts a fresh computation instead of
        observing a stale result.
        """
        future = self._pop(key)
        if future is not None and not future.done():
            future.set_result(value)

    def fail(self, key: K, exception: BaseException) -> None:
        """Propagate the leader's failure to every follower and retire the key.

        Failures are never cached: the next request for the key elects a
        fresh leader and retries the computation.
        """
        future = self._pop(key)
        if future is not None and not future.done():
            future.set_exception(exception)

    def _pop(self, key: K) -> Optional["Future[V]"]:
        with self._lock:
            return self._inflight.pop(key, None)

    def snapshot(self) -> SingleFlightStats:
        """All counters read atomically under the map lock."""
        with self._lock:
            return SingleFlightStats(
                leaders=self._leaders,
                followers=self._followers,
                in_flight=len(self._inflight),
            )

    def __len__(self) -> int:
        return len(self._inflight)
