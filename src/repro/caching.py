"""A small thread-safe LRU cache shared by the caching layers.

Three caches in the system follow the same pattern — the repository's
constraint-retrieval and closure caches and the service's result cache:
keyed lookups, least-recently-used eviction at a size bound, and hit /
miss / eviction counters for reporting.  :class:`LruCache` implements that
pattern once, behind its own lock so callers on different threads can
share an instance without coordination.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LruCache(Generic[K, V]):
    """Thread-safe LRU mapping with hit/miss/eviction accounting.

    A ``maxsize`` of ``0`` disables the cache: lookups return ``None``
    without counting and stores are dropped, so callers need no separate
    enabled/disabled branch.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: K) -> Optional[V]:
        """The cached value for ``key`` (marked most recently used), or ``None``."""
        if self.maxsize == 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Store ``key`` as most recently used, evicting the oldest past the bound."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the size bound."""
        return self._evictions

    def __len__(self) -> int:
        return len(self._entries)
