"""Integrity validation of database contents against semantic constraints.

Semantic constraints double as integrity constraints ("which are also used to
ensure the semantic validity of the database", Section 1 of the paper).  The
validator checks that every binding of instances connected through the
schema's relationships satisfies every constraint; it is used by the
constraint-consistent data generator's self-check and by tests to guarantee
that the synthetic databases actually obey the knowledge the optimizer
exploits — otherwise the "optimized" queries could return different answers
and the Table 4.2 reproduction would be meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..engine.storage import ObjectStore
from ..schema.schema import Schema
from .horn_clause import SemanticConstraint


@dataclass
class Violation:
    """A single constraint violation found during validation."""

    constraint: str
    binding_oids: Dict[str, int]
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint} violated by {self.binding_oids}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of validating a database against a constraint set."""

    constraints_checked: int = 0
    bindings_checked: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "VALID" if self.is_valid else f"{len(self.violations)} violations"
        return (
            f"{self.constraints_checked} constraints, "
            f"{self.bindings_checked} bindings checked: {status}"
        )


def _bindings_for_classes(
    schema: Schema,
    store: ObjectStore,
    class_names: Sequence[str],
    limit_per_class: Optional[int],
):
    """Yield bindings of instances for ``class_names`` joined along relationships.

    Classes connected by a relationship in the schema are joined through the
    relationship's pointer attributes; unconnected classes would produce a
    cross product, so they are bound independently only when the class list
    has a single member.  The generator yields dictionaries mapping class
    name to the instance's attribute values (plus ``__oid__`` bookkeeping).
    """
    if not class_names:
        return
    first = class_names[0]
    first_instances = store.instances(first)
    if limit_per_class is not None:
        first_instances = first_instances[:limit_per_class]

    for instance in first_instances:
        binding = {first: instance}
        yield from _extend_binding(
            schema, store, class_names, 1, binding, limit_per_class
        )


def _extend_binding(
    schema: Schema,
    store: ObjectStore,
    class_names: Sequence[str],
    index: int,
    binding,
    limit_per_class: Optional[int],
):
    if index >= len(class_names):
        yield dict(binding)
        return
    next_class = class_names[index]
    # Find a relationship connecting next_class to a class already bound.
    candidates = None
    for bound_class, bound_instance in binding.items():
        rel = schema.relationship_between(bound_class, next_class)
        if rel is None:
            continue
        pointer = rel.attribute_for(bound_class)
        back_pointer = rel.attribute_for(next_class)
        forward = [
            store.get(next_class, oid)
            for oid in bound_instance.pointer_oids(pointer)
        ]
        candidates = [instance for instance in forward if instance is not None]
        # Also pick up links stored only on the other side of the
        # relationship (reverse pointers).
        seen = {instance.oid for instance in candidates}
        for candidate in store.instances(next_class):
            if candidate.oid in seen:
                continue
            if bound_instance.oid in candidate.pointer_oids(back_pointer):
                candidates.append(candidate)
        break
    if candidates is None:
        # No relationship to any bound class: fall back to all instances.
        candidates = store.instances(next_class)
        if limit_per_class is not None:
            candidates = candidates[:limit_per_class]
    for candidate in candidates:
        binding[next_class] = candidate
        yield from _extend_binding(
            schema, store, class_names, index + 1, binding, limit_per_class
        )
        del binding[next_class]


def connectivity_order(schema: Schema, class_names: Sequence[str]) -> List[str]:
    """Order ``class_names`` so each class connects to an earlier one when possible.

    Binding enumeration joins a new class to the already-bound ones through a
    schema relationship; visiting the classes in connectivity order avoids
    falling back to cross products for class sets that *are* connected but
    happen to be listed in an unfortunate order.
    """
    remaining = list(dict.fromkeys(class_names))
    if not remaining:
        return []
    ordered = [remaining.pop(0)]
    while remaining:
        for candidate in remaining:
            if any(
                schema.relationship_between(candidate, placed) is not None
                for placed in ordered
            ):
                ordered.append(candidate)
                remaining.remove(candidate)
                break
        else:
            ordered.append(remaining.pop(0))
    return ordered


def enumerate_bindings(
    schema: Schema,
    store: ObjectStore,
    class_names: Sequence[str],
    limit_per_class: Optional[int] = None,
):
    """Public wrapper over the binding enumerator.

    Yields dictionaries mapping each class in ``class_names`` to an
    :class:`~repro.engine.instance.ObjectInstance`, where classes connected
    by a schema relationship are joined through it.  Shared by the validator
    and by the constraint-enforcement pass of the data generator.
    """
    ordered = connectivity_order(schema, class_names)
    yield from _bindings_for_classes(schema, store, ordered, limit_per_class)


def validate_database(
    schema: Schema,
    store: ObjectStore,
    constraints: Iterable[SemanticConstraint],
    limit_per_class: Optional[int] = None,
) -> ValidationReport:
    """Check every constraint against every connected binding of instances.

    Parameters
    ----------
    schema, store:
        The schema and the object store holding the database instance.
    constraints:
        The semantic constraints to check.
    limit_per_class:
        Optional cap on the number of instances examined per class, useful
        to keep validation of the larger synthetic databases fast in tests.
    """
    report = ValidationReport()
    for constraint in constraints:
        report.constraints_checked += 1
        class_names = connectivity_order(
            schema, sorted(constraint.referenced_classes())
        )
        missing = [name for name in class_names if not store.has_class(name)]
        if missing:
            # Classes with no extent cannot produce violating bindings.
            continue
        for binding in _bindings_for_classes(
            schema, store, class_names, limit_per_class
        ):
            report.bindings_checked += 1
            values: Mapping[str, Mapping[str, object]] = {
                name: instance.values for name, instance in binding.items()
            }
            if not constraint.holds_for(values):
                report.violations.append(
                    Violation(
                        constraint=constraint.name,
                        binding_oids={
                            name: instance.oid
                            for name, instance in binding.items()
                        },
                        detail=str(constraint),
                    )
                )
    return report


def assert_valid(
    schema: Schema,
    store: ObjectStore,
    constraints: Iterable[SemanticConstraint],
    limit_per_class: Optional[int] = None,
) -> ValidationReport:
    """Validate and raise ``AssertionError`` when violations are found."""
    report = validate_database(schema, store, constraints, limit_per_class)
    if not report.is_valid:
        first = report.violations[0]
        raise AssertionError(
            f"database violates semantic constraints: {first} "
            f"({len(report.violations)} total violations)"
        )
    return report
