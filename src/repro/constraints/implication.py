"""Domain-knowledge implication between predicates.

The paper materializes the transitive closure of the constraint set at
precompilation time, *"computing the closure of existing predicates using
domain knowledge, eg. if (A = a) --> (B > 20) and (B > 10) --> (C = c) then
deduce (A = a) --> (C = c)"*.  Chaining constraint ``c1: X -> p`` with
``c2: q -> r`` is valid whenever ``p`` *implies* ``q``; this module provides
that implication test (and the companion conflict test used by the query
generator and by integrity validation).

Only selective predicates (attribute compared to a constant) participate in
value-level implication reasoning; attribute-to-attribute predicates imply
each other only when they are syntactically identical after normalization.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .predicate import AttributeOperand, ComparisonOperator, Constant, Predicate

_NUMERIC_TYPES = (int, float)


def _is_numeric(value: Constant) -> bool:
    return isinstance(value, _NUMERIC_TYPES) and not isinstance(value, bool)


def _same_attribute(p: Predicate, q: Predicate) -> bool:
    return p.left == q.left


def _as_interval(
    predicate: Predicate,
) -> Optional[Tuple[Optional[float], bool, Optional[float], bool]]:
    """Express a numeric selective predicate as an interval.

    Returns ``(low, low_inclusive, high, high_inclusive)`` with ``None``
    standing for an unbounded end, or ``None`` if the predicate is not a
    numeric range predicate (``EQ``/``LT``/``LE``/``GT``/``GE``).
    """
    value = predicate.constant
    if value is None or not _is_numeric(value):
        return None
    v = float(value)
    op = predicate.operator
    if op is ComparisonOperator.EQ:
        return (v, True, v, True)
    if op is ComparisonOperator.LT:
        return (None, False, v, False)
    if op is ComparisonOperator.LE:
        return (None, False, v, True)
    if op is ComparisonOperator.GT:
        return (v, False, None, False)
    if op is ComparisonOperator.GE:
        return (v, True, None, False)
    return None


def _interval_subsumes(
    outer: Tuple[Optional[float], bool, Optional[float], bool],
    inner: Tuple[Optional[float], bool, Optional[float], bool],
) -> bool:
    """Whether interval ``outer`` contains interval ``inner``."""
    outer_low, outer_low_inc, outer_high, outer_high_inc = outer
    inner_low, inner_low_inc, inner_high, inner_high_inc = inner

    if outer_low is not None:
        if inner_low is None:
            return False
        if inner_low < outer_low:
            return False
        if inner_low == outer_low and inner_low_inc and not outer_low_inc:
            return False
    if outer_high is not None:
        if inner_high is None:
            return False
        if inner_high > outer_high:
            return False
        if inner_high == outer_high and inner_high_inc and not outer_high_inc:
            return False
    return True


def implies(premise: Predicate, conclusion: Predicate) -> bool:
    """Whether ``premise`` logically implies ``conclusion``.

    The test is sound but deliberately incomplete: it covers the forms of
    domain knowledge the paper uses for closure computation — identical
    predicates, equality implying range membership, and range subsumption
    over numeric constants — plus inequality entailment from equality on
    the same attribute.
    """
    p = premise.normalized()
    q = conclusion.normalized()
    if p == q:
        return True

    # Attribute-to-attribute predicates: only syntactic identity (handled
    # above).  Mixed forms never imply each other.
    if not p.is_selection or not q.is_selection:
        return False
    if not _same_attribute(p, q):
        return False

    p_value = p.constant
    q_value = q.constant
    assert p_value is not None and q_value is not None

    # Equality premises.
    if p.operator is ComparisonOperator.EQ:
        return q.operator.apply(p_value, q_value)

    # NE premises only imply the identical predicate (handled above) or a
    # weaker NE is impossible to strengthen; nothing more to do.
    if p.operator is ComparisonOperator.NE:
        return False

    # NE conclusions from a range premise: a range that excludes the value.
    if q.operator is ComparisonOperator.NE:
        if not _is_numeric(p_value) or not _is_numeric(q_value):
            return False
        p_interval = _as_interval(p)
        if p_interval is None:
            return False
        # q says attr != q_value; p implies it iff q_value lies outside p's
        # interval.
        low, low_inc, high, high_inc = p_interval
        value = float(q_value)
        below = low is not None and (value < low or (value == low and not low_inc))
        above = high is not None and (
            value > high or (value == high and not high_inc)
        )
        return below or above

    # Range-vs-range subsumption on numeric constants.
    p_interval = _as_interval(p)
    q_interval = _as_interval(q)
    if p_interval is None or q_interval is None:
        return False
    return _interval_subsumes(q_interval, p_interval)


def conflicts(p: Predicate, q: Predicate) -> bool:
    """Whether ``p`` and ``q`` can never hold simultaneously.

    Only selective predicates over the same attribute are analysed; anything
    else conservatively returns ``False`` (i.e. "no conflict detected").
    """
    a = p.normalized()
    b = q.normalized()
    if not a.is_selection or not b.is_selection or not _same_attribute(a, b):
        return False
    # p conflicts with q iff p implies NOT q or q implies NOT p.
    return implies(a, b.negated()) or implies(b, a.negated())


def is_subsumed_by_any(predicate: Predicate, others) -> bool:
    """Whether any predicate in ``others`` implies ``predicate``."""
    return any(implies(other, predicate) for other in others)


def strongest(predicates) -> list:
    """Remove predicates implied by another predicate in the collection.

    Useful for presenting minimal predicate sets; the survivor of a pair of
    mutually implying (i.e. equivalent) predicates is the one appearing
    first.
    """
    result = []
    items = list(predicates)
    for i, candidate in enumerate(items):
        dominated = False
        for j, other in enumerate(items):
            if i == j:
                continue
            if implies(other, candidate) and not (
                implies(candidate, other) and i < j
            ):
                dominated = True
                break
        if not dominated:
            result.append(candidate)
    return result


__all__ = [
    "AttributeOperand",
    "conflicts",
    "implies",
    "is_subsumed_by_any",
    "strongest",
]
