"""Semantic constraints as Horn clauses.

The paper restricts itself to *"semantic constraints in the form of Horn
clauses"*: a conjunction of antecedent predicates implying a single
consequent predicate, e.g. constraint c1 of Figure 2.2::

    cargo(_, desc, ..., collects), vehicle(_, "refrigerated truck", ...,
    collects, _)  -->  equal(desc, "frozen food")

which in our predicate notation reads::

    vehicle.desc = "refrigerated truck"  -->  cargo.desc = "frozen food"
    (over classes joined by the ``collects`` relationship)

Constraints are classified *intra-class* (all predicates reference a single
object class, like c4) or *inter-class* (predicates span classes, like c1,
c2, c3, c5); the classification is computed at construction time and stored
in the constraint's tag, exactly as the paper stores it during
precompilation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from .predicate import Predicate


class ConstraintClass(enum.Enum):
    """The paper's intra-class / inter-class constraint classification."""

    INTRA = "intra"
    INTER = "inter"


class ConstraintOrigin(enum.Enum):
    """Where a constraint came from.

    ``STATIC`` constraints are integrity constraints declared on the schema
    (always true in every database state).  ``DERIVED`` constraints are the
    Siegel-style rules deduced from the *current* database state (Section 1
    of the paper notes these can be accommodated by the same algorithm), and
    ``CLOSURE`` constraints were produced by transitive-closure
    materialization during precompilation.
    """

    STATIC = "static"
    DERIVED = "derived"
    CLOSURE = "closure"


class ConstraintError(Exception):
    """Raised when a semantic constraint is malformed."""


@dataclass(frozen=True)
class SemanticConstraint:
    """A Horn-clause semantic constraint ``antecedents -> consequent``.

    Parameters
    ----------
    name:
        Identifier used in traces, groups and experiment output (``"c1"``).
    antecedents:
        The conjunctive body of the clause.  May be empty, modelling an
        unconditional fact about the database such as c4 in Figure 2.2
        ("only research staff members can be appointed as managers") whose
        only condition is membership of the ``manager`` class itself; class
        membership is implicit in our representation, so the predicate list
        is empty and :attr:`anchor_classes` carries the class.
    consequent:
        The single consequent predicate (Horn restriction).
    anchor_classes:
        Classes referenced by the constraint through *class membership*
        rather than through an explicit predicate (e.g. ``manager`` in c4,
        or the two classes related by ``collects`` in c1).  They count
        towards relevance and towards the intra-/inter-class classification.
    anchor_relationships:
        The relationships the constraint is conditioned on.  In the paper's
        notation an inter-class constraint shares a relationship pointer
        variable between its class literals (c1 relates cargo and vehicle
        through ``collects``); the rule only holds for object pairs linked
        through that relationship, so a query is only allowed to use the
        constraint when it traverses the same relationship.  Intra-class
        constraints leave this empty.
    origin:
        Provenance of the constraint (static / derived / closure).
    derived_from:
        For closure constraints, the names of the constraints chained to
        produce this one.
    description:
        Optional natural-language reading of the constraint.
    """

    name: str
    antecedents: Tuple[Predicate, ...]
    consequent: Predicate
    anchor_classes: FrozenSet[str] = frozenset()
    anchor_relationships: FrozenSet[str] = frozenset()
    origin: ConstraintOrigin = ConstraintOrigin.STATIC
    derived_from: Tuple[str, ...] = ()
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConstraintError("constraint name must be non-empty")
        object.__setattr__(self, "antecedents", tuple(self.antecedents))
        object.__setattr__(self, "anchor_classes", frozenset(self.anchor_classes))
        object.__setattr__(
            self, "anchor_relationships", frozenset(self.anchor_relationships)
        )
        object.__setattr__(self, "derived_from", tuple(self.derived_from))
        if self.consequent in self.antecedents:
            raise ConstraintError(
                f"constraint {self.name!r} is trivial: consequent appears in "
                "its own antecedent"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        name: str,
        antecedents: Iterable[Predicate],
        consequent: Predicate,
        anchor_classes: Iterable[str] = (),
        anchor_relationships: Iterable[str] = (),
        origin: ConstraintOrigin = ConstraintOrigin.STATIC,
        derived_from: Iterable[str] = (),
        description: str = "",
    ) -> "SemanticConstraint":
        """Build a constraint, normalizing container types."""
        return SemanticConstraint(
            name=name,
            antecedents=tuple(antecedents),
            consequent=consequent,
            anchor_classes=frozenset(anchor_classes),
            anchor_relationships=frozenset(anchor_relationships),
            origin=origin,
            derived_from=tuple(derived_from),
            description=description,
        )

    # ------------------------------------------------------------------
    # Classification and relevance
    # ------------------------------------------------------------------
    def referenced_classes(self) -> FrozenSet[str]:
        """All object classes referenced by this constraint.

        Includes classes mentioned in any antecedent or consequent predicate
        plus the anchor classes referenced by class membership only.
        """
        classes = set(self.anchor_classes)
        for predicate in self.predicates():
            classes.update(predicate.referenced_classes())
        return frozenset(classes)

    @property
    def classification(self) -> ConstraintClass:
        """Intra-class when one class is referenced, inter-class otherwise.

        This mirrors the paper's tag ``tc(ci)`` computed at precompilation.
        """
        return (
            ConstraintClass.INTRA
            if len(self.referenced_classes()) <= 1
            else ConstraintClass.INTER
        )

    @property
    def is_intra_class(self) -> bool:
        """Shorthand for ``classification is ConstraintClass.INTRA``."""
        return self.classification is ConstraintClass.INTRA

    @property
    def is_inter_class(self) -> bool:
        """Shorthand for ``classification is ConstraintClass.INTER``."""
        return self.classification is ConstraintClass.INTER

    def is_relevant_to(
        self,
        query_classes: Iterable[str],
        query_relationships: Optional[Iterable[str]] = None,
    ) -> bool:
        """The paper's relevance test.

        A constraint is relevant to a query iff *all* object classes it
        references also appear in the query and, when the query's
        relationship list is supplied, every relationship the constraint is
        anchored on is traversed by the query.  (The second condition is
        implicit in the paper's Horn-clause notation, where inter-class
        constraints share a relationship pointer variable between their
        class literals.)
        """
        available = set(query_classes)
        if not self.referenced_classes() <= available:
            return False
        if query_relationships is not None and self.anchor_relationships:
            return self.anchor_relationships <= set(query_relationships)
        return True

    # ------------------------------------------------------------------
    # Predicate access
    # ------------------------------------------------------------------
    def predicates(self) -> Tuple[Predicate, ...]:
        """All predicates of the constraint (antecedents then consequent)."""
        return self.antecedents + (self.consequent,)

    def has_antecedent(self, predicate: Predicate) -> bool:
        """Whether ``predicate`` appears in the antecedent."""
        target = predicate.normalized()
        return any(p.normalized() == target for p in self.antecedents)

    def is_consequent(self, predicate: Predicate) -> bool:
        """Whether ``predicate`` is the consequent."""
        return self.consequent.normalized() == predicate.normalized()

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def holds_for(self, binding: Mapping[str, Mapping[str, object]]) -> bool:
        """Check the constraint against one binding of classes to instances.

        The constraint holds when some antecedent is false or the consequent
        is true — standard material implication.  Used by the integrity
        validator (:mod:`repro.constraints.validation`) and by the
        constraint-consistent data generator.
        """
        if all(p.evaluate(binding) for p in self.antecedents):
            return self.consequent.evaluate(binding)
        return True

    def renamed(self, new_name: str) -> "SemanticConstraint":
        """A copy of this constraint under a different name."""
        return SemanticConstraint(
            name=new_name,
            antecedents=self.antecedents,
            consequent=self.consequent,
            anchor_classes=self.anchor_classes,
            anchor_relationships=self.anchor_relationships,
            origin=self.origin,
            derived_from=self.derived_from,
            description=self.description,
        )

    def signature(self) -> Tuple:
        """A name-independent identity for duplicate elimination."""
        return (
            tuple(sorted(p.key() for p in self.antecedents)),
            self.consequent.key(),
            tuple(sorted(self.anchor_classes)),
            tuple(sorted(self.anchor_relationships)),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(p) for p in self.antecedents) or "true"
        return f"{self.name}: {body} -> {self.consequent}"


def unique_constraints(
    constraints: Sequence[SemanticConstraint],
) -> Tuple[SemanticConstraint, ...]:
    """Drop constraints whose signature duplicates an earlier one."""
    seen = set()
    result = []
    for constraint in constraints:
        sig = constraint.signature()
        if sig in seen:
            continue
        seen.add(sig)
        result.append(constraint)
    return tuple(result)


def fresh_name(prefix: str, taken: Iterable[str]) -> str:
    """Generate a constraint name ``prefix<N>`` not present in ``taken``."""
    existing = set(taken)
    for index in itertools.count(1):
        candidate = f"{prefix}{index}"
        if candidate not in existing:
            return candidate
    raise AssertionError("unreachable")  # pragma: no cover
