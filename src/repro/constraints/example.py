"""The paper's example semantic constraints (Figure 2.2).

The five constraints of the worked example, expressed over the Figure 2.1
schema built by :func:`repro.schema.example.build_example_schema`:

c1  Refrigerated trucks can only be used to carry frozen food.
    ``vehicle.desc = "refrigerated truck" -> cargo.desc = "frozen food"``
    (anchored on cargo & vehicle, related through ``collects``)

c2  We get frozen food only from the Singapore Food Industries (SFI).
    ``cargo.desc = "frozen food" -> supplier.name = "SFI"``
    (anchored on supplier & cargo, related through ``supplies``)

c3  A driver can only drive vehicles whose classification is not higher
    than his license classification.
    ``-> driver.licenseClass >= vehicle.class``
    (anchored on driver & vehicle, related through ``drives``; the
    consequent is an inter-class comparison with no antecedent beyond class
    membership)

c4  Only research staff members can be appointed as managers.
    ``-> manager.rank = "research staff member"``  (intra-class)

c5  Only employees whose security clearance is top secret can belong to the
    development department.
    ``department.name = "development" -> employee.clearance = "top secret"``
    (anchored on employee & department, related through ``belongsTo``)
"""

from __future__ import annotations

from typing import Dict, List

from .horn_clause import SemanticConstraint
from .predicate import Predicate

# Constants used throughout the example, exported so that data generation,
# tests and examples all agree on spelling.
REFRIGERATED_TRUCK = "refrigerated truck"
FROZEN_FOOD = "frozen food"
SFI = "SFI"
RESEARCH_STAFF = "research staff member"
DEVELOPMENT = "development"
TOP_SECRET = "top secret"


def constraint_c1() -> SemanticConstraint:
    """c1: refrigerated trucks only carry frozen food."""
    return SemanticConstraint.build(
        name="c1",
        antecedents=[Predicate.equals("vehicle.desc", REFRIGERATED_TRUCK)],
        consequent=Predicate.equals("cargo.desc", FROZEN_FOOD),
        anchor_classes={"cargo", "vehicle"},
        anchor_relationships={"collects"},
        description="Refrigerated trucks can only be used to carry frozen food.",
    )


def constraint_c2() -> SemanticConstraint:
    """c2: frozen food comes only from SFI."""
    return SemanticConstraint.build(
        name="c2",
        antecedents=[Predicate.equals("cargo.desc", FROZEN_FOOD)],
        consequent=Predicate.equals("supplier.name", SFI),
        anchor_classes={"supplier", "cargo"},
        anchor_relationships={"supplies"},
        description="We get frozen food only from the Singapore Food Industries.",
    )


def constraint_c3() -> SemanticConstraint:
    """c3: a driver's license class bounds the vehicle class they drive."""
    return SemanticConstraint.build(
        name="c3",
        antecedents=[],
        consequent=Predicate.comparison(
            "driver.licenseClass", ">=", "vehicle.class"
        ),
        anchor_classes={"driver", "vehicle"},
        anchor_relationships={"drives"},
        description=(
            "A driver can only drive vehicles whose classification is not "
            "higher than his license classification."
        ),
    )


def constraint_c4() -> SemanticConstraint:
    """c4: only research staff members can be appointed as managers."""
    return SemanticConstraint.build(
        name="c4",
        antecedents=[],
        consequent=Predicate.equals("manager.rank", RESEARCH_STAFF),
        anchor_classes={"manager"},
        description="Only research staff members can be appointed as managers.",
    )


def constraint_c5() -> SemanticConstraint:
    """c5: development-department employees have top-secret clearance."""
    return SemanticConstraint.build(
        name="c5",
        antecedents=[Predicate.equals("department.name", DEVELOPMENT)],
        consequent=Predicate.equals("employee.clearance", TOP_SECRET),
        anchor_classes={"employee", "department"},
        anchor_relationships={"belongsTo"},
        description=(
            "Only employees whose security clearance is top secret can "
            "belong to the development department."
        ),
    )


def build_example_constraints() -> List[SemanticConstraint]:
    """All five Figure 2.2 constraints, in paper order."""
    return [
        constraint_c1(),
        constraint_c2(),
        constraint_c3(),
        constraint_c4(),
        constraint_c5(),
    ]


def example_constraints_by_name() -> Dict[str, SemanticConstraint]:
    """Map constraint name (``"c1"`` ... ``"c5"``) to the constraint."""
    return {c.name: c for c in build_example_constraints()}


def core_example_constraints() -> List[SemanticConstraint]:
    """The subset of Figure 2.2 constraints expressible on the 5-class core schema.

    The core schema (:func:`repro.schema.example.build_core_example_schema`)
    drops the manager/supervisor/employee/department classes, so c4 and c5
    are out of scope; c1, c2 and c3 remain.
    """
    return [constraint_c1(), constraint_c2(), constraint_c3()]
