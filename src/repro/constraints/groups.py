"""Constraint grouping schemes.

The paper reduces the overhead of constraint retrieval by grouping
constraints by object class: *"A constraint is arbitrarily assigned to a
group g_k, which is attached to object class o_k and o_k is one of the
object classes referenced in the constraint.  To optimize a query, only those
groups of constraints attached to object classes that appear in the query
need to be considered."*

Section 3 then refines the assignment: attach each constraint to the *least
frequently accessed* class it references, so that constraints over rarely
queried classes are rarely fetched; and mentions an alternative that
distributes constraints evenly across groups.  All three assignment policies
are implemented here so the grouping ablation experiment can compare them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..schema.statistics import AccessStatistics
from .horn_clause import ConstraintError, SemanticConstraint


class GroupingPolicy(enum.Enum):
    """How a constraint is assigned to one of its referenced classes."""

    #: Attach to the alphabetically first referenced class (a deterministic
    #: stand-in for the paper's "arbitrarily assigned").
    ARBITRARY = "arbitrary"
    #: Attach to the least frequently accessed referenced class (the paper's
    #: recommended enhancement).
    LEAST_FREQUENT = "least_frequent"
    #: Attach to whichever referenced class currently has the smallest group
    #: (the paper's "distribute constraints as evenly as possible"
    #: alternative).
    BALANCED = "balanced"


@dataclass
class ConstraintGroup:
    """The group of constraints attached to a single object class."""

    class_name: str
    constraints: List[SemanticConstraint] = field(default_factory=list)

    def add(self, constraint: SemanticConstraint) -> None:
        """Append a constraint to the group."""
        self.constraints.append(constraint)

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)


@dataclass
class RetrievalStats:
    """Bookkeeping for one retrieval, used by the grouping ablation.

    ``fetched`` counts every constraint pulled out of the touched groups;
    ``relevant`` counts the subset that passed the relevance test.  The
    difference is the wasted work the grouping policy failed to avoid.
    ``cache_hit`` is set when the repository answered the retrieval from its
    keyed cache instead of walking the groups (the counts then describe the
    original, cached retrieval).
    """

    groups_touched: int = 0
    fetched: int = 0
    relevant: int = 0
    cache_hit: bool = False

    @property
    def irrelevant(self) -> int:
        """Constraints fetched but found irrelevant to the query."""
        return self.fetched - self.relevant

    @property
    def precision(self) -> float:
        """Fraction of fetched constraints that were relevant (1.0 if none fetched)."""
        if self.fetched == 0:
            return 1.0
        return self.relevant / self.fetched


class ConstraintGrouping:
    """Assignment of constraints to per-class groups.

    Parameters
    ----------
    class_names:
        All object classes of the schema; a (possibly empty) group is
        maintained for each so that retrieval never has to special-case
        missing groups.
    policy:
        The :class:`GroupingPolicy` used by :meth:`assign`.
    statistics:
        Access-frequency statistics; required by the ``LEAST_FREQUENT``
        policy and ignored by the others.
    """

    def __init__(
        self,
        class_names: Iterable[str],
        policy: GroupingPolicy = GroupingPolicy.LEAST_FREQUENT,
        statistics: Optional[AccessStatistics] = None,
    ) -> None:
        self.policy = policy
        self.statistics = statistics or AccessStatistics()
        self._groups: Dict[str, ConstraintGroup] = {
            name: ConstraintGroup(name) for name in class_names
        }
        if not self._groups:
            raise ConstraintError("a grouping needs at least one object class")

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _choose_class(self, constraint: SemanticConstraint) -> str:
        referenced = sorted(constraint.referenced_classes())
        known = [name for name in referenced if name in self._groups]
        if not known:
            raise ConstraintError(
                f"constraint {constraint.name!r} references no known object "
                f"class (referenced: {referenced})"
            )
        if self.policy is GroupingPolicy.ARBITRARY:
            return known[0]
        if self.policy is GroupingPolicy.LEAST_FREQUENT:
            return self.statistics.least_frequent(known)
        # BALANCED: smallest group wins, ties alphabetically.
        return min(known, key=lambda name: (len(self._groups[name]), name))

    def assign(self, constraint: SemanticConstraint) -> str:
        """Assign ``constraint`` to a group and return the chosen class name."""
        class_name = self._choose_class(constraint)
        self._groups[class_name].add(constraint)
        return class_name

    def assign_all(
        self, constraints: Iterable[SemanticConstraint]
    ) -> Dict[str, List[str]]:
        """Assign every constraint; returns class -> list of constraint names."""
        placement: Dict[str, List[str]] = {}
        for constraint in constraints:
            class_name = self.assign(constraint)
            placement.setdefault(class_name, []).append(constraint.name)
        return placement

    def rebuild(
        self,
        constraints: Sequence[SemanticConstraint],
        statistics: Optional[AccessStatistics] = None,
    ) -> None:
        """Re-assign all constraints from scratch.

        The paper notes that the least-frequent enhancement requires the
        grouping to be "updated as database access pattern changes"; this is
        that update.
        """
        if statistics is not None:
            self.statistics = statistics
        for group in self._groups.values():
            group.constraints.clear()
        for constraint in constraints:
            self.assign(constraint)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def group(self, class_name: str) -> ConstraintGroup:
        """The group attached to ``class_name``."""
        try:
            return self._groups[class_name]
        except KeyError:
            raise ConstraintError(f"unknown object class {class_name!r}") from None

    def groups(self) -> List[ConstraintGroup]:
        """All groups (including empty ones)."""
        return list(self._groups.values())

    def group_sizes(self) -> Dict[str, int]:
        """Class name -> number of constraints attached."""
        return {name: len(group) for name, group in self._groups.items()}

    def fetch(self, query_classes: Iterable[str]) -> List[SemanticConstraint]:
        """All constraints attached to any class in ``query_classes``.

        This is the raw group fetch; relevance filtering is a separate step
        (see :meth:`retrieve_relevant`), matching the two-stage procedure in
        the paper's initialization algorithm.
        """
        fetched: List[SemanticConstraint] = []
        seen: Set[str] = set()
        for class_name in query_classes:
            group = self._groups.get(class_name)
            if group is None:
                continue
            for constraint in group:
                if constraint.name not in seen:
                    seen.add(constraint.name)
                    fetched.append(constraint)
        return fetched

    def retrieve_relevant(
        self,
        query_classes: Iterable[str],
        query_relationships: Optional[Iterable[str]] = None,
    ) -> Tuple[List[SemanticConstraint], RetrievalStats]:
        """Fetch groups for ``query_classes`` and filter to relevant constraints.

        Returns the relevant constraints plus :class:`RetrievalStats`
        describing how much irrelevant work the fetch incurred.
        """
        classes = set(query_classes)
        relationships = (
            set(query_relationships) if query_relationships is not None else None
        )
        stats = RetrievalStats()
        stats.groups_touched = sum(1 for name in classes if name in self._groups)
        # Sorted, not raw set order: fetch preserves its input order in
        # the returned list, and string-set order varies per process
        # (hash randomization), so an unsorted fetch would leak the
        # parent/worker split into constraint application order.
        fetched = self.fetch(sorted(classes))
        stats.fetched = len(fetched)
        relevant = [c for c in fetched if c.is_relevant_to(classes, relationships)]
        stats.relevant = len(relevant)
        return relevant, stats

    # ------------------------------------------------------------------
    # Correctness check
    # ------------------------------------------------------------------
    def verify_complete(
        self,
        constraints: Sequence[SemanticConstraint],
        query_classes: Iterable[str],
    ) -> bool:
        """Check the paper's correctness argument for the grouping scheme.

        Every constraint relevant to ``query_classes`` must be among the
        constraints fetched for those classes (the scheme may over-fetch but
        must never miss a relevant constraint).
        """
        classes = set(query_classes)
        fetched_names = {c.name for c in self.fetch(sorted(classes))}
        for constraint in constraints:
            if constraint.is_relevant_to(classes) and constraint.name not in fetched_names:
                return False
        return True


def build_grouping(
    class_names: Iterable[str],
    constraints: Sequence[SemanticConstraint],
    policy: GroupingPolicy = GroupingPolicy.LEAST_FREQUENT,
    statistics: Optional[AccessStatistics] = None,
    frequencies: Optional[Mapping[str, int]] = None,
) -> ConstraintGrouping:
    """Convenience builder: create a grouping and assign all constraints."""
    stats = statistics
    if stats is None and frequencies is not None:
        stats = AccessStatistics(frequencies)
    grouping = ConstraintGrouping(class_names, policy=policy, statistics=stats)
    grouping.assign_all(constraints)
    return grouping
