"""State-derived ("dynamic") semantic rules.

Siegel [Sie88] and Yu & Sun [YuS89] extend semantic optimization with rules
that are not declared integrity constraints but are *deduced from the current
database state* — e.g. "every cargo currently in the database has quantity
<= 500" — and therefore only guarantee equivalence in the current state.
Section 2 of the paper notes that such rules "can easily be accommodated" by
the same transformation algorithm; this module provides a small rule-derivation
pass so that the accommodation can actually be exercised in tests, examples
and the extension experiments.

Two families of rules are derived:

* **Range rules** — for each numeric attribute of each class, unconditional
  bounds ``attr >= observed_min`` and ``attr <= observed_max``.
* **Functional rules** — for a pair of attributes (A, B) of the same class,
  if every instance with ``A = a`` also has ``B = b`` for a single ``b``
  (and ``a`` occurs at least ``min_support`` times), derive
  ``A = a -> B = b``.

Derived rules carry ``ConstraintOrigin.DERIVED`` so the repository, traces
and experiments can tell them apart from declared integrity constraints.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine.storage import ObjectStore
from ..schema.attribute import DomainType
from ..schema.schema import Schema
from .horn_clause import ConstraintOrigin, SemanticConstraint, fresh_name
from .predicate import ComparisonOperator, Predicate


@dataclass
class DerivationConfig:
    """Tuning knobs for dynamic rule derivation.

    Parameters
    ----------
    derive_ranges:
        Derive min/max range rules for numeric attributes.
    derive_functional:
        Derive ``A = a -> B = b`` rules for co-varying attribute pairs.
    min_support:
        Minimum number of instances a value must appear in before a
        functional rule conditioned on it is derived (guards against rules
        that reflect a single row rather than a pattern).
    max_distinct:
        Functional rules are only derived when the conditioning attribute has
        at most this many distinct values — high-cardinality attributes (keys,
        free text) would generate a flood of single-row rules.
    """

    derive_ranges: bool = True
    derive_functional: bool = True
    min_support: int = 2
    max_distinct: int = 16


class DynamicRuleDeriver:
    """Derives state-dependent semantic rules from an object store."""

    def __init__(
        self,
        schema: Schema,
        config: Optional[DerivationConfig] = None,
    ) -> None:
        self.schema = schema
        self.config = config or DerivationConfig()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def derive(
        self,
        store: ObjectStore,
        class_names: Optional[Iterable[str]] = None,
        existing_names: Iterable[str] = (),
    ) -> List[SemanticConstraint]:
        """Derive rules from the current contents of ``store``.

        Parameters
        ----------
        store:
            The database instance to learn from.
        class_names:
            Restrict derivation to these classes (default: all classes with
            a non-empty extent).
        existing_names:
            Constraint names already taken, so freshly derived rules never
            collide with declared constraints.
        """
        taken: Set[str] = set(existing_names)
        targets = list(class_names) if class_names is not None else [
            name for name in self.schema.class_names() if store.count(name) > 0
        ]
        rules: List[SemanticConstraint] = []
        for class_name in targets:
            if not store.has_class(class_name) or store.count(class_name) == 0:
                continue
            if self.config.derive_ranges:
                rules.extend(self._range_rules(store, class_name, taken))
            if self.config.derive_functional:
                rules.extend(self._functional_rules(store, class_name, taken))
        return rules

    # ------------------------------------------------------------------
    # Range rules
    # ------------------------------------------------------------------
    def _range_rules(
        self, store: ObjectStore, class_name: str, taken: Set[str]
    ) -> List[SemanticConstraint]:
        rules: List[SemanticConstraint] = []
        cls = self.schema.object_class(class_name)
        for attribute in cls.value_attributes:
            if not attribute.domain.is_numeric:
                continue
            values = [
                instance.values.get(attribute.name)
                for instance in store.instances(class_name)
            ]
            numeric = [v for v in values if isinstance(v, (int, float))]
            if not numeric or len(numeric) != len(values):
                continue
            low, high = min(numeric), max(numeric)
            qualified = f"{class_name}.{attribute.name}"
            for operator, bound in (
                (ComparisonOperator.GE, low),
                (ComparisonOperator.LE, high),
            ):
                name = fresh_name("d", taken)
                taken.add(name)
                rules.append(
                    SemanticConstraint.build(
                        name=name,
                        antecedents=[],
                        consequent=Predicate.selection(qualified, operator, bound),
                        anchor_classes={class_name},
                        origin=ConstraintOrigin.DERIVED,
                        description=(
                            f"observed range bound on {qualified} in the "
                            "current database state"
                        ),
                    )
                )
        return rules

    # ------------------------------------------------------------------
    # Functional rules
    # ------------------------------------------------------------------
    def _functional_rules(
        self, store: ObjectStore, class_name: str, taken: Set[str]
    ) -> List[SemanticConstraint]:
        rules: List[SemanticConstraint] = []
        cls = self.schema.object_class(class_name)
        candidates = [
            a
            for a in cls.value_attributes
            if a.domain in (DomainType.STRING, DomainType.INTEGER)
        ]
        instances = store.instances(class_name)
        for source in candidates:
            # value of source attribute -> set of values seen for each other
            # attribute, plus a support count.
            support: Dict[object, int] = defaultdict(int)
            observed: Dict[Tuple[str, object], Set[object]] = defaultdict(set)
            for instance in instances:
                source_value = instance.values.get(source.name)
                if source_value is None:
                    continue
                support[source_value] += 1
                for target in candidates:
                    if target.name == source.name:
                        continue
                    observed[(target.name, source_value)].add(
                        instance.values.get(target.name)
                    )
            if len(support) > self.config.max_distinct:
                continue
            for target in candidates:
                if target.name == source.name:
                    continue
                for source_value, count in support.items():
                    if count < self.config.min_support:
                        continue
                    values = observed[(target.name, source_value)]
                    if len(values) != 1:
                        continue
                    (target_value,) = values
                    if target_value is None:
                        continue
                    name = fresh_name("d", taken)
                    taken.add(name)
                    rules.append(
                        SemanticConstraint.build(
                            name=name,
                            antecedents=[
                                Predicate.equals(
                                    f"{class_name}.{source.name}", source_value
                                )
                            ],
                            consequent=Predicate.equals(
                                f"{class_name}.{target.name}", target_value
                            ),
                            anchor_classes={class_name},
                            origin=ConstraintOrigin.DERIVED,
                            description=(
                                f"functional dependency observed in the current "
                                f"state: {source.name}={source_value!r} always "
                                f"implies {target.name}={target_value!r}"
                            ),
                        )
                    )
        return rules


def derive_rules(
    schema: Schema,
    store: ObjectStore,
    config: Optional[DerivationConfig] = None,
    existing_names: Iterable[str] = (),
) -> List[SemanticConstraint]:
    """Convenience wrapper around :class:`DynamicRuleDeriver`."""
    return DynamicRuleDeriver(schema, config).derive(
        store, existing_names=existing_names
    )
