"""Semantic constraint substrate.

Predicates, Horn-clause semantic constraints, predicate implication
reasoning, transitive-closure materialization, constraint grouping, the
constraint repository used by the optimizer, the Figure 2.2 example
constraints, integrity validation of database contents, and Siegel-style
dynamic rule derivation.
"""

from .predicate import (
    AttributeOperand,
    ComparisonOperator,
    Predicate,
    attribute_operand,
    parse_operator,
)
from .implication import conflicts, implies, is_subsumed_by_any, strongest
from .horn_clause import (
    ConstraintClass,
    ConstraintError,
    ConstraintOrigin,
    SemanticConstraint,
    fresh_name,
    unique_constraints,
)
from .closure import ClosureResult, PredicateStore, closure_reaches, compute_closure
from .groups import (
    ConstraintGroup,
    ConstraintGrouping,
    GroupingPolicy,
    RetrievalStats,
    build_grouping,
)
from .repository import ConstraintRepository, RepositoryCacheStats, RepositoryStats
from .dynamic import DerivationConfig, DynamicRuleDeriver, derive_rules
from .validation import ValidationReport, Violation, assert_valid, validate_database
from .example import (
    DEVELOPMENT,
    FROZEN_FOOD,
    REFRIGERATED_TRUCK,
    RESEARCH_STAFF,
    SFI,
    TOP_SECRET,
    build_example_constraints,
    constraint_c1,
    constraint_c2,
    constraint_c3,
    constraint_c4,
    constraint_c5,
    core_example_constraints,
    example_constraints_by_name,
)

__all__ = [
    "AttributeOperand",
    "ClosureResult",
    "ComparisonOperator",
    "ConstraintClass",
    "ConstraintError",
    "ConstraintGroup",
    "ConstraintGrouping",
    "ConstraintOrigin",
    "ConstraintRepository",
    "DerivationConfig",
    "DynamicRuleDeriver",
    "GroupingPolicy",
    "Predicate",
    "PredicateStore",
    "RepositoryCacheStats",
    "RepositoryStats",
    "RetrievalStats",
    "SemanticConstraint",
    "ValidationReport",
    "Violation",
    "assert_valid",
    "attribute_operand",
    "build_example_constraints",
    "build_grouping",
    "closure_reaches",
    "compute_closure",
    "conflicts",
    "constraint_c1",
    "constraint_c2",
    "constraint_c3",
    "constraint_c4",
    "constraint_c5",
    "core_example_constraints",
    "derive_rules",
    "example_constraints_by_name",
    "fresh_name",
    "implies",
    "is_subsumed_by_any",
    "parse_operator",
    "strongest",
    "unique_constraints",
    "validate_database",
    "DEVELOPMENT",
    "FROZEN_FOOD",
    "REFRIGERATED_TRUCK",
    "RESEARCH_STAFF",
    "SFI",
    "TOP_SECRET",
]
