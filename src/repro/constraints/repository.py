"""The constraint repository.

The repository is the precompilation-time home of all semantic constraints.
On :meth:`ConstraintRepository.precompile` it

1. validates constraints against the schema (every referenced
   ``class.attribute`` must exist),
2. materializes the transitive closure of the constraint set
   (:mod:`repro.constraints.closure`),
3. classifies each constraint intra-/inter-class (stored on the constraint),
4. groups the closed constraint set by object class
   (:mod:`repro.constraints.groups`).

At optimization time :meth:`retrieve_relevant` performs the paper's two-step
retrieval: fetch the groups attached to the classes in the query, then keep
only the constraints whose referenced classes all appear in the query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..caching import LruCache
from ..schema.schema import Schema
from ..schema.statistics import AccessStatistics
from .closure import ClosureResult, PredicateStore, compute_closure
from .groups import ConstraintGrouping, GroupingPolicy, RetrievalStats
from .horn_clause import (
    ConstraintError,
    ConstraintOrigin,
    SemanticConstraint,
    unique_constraints,
)
from .predicate import AttributeOperand, Predicate


@dataclass
class RepositoryStats:
    """Summary statistics about a precompiled repository."""

    declared: int
    closed: int
    derived: int
    intra_class: int
    inter_class: int
    distinct_predicates: int
    closure_iterations: int


@dataclass(frozen=True)
class RepositoryCacheStats:
    """Hit/miss accounting for the repository's caches.

    ``retrieval_*`` counts lookups in the keyed constraint-retrieval cache
    (one entry per distinct query class/relationship set per repository
    generation); ``closure_*`` counts reuse of materialized closures across
    precompilations of an identical declared constraint set.

    Instances are immutable snapshots: each underlying cache's counters are
    read atomically (:meth:`repro.caching.LruCache.snapshot`), so a
    snapshot taken while other threads optimize concurrently is internally
    consistent rather than torn across in-flight counter updates.
    """

    retrieval_hits: int = 0
    retrieval_misses: int = 0
    retrieval_evictions: int = 0
    retrieval_entries: int = 0
    retrieval_maxsize: int = 0
    closure_hits: int = 0
    closure_misses: int = 0

    @property
    def retrieval_lookups(self) -> int:
        """Total retrieval-cache lookups."""
        return self.retrieval_hits + self.retrieval_misses

    @property
    def retrieval_hit_rate(self) -> float:
        """Fraction of retrieval lookups served from cache (0.0 if none)."""
        lookups = self.retrieval_lookups
        return self.retrieval_hits / lookups if lookups else 0.0


class ConstraintRepository:
    """Stores, precompiles and retrieves semantic constraints.

    Parameters
    ----------
    schema:
        The database schema constraints are declared against.
    policy:
        The grouping policy used at precompilation.
    statistics:
        Access-frequency statistics driving the ``LEAST_FREQUENT`` policy;
        a fresh (empty) tracker is used when omitted.
    compute_transitive_closure:
        When ``True`` (the paper's design) the closure is materialized at
        precompilation; turning it off is only useful for ablation
        experiments that quantify what the closure buys.
    retrieval_cache_size:
        Maximum number of keyed retrieval results kept (LRU).  ``0``
        disables the retrieval cache entirely.
    closure_cache_size:
        Maximum number of materialized closures remembered across
        precompilations (LRU); lets an add/remove cycle that restores a
        previous declared set skip the fixpoint computation.
    """

    def __init__(
        self,
        schema: Schema,
        policy: GroupingPolicy = GroupingPolicy.LEAST_FREQUENT,
        statistics: Optional[AccessStatistics] = None,
        compute_transitive_closure: bool = True,
        retrieval_cache_size: int = 256,
        closure_cache_size: int = 4,
    ) -> None:
        self.schema = schema
        self.policy = policy
        self.statistics = statistics or AccessStatistics()
        self.compute_transitive_closure = compute_transitive_closure
        self._declared: List[SemanticConstraint] = []
        self._closed: Tuple[SemanticConstraint, ...] = ()
        self._closure: Optional[ClosureResult] = None
        self._grouping: Optional[ConstraintGrouping] = None
        self._store = PredicateStore()
        self._dirty = True
        self._generation = 0
        # Per-class epoch counters: a constraint add/remove bumps only the
        # counters of the classes the constraint references, so caches keyed
        # on :meth:`class_generations` survive mutations that cannot have
        # affected their queries (class-granular instead of wholesale).
        self._class_generations: Dict[str, int] = {
            name: 0 for name in schema.class_names()
        }
        # Guards generation bumps, access statistics and (re)compilation;
        # each LruCache carries its own lock.
        self._lock = threading.RLock()
        self._retrieval_cache: LruCache = LruCache(retrieval_cache_size)
        self._closure_cache: LruCache = LruCache(closure_cache_size)

    # ------------------------------------------------------------------
    # Generation / cache management
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every semantic mutation.

        Callers that cache anything derived from this repository (e.g. the
        service layer's optimization-result cache) key their entries on the
        generation so a constraint add/remove transparently invalidates them.
        """
        return self._generation

    def _invalidate_caches(self, class_names: Optional[Iterable[str]] = None) -> None:
        """Bump the generation (global and per-class) and drop retrievals.

        ``class_names`` limits the per-class epoch bumps to the classes a
        mutation actually touched; ``None`` bumps every class (the
        conservative wholesale invalidation, used by :meth:`regroup`).
        """
        with self._lock:
            self._generation += 1
            targets = (
                list(class_names)
                if class_names is not None
                else list(self._class_generations)
            )
            for name in targets:
                self._class_generations[name] = (
                    self._class_generations.get(name, 0) + 1
                )
            self._retrieval_cache.clear()

    def class_generations(self, class_names: Iterable[str]) -> Tuple[int, ...]:
        """The epoch counters of ``class_names`` (sorted by class name).

        The class-granular analogue of :attr:`generation`: a cache entry
        derived from a query keyed on this tuple goes stale exactly when a
        constraint referencing one of the query's classes is added or
        removed — constraint churn on unrelated classes leaves it servable.
        Every constraint's referenced classes are a subset of the classes
        of any query it is relevant to, so keying on the query's own
        classes can never miss a relevant change.
        """
        with self._lock:
            return tuple(
                self._class_generations.get(name, 0)
                for name in sorted(set(class_names))
            )

    def clear_retrieval_cache(self) -> None:
        """Drop cached retrievals without changing the generation."""
        self._retrieval_cache.clear()

    def clear_closure_cache(self) -> None:
        """Drop every memoized closure.

        The closure cache is keyed on the full declared-constraint identity
        (names, predicate values, provenance), so ordinary mutations never
        need this; it exists for callers that invalidate derived state out
        of band (e.g. operational tooling after bulk store surgery).
        """
        self._closure_cache.clear()

    def cache_stats(self) -> RepositoryCacheStats:
        """An immutable, internally consistent snapshot of cache counters.

        Each cache's counters are read under that cache's lock, so the
        snapshot never shows a torn view (e.g. a hit counted without its
        lookup) even while worker threads keep optimizing.
        """
        retrieval = self._retrieval_cache.snapshot()
        closure = self._closure_cache.snapshot()
        return RepositoryCacheStats(
            retrieval_hits=retrieval.hits,
            retrieval_misses=retrieval.misses,
            retrieval_evictions=retrieval.evictions,
            retrieval_entries=retrieval.entries,
            retrieval_maxsize=retrieval.maxsize,
            closure_hits=closure.hits,
            closure_misses=closure.misses,
        )

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add(self, constraint: SemanticConstraint) -> None:
        """Declare a constraint (validated against the schema immediately)."""
        self._validate(constraint)
        if any(c.name == constraint.name for c in self._declared):
            raise ConstraintError(
                f"a constraint named {constraint.name!r} is already declared"
            )
        self._declared.append(constraint)
        self._dirty = True
        self._invalidate_caches(constraint.referenced_classes())

    def add_all(self, constraints: Iterable[SemanticConstraint]) -> None:
        """Declare several constraints."""
        for constraint in constraints:
            self.add(constraint)

    def remove(self, name: str) -> None:
        """Remove a declared constraint by name.

        The paper notes constraint updates force closure recomputation; we
        simply mark the repository dirty so the next precompile rebuilds it.
        """
        removed = [c for c in self._declared if c.name == name]
        if not removed:
            raise ConstraintError(f"no constraint named {name!r} is declared")
        self._declared = [c for c in self._declared if c.name != name]
        self._dirty = True
        self._invalidate_caches(removed[0].referenced_classes())

    @staticmethod
    def _identity(constraint: SemanticConstraint) -> Tuple:
        """Full identity of one declared constraint (the closure-key parts)."""
        return (
            constraint.name,
            constraint.signature(),
            constraint.description,
            constraint.origin,
            constraint.derived_from,
        )

    def replace_derived(
        self,
        class_names: Iterable[str],
        rules: Iterable[SemanticConstraint],
    ) -> bool:
        """Atomically swap the derived rules touching ``class_names``.

        This is the invalidation hook of the live write path: when data of
        a class changes, the service re-derives that class's dynamic rules
        and swaps them in with one call.  Every declared constraint of
        :attr:`~.ConstraintOrigin.DERIVED` origin referencing one of the
        classes is removed and ``rules`` (validated, DERIVED-origin) are
        declared in their place, under **one** epoch bump scoped to the
        touched classes — so caches keyed on :meth:`class_generations`
        survive for every untouched class.

        Returns ``True`` when the declared set actually changed.  A swap
        that reproduces the outgoing rules exactly (the mutation did not
        move any observed bound) is a no-op: no generation bump, no cache
        invalidation — which is what lets a write-heavy workload keep its
        warm optimization caches whenever the data change is semantically
        silent.  The closure cache needs no explicit eviction either way:
        its keys cover predicate *values*, so a changed bound can never
        collide with a stale entry, and an unchanged set may legitimately
        reuse its memoized closure.
        """
        targets = set(class_names)
        incoming = list(rules)
        for rule in incoming:
            if rule.origin is not ConstraintOrigin.DERIVED:
                raise ConstraintError(
                    f"replace_derived only accepts DERIVED rules, got "
                    f"{rule.name!r} ({rule.origin.value})"
                )
            self._validate(rule)
        with self._lock:
            kept: List[SemanticConstraint] = []
            outgoing: List[SemanticConstraint] = []
            for constraint in self._declared:
                if constraint.origin is ConstraintOrigin.DERIVED and (
                    constraint.referenced_classes() & targets
                ):
                    outgoing.append(constraint)
                else:
                    kept.append(constraint)
            taken = {c.name for c in kept}
            for rule in incoming:
                if rule.name in taken:
                    raise ConstraintError(
                        f"a constraint named {rule.name!r} is already declared"
                    )
                taken.add(rule.name)
            if [self._identity(c) for c in outgoing] == [
                self._identity(c) for c in incoming
            ]:
                return False
            self._declared = kept + incoming
            self._dirty = True
            touched = set(targets)
            for constraint in outgoing:
                touched |= constraint.referenced_classes()
            for constraint in incoming:
                touched |= constraint.referenced_classes()
            self._invalidate_caches(touched)
            return True

    def declared(self) -> List[SemanticConstraint]:
        """The declared (pre-closure) constraints."""
        return list(self._declared)

    def _validate(self, constraint: SemanticConstraint) -> None:
        """Check every attribute reference in ``constraint`` against the schema."""
        for predicate in constraint.predicates():
            for operand in predicate.referenced_attributes():
                self._resolve_operand(operand)
        for class_name in constraint.anchor_classes:
            if not self.schema.has_class(class_name):
                raise ConstraintError(
                    f"constraint {constraint.name!r} anchors unknown class "
                    f"{class_name!r}"
                )

    def _resolve_operand(self, operand: AttributeOperand) -> None:
        if not self.schema.has_class(operand.class_name):
            raise ConstraintError(
                f"predicate references unknown class {operand.class_name!r}"
            )
        cls = self.schema.object_class(operand.class_name)
        if not cls.has_attribute(operand.attribute_name):
            raise ConstraintError(
                f"predicate references unknown attribute "
                f"{operand.qualified_name}"
            )

    # ------------------------------------------------------------------
    # Precompilation
    # ------------------------------------------------------------------
    def precompile(self) -> RepositoryStats:
        """Materialize the closure and (re)build the constraint grouping.

        Compilation runs under the repository lock, and the grouping is
        fully populated before being published, so readers on other threads
        either see the previous compiled state or the complete new one —
        never a half-built grouping.
        """
        with self._lock:
            declared = unique_constraints(tuple(self._declared))
            if self.compute_transitive_closure:
                self._closure = self._materialize_closure(declared)
                self._closed = self._closure.constraints
                self._store = self._closure.store
            else:
                self._closure = None
                self._store = PredicateStore()
                interned = []
                for constraint in declared:
                    interned.append(
                        SemanticConstraint.build(
                            name=constraint.name,
                            antecedents=self._store.intern_all(constraint.antecedents),
                            consequent=self._store.intern(constraint.consequent),
                            anchor_classes=constraint.anchor_classes,
                            origin=constraint.origin,
                            derived_from=constraint.derived_from,
                            description=constraint.description,
                        )
                    )
                self._closed = tuple(interned)

            grouping = ConstraintGrouping(
                self.schema.class_names(),
                policy=self.policy,
                statistics=self.statistics,
            )
            grouping.assign_all(self._closed)
            self._grouping = grouping
            # Cached RetrievalStats describe the grouping they were fetched
            # from; a rebuilt grouping makes them stale (same reason
            # regroup() invalidates).
            self._retrieval_cache.clear()
            self._dirty = False
            return self.stats()

    def _materialize_closure(self, declared: Tuple[SemanticConstraint, ...]) -> ClosureResult:
        """Compute (or reuse) the closure of ``declared``.

        Closures only depend on the declared constraint set, so an LRU keyed
        on the constraint signatures lets a mutation cycle that restores a
        previously-seen set skip the fixpoint recomputation entirely.
        """
        # signature() deliberately covers only predicates and anchors, but
        # the cached ClosureResult carries full constraint identity, so
        # name, description, origin and lineage must all be part of the key
        # or a logically-identical re-declaration would resurrect the
        # removed constraint's stale identity/provenance.
        key = tuple(
            self._identity(c) for c in sorted(declared, key=lambda c: c.name)
        )
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        closure = compute_closure(declared, store=PredicateStore())
        self._closure_cache.put(key, closure)
        return closure

    def _ensure_compiled(self) -> None:
        if self._dirty or self._grouping is None:
            with self._lock:
                # Double-checked under the lock: another thread may have
                # finished compiling while this one waited.
                if self._dirty or self._grouping is None:
                    self.precompile()

    def ensure_precompiled(self) -> None:
        """Precompile now if any mutation happened since the last compile.

        Batch callers (the service layer) invoke this once before fanning a
        workload out across threads so no worker races the lazy compile.
        """
        self._ensure_compiled()

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def constraints(self) -> Tuple[SemanticConstraint, ...]:
        """The closed constraint set (precompiles on demand)."""
        self._ensure_compiled()
        return self._closed

    def grouping(self) -> ConstraintGrouping:
        """The current constraint grouping (precompiles on demand)."""
        self._ensure_compiled()
        assert self._grouping is not None
        return self._grouping

    def predicate_store(self) -> PredicateStore:
        """The shared predicate store (precompiles on demand)."""
        self._ensure_compiled()
        return self._store

    def intern(self, predicate: Predicate) -> Predicate:
        """Intern a predicate into the shared store."""
        self._ensure_compiled()
        return self._store.intern(predicate)

    def retrieve_relevant(
        self,
        query_classes: Iterable[str],
        query_relationships: Optional[Iterable[str]] = None,
        record_access: bool = True,
    ) -> Tuple[List[SemanticConstraint], RetrievalStats]:
        """Retrieve the constraints relevant to a query over ``query_classes``.

        Parameters
        ----------
        query_classes:
            Object classes referenced by the query.
        query_relationships:
            Relationships traversed by the query; inter-class constraints
            anchored on other relationships are filtered out.
        record_access:
            When ``True`` the access-frequency statistics are updated, which
            is what gradually steers the ``LEAST_FREQUENT`` grouping policy.

        Retrievals are served from a keyed LRU cache when possible: the key
        is the frozenset of query classes (plus the relationship set, which
        the relevance filter also depends on) under the current repository
        generation.  Any constraint add/remove bumps the generation and
        drops the cache, so a hit can never return stale constraints.
        """
        # Snapshot the generation before compiling: if a mutation races this
        # retrieval, the result lands under the dead pre-mutation key (never
        # served to post-mutation lookups) instead of poisoning the new one.
        generation = self._generation
        self._ensure_compiled()
        classes = list(query_classes)
        if record_access:
            self.record_access(classes)
        assert self._grouping is not None

        relationships = (
            frozenset(query_relationships)
            if query_relationships is not None
            else None
        )
        key = (frozenset(classes), relationships, generation)
        cached = self._retrieval_cache.get(key)
        if cached is not None:
            constraints, stats = cached
            return list(constraints), replace(stats, cache_hit=True)
        relevant, stats = self._grouping.retrieve_relevant(classes, relationships)
        self._retrieval_cache.put(key, (tuple(relevant), replace(stats)))
        return relevant, stats

    def record_access(self, query_classes: Iterable[str]) -> None:
        """Record one query's class accesses in the frequency statistics.

        Callers that answer a query without retrieving (the service layer's
        result-cache hits) use this so the ``LEAST_FREQUENT`` policy keeps
        seeing true access frequencies.  The counters are plain dict
        increments; the lock keeps threaded batches from losing updates.
        """
        with self._lock:
            self.statistics.record_query(list(query_classes))

    def regroup(self, policy: Optional[GroupingPolicy] = None) -> None:
        """Rebuild the grouping (optionally switching policy).

        Called when access patterns have drifted enough that the
        least-frequently-accessed assignment is stale.
        """
        self._ensure_compiled()
        with self._lock:
            if policy is not None:
                self.policy = policy
            grouping = ConstraintGrouping(
                self.schema.class_names(),
                policy=self.policy,
                statistics=self.statistics,
            )
            grouping.assign_all(self._closed)
            self._grouping = grouping
        # The relevant set is grouping-independent but the per-retrieval
        # stats (groups touched, fetched) are not, so cached entries are
        # stale for reporting purposes.
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> RepositoryStats:
        """Summary statistics (precompiles on demand)."""
        self._ensure_compiled()
        intra = sum(1 for c in self._closed if c.is_intra_class)
        return RepositoryStats(
            declared=len(self._declared),
            closed=len(self._closed),
            derived=len(self._closure.derived) if self._closure else 0,
            intra_class=intra,
            inter_class=len(self._closed) - intra,
            distinct_predicates=len(self._store),
            closure_iterations=self._closure.iterations if self._closure else 0,
        )

    def group_sizes(self) -> Dict[str, int]:
        """Constraint count per object-class group."""
        return self.grouping().group_sizes()

    def __len__(self) -> int:
        return len(self.constraints())
