"""The constraint repository.

The repository is the precompilation-time home of all semantic constraints.
On :meth:`ConstraintRepository.precompile` it

1. validates constraints against the schema (every referenced
   ``class.attribute`` must exist),
2. materializes the transitive closure of the constraint set
   (:mod:`repro.constraints.closure`),
3. classifies each constraint intra-/inter-class (stored on the constraint),
4. groups the closed constraint set by object class
   (:mod:`repro.constraints.groups`).

At optimization time :meth:`retrieve_relevant` performs the paper's two-step
retrieval: fetch the groups attached to the classes in the query, then keep
only the constraints whose referenced classes all appear in the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..schema.schema import Schema
from ..schema.statistics import AccessStatistics
from .closure import ClosureResult, PredicateStore, compute_closure
from .groups import ConstraintGrouping, GroupingPolicy, RetrievalStats
from .horn_clause import ConstraintError, SemanticConstraint, unique_constraints
from .predicate import AttributeOperand, Predicate


@dataclass
class RepositoryStats:
    """Summary statistics about a precompiled repository."""

    declared: int
    closed: int
    derived: int
    intra_class: int
    inter_class: int
    distinct_predicates: int
    closure_iterations: int


class ConstraintRepository:
    """Stores, precompiles and retrieves semantic constraints.

    Parameters
    ----------
    schema:
        The database schema constraints are declared against.
    policy:
        The grouping policy used at precompilation.
    statistics:
        Access-frequency statistics driving the ``LEAST_FREQUENT`` policy;
        a fresh (empty) tracker is used when omitted.
    compute_transitive_closure:
        When ``True`` (the paper's design) the closure is materialized at
        precompilation; turning it off is only useful for ablation
        experiments that quantify what the closure buys.
    """

    def __init__(
        self,
        schema: Schema,
        policy: GroupingPolicy = GroupingPolicy.LEAST_FREQUENT,
        statistics: Optional[AccessStatistics] = None,
        compute_transitive_closure: bool = True,
    ) -> None:
        self.schema = schema
        self.policy = policy
        self.statistics = statistics or AccessStatistics()
        self.compute_transitive_closure = compute_transitive_closure
        self._declared: List[SemanticConstraint] = []
        self._closed: Tuple[SemanticConstraint, ...] = ()
        self._closure: Optional[ClosureResult] = None
        self._grouping: Optional[ConstraintGrouping] = None
        self._store = PredicateStore()
        self._dirty = True

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add(self, constraint: SemanticConstraint) -> None:
        """Declare a constraint (validated against the schema immediately)."""
        self._validate(constraint)
        if any(c.name == constraint.name for c in self._declared):
            raise ConstraintError(
                f"a constraint named {constraint.name!r} is already declared"
            )
        self._declared.append(constraint)
        self._dirty = True

    def add_all(self, constraints: Iterable[SemanticConstraint]) -> None:
        """Declare several constraints."""
        for constraint in constraints:
            self.add(constraint)

    def remove(self, name: str) -> None:
        """Remove a declared constraint by name.

        The paper notes constraint updates force closure recomputation; we
        simply mark the repository dirty so the next precompile rebuilds it.
        """
        before = len(self._declared)
        self._declared = [c for c in self._declared if c.name != name]
        if len(self._declared) == before:
            raise ConstraintError(f"no constraint named {name!r} is declared")
        self._dirty = True

    def declared(self) -> List[SemanticConstraint]:
        """The declared (pre-closure) constraints."""
        return list(self._declared)

    def _validate(self, constraint: SemanticConstraint) -> None:
        """Check every attribute reference in ``constraint`` against the schema."""
        for predicate in constraint.predicates():
            for operand in predicate.referenced_attributes():
                self._resolve_operand(operand)
        for class_name in constraint.anchor_classes:
            if not self.schema.has_class(class_name):
                raise ConstraintError(
                    f"constraint {constraint.name!r} anchors unknown class "
                    f"{class_name!r}"
                )

    def _resolve_operand(self, operand: AttributeOperand) -> None:
        if not self.schema.has_class(operand.class_name):
            raise ConstraintError(
                f"predicate references unknown class {operand.class_name!r}"
            )
        cls = self.schema.object_class(operand.class_name)
        if not cls.has_attribute(operand.attribute_name):
            raise ConstraintError(
                f"predicate references unknown attribute "
                f"{operand.qualified_name}"
            )

    # ------------------------------------------------------------------
    # Precompilation
    # ------------------------------------------------------------------
    def precompile(self) -> RepositoryStats:
        """Materialize the closure and (re)build the constraint grouping."""
        declared = unique_constraints(tuple(self._declared))
        if self.compute_transitive_closure:
            self._closure = compute_closure(declared, store=PredicateStore())
            self._closed = self._closure.constraints
            self._store = self._closure.store
        else:
            self._closure = None
            self._store = PredicateStore()
            interned = []
            for constraint in declared:
                interned.append(
                    SemanticConstraint.build(
                        name=constraint.name,
                        antecedents=self._store.intern_all(constraint.antecedents),
                        consequent=self._store.intern(constraint.consequent),
                        anchor_classes=constraint.anchor_classes,
                        origin=constraint.origin,
                        derived_from=constraint.derived_from,
                        description=constraint.description,
                    )
                )
            self._closed = tuple(interned)

        self._grouping = ConstraintGrouping(
            self.schema.class_names(),
            policy=self.policy,
            statistics=self.statistics,
        )
        self._grouping.assign_all(self._closed)
        self._dirty = False
        return self.stats()

    def _ensure_compiled(self) -> None:
        if self._dirty or self._grouping is None:
            self.precompile()

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def constraints(self) -> Tuple[SemanticConstraint, ...]:
        """The closed constraint set (precompiles on demand)."""
        self._ensure_compiled()
        return self._closed

    def grouping(self) -> ConstraintGrouping:
        """The current constraint grouping (precompiles on demand)."""
        self._ensure_compiled()
        assert self._grouping is not None
        return self._grouping

    def predicate_store(self) -> PredicateStore:
        """The shared predicate store (precompiles on demand)."""
        self._ensure_compiled()
        return self._store

    def intern(self, predicate: Predicate) -> Predicate:
        """Intern a predicate into the shared store."""
        self._ensure_compiled()
        return self._store.intern(predicate)

    def retrieve_relevant(
        self,
        query_classes: Iterable[str],
        query_relationships: Optional[Iterable[str]] = None,
        record_access: bool = True,
    ) -> Tuple[List[SemanticConstraint], RetrievalStats]:
        """Retrieve the constraints relevant to a query over ``query_classes``.

        Parameters
        ----------
        query_classes:
            Object classes referenced by the query.
        query_relationships:
            Relationships traversed by the query; inter-class constraints
            anchored on other relationships are filtered out.
        record_access:
            When ``True`` the access-frequency statistics are updated, which
            is what gradually steers the ``LEAST_FREQUENT`` grouping policy.
        """
        self._ensure_compiled()
        classes = list(query_classes)
        if record_access:
            self.statistics.record_query(classes)
        assert self._grouping is not None
        return self._grouping.retrieve_relevant(classes, query_relationships)

    def regroup(self, policy: Optional[GroupingPolicy] = None) -> None:
        """Rebuild the grouping (optionally switching policy).

        Called when access patterns have drifted enough that the
        least-frequently-accessed assignment is stale.
        """
        self._ensure_compiled()
        if policy is not None:
            self.policy = policy
        assert self._grouping is not None
        self._grouping = ConstraintGrouping(
            self.schema.class_names(),
            policy=self.policy,
            statistics=self.statistics,
        )
        self._grouping.assign_all(self._closed)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> RepositoryStats:
        """Summary statistics (precompiles on demand)."""
        self._ensure_compiled()
        intra = sum(1 for c in self._closed if c.is_intra_class)
        return RepositoryStats(
            declared=len(self._declared),
            closed=len(self._closed),
            derived=len(self._closure.derived) if self._closure else 0,
            intra_class=intra,
            inter_class=len(self._closed) - intra,
            distinct_predicates=len(self._store),
            closure_iterations=self._closure.iterations if self._closure else 0,
        )

    def group_sizes(self) -> Dict[str, int]:
        """Constraint count per object-class group."""
        return self.grouping().group_sizes()

    def __len__(self) -> int:
        return len(self.constraints())
