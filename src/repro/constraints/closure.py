"""Transitive-closure materialization of semantic constraints.

Section 3 of the paper: *"the transitive closures of the constraints are
materialized during precompilation.  This involves computing the closure of
existing predicates using domain knowledge, eg. if (A = a) --> (B > 20) and
(B > 10) --> (C = c) then deduce (A = a) --> (C = c)."*

Materializing the closure is what makes the simple relevance test ("all the
classes a constraint references appear in the query") correct: a chain of
constraints passing through a class *not* in the query is replaced by a
direct constraint that no longer mentions the intermediate class's
predicates... unless the antecedents themselves still mention it.  We follow
the paper's semi-naive fixpoint: repeatedly resolve a constraint whose
consequent implies an antecedent of another constraint, producing a new
constraint whose antecedents are the union of the first constraint's
antecedents and the remaining antecedents of the second.

The companion :class:`PredicateStore` implements the storage optimisation
the paper describes — predicates are extracted into one shared structure and
constraints only hold references — which in Python terms means interning
normalized predicates so equal predicates are a single shared object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .horn_clause import (
    ConstraintOrigin,
    SemanticConstraint,
    fresh_name,
    unique_constraints,
)
from .implication import implies
from .predicate import Predicate


class PredicateStore:
    """Interning store for predicates shared across constraints.

    The paper avoids the storage blow-up of materialized closures by
    "extracting all the predicates into a separate structure, and modifying
    the constraints to contain only pointers to relevant predicates in the
    structure".  :meth:`intern` returns a canonical instance per distinct
    normalized predicate so that constraints built through the store share
    predicate objects.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Tuple, Predicate] = {}

    def intern(self, predicate: Predicate) -> Predicate:
        """Return the canonical shared instance for ``predicate``."""
        normalized = predicate.normalized()
        key = normalized.key()
        return self._by_key.setdefault(key, normalized)

    def intern_all(self, predicates: Iterable[Predicate]) -> Tuple[Predicate, ...]:
        """Intern a collection of predicates preserving order."""
        return tuple(self.intern(p) for p in predicates)

    def __len__(self) -> int:
        return len(self._by_key)

    def predicates(self) -> List[Predicate]:
        """All distinct predicates currently interned."""
        return list(self._by_key.values())


@dataclass
class ClosureResult:
    """Outcome of closure computation.

    Attributes
    ----------
    constraints:
        The closed constraint set: the original constraints plus every
        derived constraint, duplicates removed.
    derived:
        Only the newly derived constraints.
    iterations:
        Number of fixpoint rounds performed.
    store:
        The predicate store used to intern all predicates.
    """

    constraints: Tuple[SemanticConstraint, ...]
    derived: Tuple[SemanticConstraint, ...]
    iterations: int
    store: PredicateStore = field(default_factory=PredicateStore)

    @property
    def original_count(self) -> int:
        """How many constraints were supplied by the user."""
        return len(self.constraints) - len(self.derived)


def _resolve(
    producer: SemanticConstraint,
    consumer: SemanticConstraint,
    matched_antecedent: Predicate,
    name: str,
    store: PredicateStore,
) -> Optional[SemanticConstraint]:
    """Chain ``producer`` into ``consumer`` through ``matched_antecedent``.

    Produces ``producer.antecedents ∧ (consumer.antecedents \\ {matched})
    -> consumer.consequent``.  Returns ``None`` when the result would be
    trivial (its consequent already among its antecedents).
    """
    remaining = tuple(
        p for p in consumer.antecedents if p.normalized() != matched_antecedent.normalized()
    )
    antecedents = store.intern_all(producer.antecedents + remaining)
    # Drop duplicate antecedents while preserving order.
    deduped: List[Predicate] = []
    seen: Set[Tuple] = set()
    for predicate in antecedents:
        key = predicate.key()
        if key not in seen:
            seen.add(key)
            deduped.append(predicate)
    consequent = store.intern(consumer.consequent)
    if any(p.normalized() == consequent.normalized() for p in deduped):
        return None
    anchors = producer.anchor_classes | consumer.anchor_classes
    anchor_relationships = (
        producer.anchor_relationships | consumer.anchor_relationships
    )
    return SemanticConstraint.build(
        name=name,
        antecedents=deduped,
        consequent=consequent,
        anchor_classes=anchors,
        anchor_relationships=anchor_relationships,
        origin=ConstraintOrigin.CLOSURE,
        derived_from=(producer.name, consumer.name),
        description=(
            f"derived by chaining {producer.name} into {consumer.name}"
        ),
    )


def compute_closure(
    constraints: Sequence[SemanticConstraint],
    max_iterations: int = 16,
    max_derived: int = 10_000,
    store: Optional[PredicateStore] = None,
) -> ClosureResult:
    """Materialize the transitive closure of ``constraints``.

    Parameters
    ----------
    constraints:
        The user-declared constraint set.
    max_iterations:
        Safety bound on fixpoint rounds; the closure of realistic constraint
        sets converges in a handful of rounds, but degenerate inputs (long
        implication chains) are cut off rather than allowed to run away.
    max_derived:
        Safety bound on the number of derived constraints.
    store:
        Optional predicate store to intern into (a fresh one is created when
        omitted).

    Returns
    -------
    ClosureResult
        The closed constraint set together with bookkeeping information.
    """
    store = store or PredicateStore()
    current: List[SemanticConstraint] = []
    signatures: Set[Tuple] = set()
    names: Set[str] = set()

    def admit(constraint: SemanticConstraint) -> bool:
        sig = constraint.signature()
        if sig in signatures:
            return False
        signatures.add(sig)
        names.add(constraint.name)
        current.append(constraint)
        return True

    for constraint in unique_constraints(tuple(constraints)):
        interned = SemanticConstraint.build(
            name=constraint.name,
            antecedents=store.intern_all(constraint.antecedents),
            consequent=store.intern(constraint.consequent),
            anchor_classes=constraint.anchor_classes,
            anchor_relationships=constraint.anchor_relationships,
            origin=constraint.origin,
            derived_from=constraint.derived_from,
            description=constraint.description,
        )
        admit(interned)

    derived: List[SemanticConstraint] = []
    frontier = list(current)
    iterations = 0
    while frontier and iterations < max_iterations:
        iterations += 1
        new_constraints: List[SemanticConstraint] = []
        for producer in frontier:
            for consumer in list(current):
                if producer.name == consumer.name:
                    continue
                for antecedent in consumer.antecedents:
                    if not implies(producer.consequent, antecedent):
                        continue
                    name = fresh_name("cc", names)
                    candidate = _resolve(
                        producer, consumer, antecedent, name, store
                    )
                    if candidate is None:
                        continue
                    if admit(candidate):
                        new_constraints.append(candidate)
                        derived.append(candidate)
                        if len(derived) >= max_derived:
                            return ClosureResult(
                                constraints=tuple(current),
                                derived=tuple(derived),
                                iterations=iterations,
                                store=store,
                            )
        frontier = new_constraints

    return ClosureResult(
        constraints=tuple(current),
        derived=tuple(derived),
        iterations=iterations,
        store=store,
    )


def closure_reaches(
    result: ClosureResult, premise: Predicate, conclusion: Predicate
) -> bool:
    """Whether the closed constraint set contains a rule ``premise -> conclusion``.

    A convenience used by tests: checks for a constraint whose single
    antecedent is implied by ``premise`` and whose consequent implies
    ``conclusion``.
    """
    for constraint in result.constraints:
        if len(constraint.antecedents) != 1:
            continue
        if implies(premise, constraint.antecedents[0]) and implies(
            constraint.consequent, conclusion
        ):
            return True
    return False
