"""Predicates over object-class attributes.

A predicate is an atomic comparison of the form ``class.attribute <op>
operand`` where the operand is either a constant (a *selective predicate*
such as ``vehicle.desc = "refrigerated truck"``) or another attribute
reference (a *join predicate* or an inter-class comparison such as
``greaterThanOrEqualTo(driver.licenseClass, vehicle.class)``).

Predicates are the shared currency of the whole system: queries contain them,
semantic constraints are built from them, the transformation table of the
optimizer is keyed by them, and the execution engine evaluates them against
object instances.  They are therefore immutable and hashable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Tuple, Union


class ComparisonOperator(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def symbol(self) -> str:
        """The textual symbol used when rendering the predicate."""
        return self.value

    def flipped(self) -> "ComparisonOperator":
        """The operator obtained by swapping the two operands."""
        flips = {
            ComparisonOperator.EQ: ComparisonOperator.EQ,
            ComparisonOperator.NE: ComparisonOperator.NE,
            ComparisonOperator.LT: ComparisonOperator.GT,
            ComparisonOperator.LE: ComparisonOperator.GE,
            ComparisonOperator.GT: ComparisonOperator.LT,
            ComparisonOperator.GE: ComparisonOperator.LE,
        }
        return flips[self]

    def negated(self) -> "ComparisonOperator":
        """The logical negation of this operator."""
        negations = {
            ComparisonOperator.EQ: ComparisonOperator.NE,
            ComparisonOperator.NE: ComparisonOperator.EQ,
            ComparisonOperator.LT: ComparisonOperator.GE,
            ComparisonOperator.LE: ComparisonOperator.GT,
            ComparisonOperator.GT: ComparisonOperator.LE,
            ComparisonOperator.GE: ComparisonOperator.LT,
        }
        return negations[self]

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate ``left <op> right``.

        Comparing values of incompatible types (e.g. a string against an
        integer with ``<``) returns ``False`` rather than raising, mirroring
        the permissive behaviour of a query engine evaluating a predicate on
        dirty data.
        """
        try:
            if self is ComparisonOperator.EQ:
                return bool(left == right)
            if self is ComparisonOperator.NE:
                return bool(left != right)
            if self is ComparisonOperator.LT:
                return bool(left < right)
            if self is ComparisonOperator.LE:
                return bool(left <= right)
            if self is ComparisonOperator.GT:
                return bool(left > right)
            return bool(left >= right)
        except TypeError:
            return False


# Parsing helpers for the textual operator aliases used in the paper
# ("equal", "greaterThanOrEqualTo", ...).
OPERATOR_ALIASES: Mapping[str, ComparisonOperator] = {
    "=": ComparisonOperator.EQ,
    "==": ComparisonOperator.EQ,
    "equal": ComparisonOperator.EQ,
    "eq": ComparisonOperator.EQ,
    "!=": ComparisonOperator.NE,
    "<>": ComparisonOperator.NE,
    "notEqual": ComparisonOperator.NE,
    "ne": ComparisonOperator.NE,
    "<": ComparisonOperator.LT,
    "lessThan": ComparisonOperator.LT,
    "lt": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    "lessThanOrEqualTo": ComparisonOperator.LE,
    "le": ComparisonOperator.LE,
    ">": ComparisonOperator.GT,
    "greaterThan": ComparisonOperator.GT,
    "gt": ComparisonOperator.GT,
    ">=": ComparisonOperator.GE,
    "greaterThanOrEqualTo": ComparisonOperator.GE,
    "ge": ComparisonOperator.GE,
}


def parse_operator(token: str) -> ComparisonOperator:
    """Resolve a textual operator alias to a :class:`ComparisonOperator`."""
    try:
        return OPERATOR_ALIASES[token]
    except KeyError:
        raise ValueError(f"unknown comparison operator {token!r}") from None


@dataclass(frozen=True, order=True)
class AttributeOperand:
    """An operand referring to ``class_name.attribute_name``."""

    class_name: str
    attribute_name: str

    @property
    def qualified_name(self) -> str:
        """``class.attribute`` notation."""
        return f"{self.class_name}.{self.attribute_name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified_name


Constant = Union[str, int, float, bool]
Operand = Union[AttributeOperand, Constant]


def attribute_operand(qualified_name: str) -> AttributeOperand:
    """Build an :class:`AttributeOperand` from ``class.attribute`` notation."""
    if "." not in qualified_name:
        raise ValueError(
            f"expected 'class.attribute' notation, got {qualified_name!r}"
        )
    class_name, attribute_name = qualified_name.split(".", 1)
    if not class_name or not attribute_name:
        raise ValueError(f"malformed attribute reference {qualified_name!r}")
    return AttributeOperand(class_name, attribute_name)


def _render_operand(operand: Operand) -> str:
    if isinstance(operand, AttributeOperand):
        return operand.qualified_name
    if isinstance(operand, str):
        return f'"{operand}"'
    return repr(operand)


@dataclass(frozen=True)
class Predicate:
    """An atomic comparison predicate.

    Parameters
    ----------
    left:
        The left operand, always an attribute reference.
    operator:
        The comparison operator.
    right:
        The right operand: either a constant or another attribute reference.
    """

    left: AttributeOperand
    operator: ComparisonOperator
    right: Operand

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def selection(
        qualified_attribute: str, operator: Union[str, ComparisonOperator], value: Constant
    ) -> "Predicate":
        """Build a selective predicate ``class.attr <op> constant``."""
        op = operator if isinstance(operator, ComparisonOperator) else parse_operator(operator)
        return Predicate(attribute_operand(qualified_attribute), op, value)

    @staticmethod
    def comparison(
        left_attribute: str,
        operator: Union[str, ComparisonOperator],
        right_attribute: str,
    ) -> "Predicate":
        """Build an attribute-to-attribute predicate (join or inter-class)."""
        op = operator if isinstance(operator, ComparisonOperator) else parse_operator(operator)
        return Predicate(
            attribute_operand(left_attribute), op, attribute_operand(right_attribute)
        )

    @staticmethod
    def equals(qualified_attribute: str, value: Constant) -> "Predicate":
        """Shorthand for an equality selective predicate."""
        return Predicate.selection(qualified_attribute, ComparisonOperator.EQ, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_join(self) -> bool:
        """Whether both operands are attribute references on *different* classes."""
        return (
            isinstance(self.right, AttributeOperand)
            and self.right.class_name != self.left.class_name
        )

    @property
    def is_selection(self) -> bool:
        """Whether the right operand is a constant."""
        return not isinstance(self.right, AttributeOperand)

    @property
    def constant(self) -> Optional[Constant]:
        """The constant operand of a selective predicate, else ``None``."""
        if isinstance(self.right, AttributeOperand):
            return None
        return self.right

    def referenced_classes(self) -> FrozenSet[str]:
        """The set of object-class names this predicate mentions."""
        classes = {self.left.class_name}
        if isinstance(self.right, AttributeOperand):
            classes.add(self.right.class_name)
        return frozenset(classes)

    def referenced_attributes(self) -> Tuple[AttributeOperand, ...]:
        """All attribute operands appearing in this predicate."""
        if isinstance(self.right, AttributeOperand):
            return (self.left, self.right)
        return (self.left,)

    def references_class(self, class_name: str) -> bool:
        """Whether this predicate mentions ``class_name``."""
        return class_name in self.referenced_classes()

    def references_attribute(self, qualified_name: str) -> bool:
        """Whether this predicate mentions the attribute ``class.attr``."""
        return any(
            op.qualified_name == qualified_name
            for op in self.referenced_attributes()
        )

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def normalized(self) -> "Predicate":
        """A canonical orientation of the predicate.

        Attribute-to-attribute predicates are oriented so that the
        lexicographically smaller attribute appears on the left; selective
        predicates are returned unchanged.  Two predicates that express the
        same comparison therefore normalize to equal objects, which is what
        the transformation table keys on.
        """
        if not isinstance(self.right, AttributeOperand):
            return self
        if self.left <= self.right:
            return self
        return Predicate(self.right, self.operator.flipped(), self.left)

    def negated(self) -> "Predicate":
        """The logical negation of the predicate."""
        return Predicate(self.left, self.operator.negated(), self.right)

    def substitute_class(self, old: str, new: str) -> "Predicate":
        """Return a copy with references to class ``old`` renamed to ``new``."""
        left = self.left
        if left.class_name == old:
            left = AttributeOperand(new, left.attribute_name)
        right = self.right
        if isinstance(right, AttributeOperand) and right.class_name == old:
            right = AttributeOperand(new, right.attribute_name)
        return Predicate(left, self.operator, right)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, binding: Mapping[str, Mapping[str, Any]]) -> bool:
        """Evaluate the predicate against a binding of classes to instances.

        ``binding`` maps each class name to a mapping of attribute name to
        value (e.g. an :class:`~repro.engine.instance.ObjectInstance`'s
        ``values``).  Missing classes or attributes evaluate to ``False``.
        """
        left_values = binding.get(self.left.class_name)
        if left_values is None or self.left.attribute_name not in left_values:
            return False
        left_value = left_values[self.left.attribute_name]

        if isinstance(self.right, AttributeOperand):
            right_values = binding.get(self.right.class_name)
            if (
                right_values is None
                or self.right.attribute_name not in right_values
            ):
                return False
            right_value = right_values[self.right.attribute_name]
        else:
            right_value = self.right
        return self.operator.apply(left_value, right_value)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return (
            f"{self.left.qualified_name} {self.operator.symbol} "
            f"{_render_operand(self.right)}"
        )

    def key(self) -> Tuple:
        """A hashable identity key for the normalized predicate."""
        norm = self.normalized()
        right = norm.right
        if isinstance(right, AttributeOperand):
            right_key: Tuple = ("attr", right.class_name, right.attribute_name)
        else:
            right_key = ("const", type(right).__name__, right)
        return (
            norm.left.class_name,
            norm.left.attribute_name,
            norm.operator.value,
            right_key,
        )
