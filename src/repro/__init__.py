"""repro — reproduction of "An Efficient Semantic Query Optimization Algorithm".

Pang, Lu and Ooi (ICDE 1991) describe a polynomial-time semantic query
optimizer for an object-oriented database: all possible semantic
transformations are applied *tentatively* by re-classifying predicates
(imperative / optional / redundant) in a transformation table, and the
beneficial ones are selected only at the end, when the transformed query is
formulated.  This package contains a complete implementation of that
algorithm plus every substrate it needs — schema, constraints, queries, an
in-memory OODB execution engine, synthetic data generation and the
experiment harness that regenerates the paper's tables and figures.

Quickstart
----------
>>> from repro import (
...     SemanticQueryOptimizer, ConstraintRepository,
...     build_example_schema, build_example_constraints, parse_query,
... )
>>> schema = build_example_schema()
>>> repository = ConstraintRepository(schema)
>>> repository.add_all(build_example_constraints())
>>> optimizer = SemanticQueryOptimizer(schema, repository=repository)
>>> query = parse_query(
...     '(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} { } '
...     '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
...     '{collects, supplies} {supplier, cargo, vehicle})'
... )
>>> result = optimizer.optimize(query)
>>> sorted(result.eliminated_classes)
['supplier']
"""

from .schema import (
    AccessStatistics,
    Attribute,
    AttributeKind,
    DomainType,
    ObjectClass,
    Relationship,
    Schema,
    SchemaError,
    SchemaPath,
    build_core_example_schema,
    build_example_schema,
    enumerate_paths,
    pointer_attribute,
    value_attribute,
)
from .constraints import (
    ComparisonOperator,
    ConstraintClass,
    ConstraintError,
    ConstraintOrigin,
    ConstraintRepository,
    GroupingPolicy,
    Predicate,
    SemanticConstraint,
    build_example_constraints,
    compute_closure,
    derive_rules,
    implies,
    validate_database,
)
from .query import (
    Query,
    QueryError,
    QueryGenerator,
    answers_match,
    format_query,
    parse_predicate,
    parse_query,
    structurally_equal,
)
from .engine import (
    ConventionalPlanner,
    CostModel,
    CostWeights,
    DatabaseStatistics,
    ExecutionMetrics,
    ExecutionMode,
    ExecutionResult,
    ObjectInstance,
    ObjectStore,
    QueryExecutor,
    VectorizedExecutor,
    create_executor,
)
from .core import (
    CellTag,
    OptimizationResult,
    OptimizerConfig,
    PredicateTag,
    SemanticQueryOptimizer,
    StraightforwardOptimizer,
    TransformationKind,
    TransformationTable,
)
from .data import (
    TABLE_4_1_SPECS,
    DatabaseGenerator,
    DatabaseSpec,
    EvaluationSetup,
    build_evaluation_constraints,
    build_evaluation_schema,
    build_evaluation_setup,
)
from .service import (
    BatchResult,
    BatchStats,
    ExecutionEnvelope,
    OptimizationService,
    ResultSource,
    ServiceCacheSnapshot,
    ServiceResult,
)

__version__ = "1.0.0"

__all__ = [
    "AccessStatistics",
    "Attribute",
    "AttributeKind",
    "BatchResult",
    "BatchStats",
    "CellTag",
    "ComparisonOperator",
    "ConstraintClass",
    "ConstraintError",
    "ConstraintOrigin",
    "ConstraintRepository",
    "ConventionalPlanner",
    "CostModel",
    "CostWeights",
    "DatabaseGenerator",
    "DatabaseSpec",
    "DatabaseStatistics",
    "DomainType",
    "EvaluationSetup",
    "ExecutionEnvelope",
    "ExecutionMetrics",
    "ExecutionMode",
    "ExecutionResult",
    "GroupingPolicy",
    "ObjectClass",
    "ObjectInstance",
    "ObjectStore",
    "OptimizationResult",
    "OptimizationService",
    "OptimizerConfig",
    "Predicate",
    "PredicateTag",
    "Query",
    "QueryError",
    "QueryExecutor",
    "QueryGenerator",
    "Relationship",
    "ResultSource",
    "Schema",
    "SchemaError",
    "SchemaPath",
    "SemanticConstraint",
    "SemanticQueryOptimizer",
    "ServiceCacheSnapshot",
    "ServiceResult",
    "StraightforwardOptimizer",
    "TABLE_4_1_SPECS",
    "TransformationKind",
    "TransformationTable",
    "VectorizedExecutor",
    "answers_match",
    "build_core_example_schema",
    "build_evaluation_constraints",
    "build_evaluation_schema",
    "build_evaluation_setup",
    "build_example_constraints",
    "build_example_schema",
    "compute_closure",
    "create_executor",
    "derive_rules",
    "enumerate_paths",
    "format_query",
    "implies",
    "parse_predicate",
    "parse_query",
    "pointer_attribute",
    "structurally_equal",
    "validate_database",
    "value_attribute",
    "__version__",
]
