"""Result envelopes returned by the optimization service.

The service wraps every :class:`~repro.core.optimizer.OptimizationResult`
in a :class:`ServiceResult` that additionally records where the result came
from (computed fresh, served from the result cache, or deduplicated within
a batch) and how long the service spent on the call.  Batch calls return a
:class:`BatchResult` aligning one envelope with each input query plus
aggregate statistics, so experiments and the CLI report timings and cache
behaviour uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from ..caching import SingleFlightStats
from ..core.optimizer import OptimizationResult, PhaseTimings
from ..core.trace import OptimizationTrace
from ..query.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.executor import ExecutionMetrics, ExecutionResult, ShardReport


class ResultSource(enum.Enum):
    """Where a :class:`ServiceResult` came from."""

    #: The full four-phase pipeline ran for this query.
    COMPUTED = "computed"
    #: Served from the service's keyed result cache (no pipeline work).
    RESULT_CACHE = "result_cache"
    #: Shared the result of a structurally-equal query in the same batch.
    BATCH_DEDUP = "batch_dedup"
    #: Waited on a structurally-equal query already in flight (single-flight).
    SINGLE_FLIGHT = "single_flight"


@dataclass(frozen=True)
class ServiceCacheSnapshot:
    """Point-in-time counters of the service's caches.

    ``result_*`` counts lookups in the service-level optimization-result
    cache; ``retrieval_*`` and ``closure_*`` mirror the repository's
    :class:`~repro.constraints.repository.RepositoryCacheStats`.
    """

    result_hits: int = 0
    result_misses: int = 0
    result_entries: int = 0
    result_evictions: int = 0
    result_maxsize: int = 0
    retrieval_hits: int = 0
    retrieval_misses: int = 0
    closure_hits: int = 0
    closure_misses: int = 0

    @property
    def result_lookups(self) -> int:
        """Total result-cache lookups."""
        return self.result_hits + self.result_misses

    @property
    def result_hit_rate(self) -> float:
        """Fraction of result lookups served from cache (0.0 if none)."""
        lookups = self.result_lookups
        return self.result_hits / lookups if lookups else 0.0

    def describe(self) -> str:
        """One-line human-readable cache summary."""
        return (
            f"result cache {self.result_hits}/{self.result_lookups} hits, "
            f"retrieval cache {self.retrieval_hits}/"
            f"{self.retrieval_hits + self.retrieval_misses} hits, "
            f"closure cache {self.closure_hits}/"
            f"{self.closure_hits + self.closure_misses} hits"
        )


@dataclass(frozen=True)
class ServiceStats:
    """One immutable, internally consistent view of the whole service.

    Returned by :meth:`~repro.service.OptimizationService.stats` and
    serialized verbatim by the gateway's ``stats`` RPC.  Every constituent
    counter group is read atomically under its own lock (the result cache,
    the repository caches, the single-flight map), so a snapshot taken
    under full concurrent load never shows torn counters — e.g. a hit
    without its lookup, or a follower without its leader.
    """

    #: Result/retrieval/closure cache counters.
    cache: ServiceCacheSnapshot = field(default_factory=ServiceCacheSnapshot)
    #: In-flight deduplication counters (leaders, followers, in flight).
    single_flight: SingleFlightStats = field(default_factory=SingleFlightStats)
    #: Repository generation the counters were read at (bumped by every
    #: constraint add/remove; cache keys embed it).
    repository_generation: int = 0
    #: Number of declared (pre-closure) constraints.
    repository_constraints: int = 0
    #: ``mode/join_strategy`` labels of the warm cached executors.
    executors: Tuple[str, ...] = ()
    #: Whether an object store is attached (``execute`` is available).
    store_attached: bool = False
    #: The attached store's mutation counter (0 without a store).
    store_version: int = 0
    #: Writes applied through the service's mutation path since startup.
    mutations_applied: int = 0
    #: Durability-layer counters when a WAL is attached (``None``
    #: otherwise): data dir, fsync policy, WAL frame/commit/fsync
    #: counts and the snapshot base version.
    durability: Optional[Dict[str, Any]] = None
    #: Self-tuning counters when the feedback loop is on (``None``
    #: otherwise): tuning generation, calibration reservoir/fit state,
    #: index-advisor heat and managed indexes, rule-payoff evidence and
    #: the demoted-rule set.
    tuning: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the payload of the ``stats`` RPC)."""
        payload = {
            "cache": {
                "result_hits": self.cache.result_hits,
                "result_misses": self.cache.result_misses,
                "result_entries": self.cache.result_entries,
                "result_evictions": self.cache.result_evictions,
                "result_maxsize": self.cache.result_maxsize,
                "result_hit_rate": self.cache.result_hit_rate,
                "retrieval_hits": self.cache.retrieval_hits,
                "retrieval_misses": self.cache.retrieval_misses,
                "closure_hits": self.cache.closure_hits,
                "closure_misses": self.cache.closure_misses,
            },
            "single_flight": {
                "leaders": self.single_flight.leaders,
                "followers": self.single_flight.followers,
                "in_flight": self.single_flight.in_flight,
                "dedup_rate": self.single_flight.dedup_rate,
            },
            "repository": {
                "generation": self.repository_generation,
                "constraints": self.repository_constraints,
            },
            "executors": list(self.executors),
            "store_attached": self.store_attached,
            "store_version": self.store_version,
            "mutations_applied": self.mutations_applied,
        }
        if self.durability is not None:
            payload["durability"] = dict(self.durability)
        if self.tuning is not None:
            payload["tuning"] = dict(self.tuning)
        return payload


@dataclass
class ServiceResult:
    """One optimized query as returned by the service.

    Cache-hit and batch-dedup envelopes share the producing run's
    ``OptimizationResult`` internals (trace, predicate tags, lists) rather
    than deep-copying them; treat the result as read-only, since mutating
    it would corrupt every future hit for the same structural key.
    """

    query: Query
    result: OptimizationResult
    source: ResultSource = ResultSource.COMPUTED
    service_time: float = 0.0

    @property
    def cache_hit(self) -> bool:
        """Whether the pipeline was skipped for this query."""
        return self.source is not ResultSource.COMPUTED

    @property
    def optimized(self) -> Query:
        """The transformed query."""
        return self.result.optimized

    @property
    def timings(self) -> PhaseTimings:
        """Per-phase timings of the (possibly cached) underlying run."""
        return self.result.timings

    @property
    def trace(self) -> OptimizationTrace:
        """The optimization trace of the underlying run."""
        return self.result.trace

    def summary(self) -> str:
        """One-line summary including the result's provenance."""
        return f"[{self.source.value}] {self.result.summary()}"


@dataclass
class ExecutionEnvelope:
    """An optimized *and executed* query, as returned by service execution.

    Bundles the optimization envelope (``None`` when the caller asked for
    raw execution of the query as written) with the execution result of the
    chosen engine, so a server handler gets answer rows, cost counters,
    provenance and timings from one call.

    >>> from repro.constraints import ConstraintRepository, build_example_constraints
    >>> from repro.data import DatabaseGenerator, DatabaseSpec
    >>> from repro.query import parse_query
    >>> from repro.schema import build_example_schema
    >>> from repro.service import OptimizationService
    >>> schema = build_example_schema()
    >>> constraints = build_example_constraints()
    >>> repository = ConstraintRepository(schema)
    >>> repository.add_all(constraints)
    >>> database = DatabaseGenerator(schema, constraints, seed=7).generate(
    ...     DatabaseSpec("demo", class_cardinality=20, relationship_cardinality=30))
    >>> service = OptimizationService(
    ...     schema, repository=repository, store=database.store)
    >>> envelope = service.execute(parse_query(
    ...     '(SELECT {cargo.desc} { } {vehicle.desc = "refrigerated truck"} '
    ...     '{collects} {cargo, vehicle})'), execution_mode="rowwise")
    >>> envelope.execution_mode
    'rowwise'
    >>> envelope.optimization.source.value
    'computed'
    >>> envelope.rows == envelope.execution.rows
    True
    """

    query: Query
    execution: "ExecutionResult"
    execution_mode: str
    execute_time: float = 0.0
    optimization: Optional[ServiceResult] = None

    @property
    def executed_query(self) -> Query:
        """The query that was actually executed (optimized when available)."""
        if self.optimization is not None:
            return self.optimization.optimized
        return self.query

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The answer rows."""
        return self.execution.rows

    @property
    def metrics(self) -> "ExecutionMetrics":
        """The engine's primitive-operation counters."""
        return self.execution.metrics

    @property
    def shard_reports(self) -> Optional[List["ShardReport"]]:
        """Per-shard accounting when the parallel engine fanned out."""
        return self.execution.shard_reports

    @property
    def shard_timings(self) -> Optional[Dict[int, float]]:
        """Per-shard worker wall-clock seconds (``None`` unless fanned out).

        The spread across shards shows partition skew; the maximum is the
        pool-side critical path of this execution.
        """
        reports = self.execution.shard_reports
        if reports is None:
            return None
        return {report.shard_id: report.elapsed for report in reports}

    def summary(self) -> str:
        """One-line human-readable execution summary."""
        prefix = (
            f"[{self.optimization.source.value}] "
            if self.optimization is not None
            else "[unoptimized] "
        )
        reports = self.execution.shard_reports
        shards = f" across {len(reports)} shards" if reports else ""
        return (
            f"{prefix}{self.execution.row_count} rows via "
            f"{self.execution_mode} engine{shards} in "
            f"{self.execute_time * 1000:.2f} ms"
        )


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one service-level write (single mutation or batch).

    Returned by :meth:`~repro.service.OptimizationService.mutate` /
    :meth:`~repro.service.OptimizationService.mutate_many` and serialized
    by the gateway's mutation RPCs.  Beyond the write itself it reports the
    *invalidation footprint*: which shards were touched (only their version
    counters moved), whether any dynamic rules were re-derived, and the
    repository generation afterwards — the numbers a client needs to
    reason about cache effects of its write.
    """

    #: The requested operation (``insert``/``update``/``delete``/
    #: ``insert_many``/``batch``).
    op: str
    #: Classes the write touched.
    classes: Tuple[str, ...] = ()
    #: OIDs written, in application order (new OIDs for inserts).
    oids: Tuple[int, ...] = ()
    #: Number of individual mutations applied.
    applied: int = 0
    #: Shards whose version counter moved.
    shards: Tuple[int, ...] = ()
    #: Global store version after the write.
    store_version: int = 0
    #: Per-shard version counters after the write.
    shard_versions: Tuple[int, ...] = ()
    #: Dynamic-rule classes re-derived because this write touched them.
    rules_refreshed: int = 0
    #: Whether the re-derivation actually changed the declared rule set
    #: (``False`` means every optimization cache stayed warm).
    rules_changed: bool = False
    #: Repository generation after the write.
    generation: int = 0
    #: Wall-clock seconds spent applying the write (rule refresh included).
    mutate_time: float = 0.0
    #: Durability metadata when the service runs with a WAL (``None``
    #: otherwise): whether this batch's frames were fsynced, how many
    #: commits still ride on the next group fsync, the WAL frame count
    #: and the snapshot base version.
    durability: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the payload of the mutation RPCs)."""
        payload = {
            "op": self.op,
            "classes": list(self.classes),
            "oids": list(self.oids),
            "applied": self.applied,
            "shards": list(self.shards),
            "store_version": self.store_version,
            "shard_versions": list(self.shard_versions),
            "rules_refreshed": self.rules_refreshed,
            "rules_changed": self.rules_changed,
            "generation": self.generation,
            "mutate_time": self.mutate_time,
        }
        if self.durability is not None:
            payload["durability"] = dict(self.durability)
        return payload

    def summary(self) -> str:
        """One-line human-readable mutation summary."""
        return (
            f"{self.op}: {self.applied} write(s) on "
            f"{', '.join(self.classes) or '-'} touching shard(s) "
            f"{list(self.shards)} in {self.mutate_time * 1000:.2f} ms "
            f"(rules {'changed' if self.rules_changed else 'unchanged'})"
        )


@dataclass
class ExecutionBatchStats:
    """Aggregate statistics of one :meth:`execute_many` call."""

    total: int = 0
    wall_time: float = 0.0
    optimize_time: float = 0.0
    execute_time: float = 0.0
    workers: int = 1
    execution_mode: str = ""

    @property
    def throughput(self) -> float:
        """Executed queries per second over the batch (0.0 when empty)."""
        return self.total / self.wall_time if self.wall_time > 0 else 0.0


@dataclass
class ExecutionBatchResult:
    """Execution envelopes for a whole batch, aligned with the input order."""

    results: List[ExecutionEnvelope] = field(default_factory=list)
    stats: ExecutionBatchStats = field(default_factory=ExecutionBatchStats)

    def total_rows(self) -> int:
        """Total answer rows across the batch."""
        return sum(envelope.execution.row_count for envelope in self.results)

    def summary(self) -> str:
        """One-line human-readable batch summary."""
        return (
            f"{self.stats.total} queries executed via "
            f"{self.stats.execution_mode} engine in "
            f"{self.stats.wall_time * 1000:.2f} ms "
            f"({self.stats.throughput:.0f} q/s, {self.total_rows()} rows)"
        )

    def __iter__(self) -> Iterator[ExecutionEnvelope]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> ExecutionEnvelope:
        return self.results[index]


@dataclass
class BatchStats:
    """Aggregate statistics of one :meth:`optimize_many` call."""

    total: int = 0
    unique: int = 0
    computed: int = 0
    result_cache_hits: int = 0
    wall_time: float = 0.0
    workers: int = 1

    @property
    def duplicates(self) -> int:
        """Queries answered by batch-level deduplication."""
        return self.total - self.unique

    @property
    def mean_time(self) -> float:
        """Mean wall-clock time per query in the batch."""
        return self.wall_time / self.total if self.total else 0.0

    @property
    def throughput(self) -> float:
        """Queries per second over the batch (0.0 for an empty batch)."""
        return self.total / self.wall_time if self.wall_time > 0 else 0.0


@dataclass
class BatchResult:
    """Envelopes for a whole batch, aligned with the input query order."""

    results: List[ServiceResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)
    cache: ServiceCacheSnapshot = field(default_factory=ServiceCacheSnapshot)

    def optimized_queries(self) -> List[Query]:
        """The transformed queries, one per input query."""
        return [envelope.optimized for envelope in self.results]

    def phase_totals(self) -> PhaseTimings:
        """Summed per-phase timings over the batch's *computed* results.

        Cached and deduplicated envelopes re-expose the timings of the run
        that produced them, so only freshly computed results are summed.
        """
        totals = PhaseTimings()
        for envelope in self.results:
            if envelope.source is not ResultSource.COMPUTED:
                continue
            totals.retrieval += envelope.timings.retrieval
            totals.initialization += envelope.timings.initialization
            totals.transformation += envelope.timings.transformation
            totals.formulation += envelope.timings.formulation
        return totals

    def sources(self) -> Dict[str, int]:
        """Histogram of result provenance over the batch."""
        counts: Dict[str, int] = {}
        for envelope in self.results:
            counts[envelope.source.value] = counts.get(envelope.source.value, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable batch summary."""
        return (
            f"{self.stats.total} queries ({self.stats.unique} unique) in "
            f"{self.stats.wall_time * 1000:.2f} ms "
            f"({self.stats.throughput:.0f} q/s) — {self.cache.describe()}"
        )

    def __iter__(self) -> Iterator[ServiceResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> ServiceResult:
        return self.results[index]
