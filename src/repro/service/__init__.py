"""Service layer: cached, batched access to the semantic query optimizer.

This package is the high-throughput entry point to the optimizer.  Where
:class:`~repro.core.optimizer.SemanticQueryOptimizer` optimizes one query
at a time from scratch, :class:`OptimizationService` shares one precompiled
constraint repository across calls, caches optimization results keyed on
structural query identity, deduplicates batches, and optionally fans work
out over a thread pool — the precompilation argument of the paper ("the
transitive closures of the constraints are materialized during
precompilation") carried one level further up the stack.
"""

from .envelope import (
    BatchResult,
    BatchStats,
    ExecutionBatchResult,
    ExecutionBatchStats,
    ExecutionEnvelope,
    MutationResult,
    ResultSource,
    ServiceCacheSnapshot,
    ServiceResult,
    ServiceStats,
)
from .service import OptimizationService

__all__ = [
    "BatchResult",
    "BatchStats",
    "ExecutionBatchResult",
    "ExecutionBatchStats",
    "ExecutionEnvelope",
    "MutationResult",
    "OptimizationService",
    "ResultSource",
    "ServiceCacheSnapshot",
    "ServiceResult",
    "ServiceStats",
]
