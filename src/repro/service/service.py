"""A cached, batched facade over the semantic query optimizer.

:class:`OptimizationService` is the layer a server (or an experiment
harness) talks to when the same optimizer is shared by many requests.  On
top of :class:`~repro.core.optimizer.SemanticQueryOptimizer` it adds

* a keyed, size-bounded **result cache**: structurally-equal queries
  optimized against the same repository generation return the already
  computed result without running any pipeline phase (the repository's own
  retrieval/closure caches make the cold path cheaper too);
* a **batch API**, :meth:`OptimizationService.optimize_many`, that
  deduplicates structurally-equal queries, shares one precompiled
  repository snapshot across the batch, and can fan the unique queries out
  over a thread pool;
* a uniform **result envelope** carrying per-phase timings, provenance and
  cache statistics (:mod:`repro.service.envelope`).

The service is safe to call from multiple threads: the result cache is
lock-protected, the repository's caches take their own lock, and each
pipeline run only mutates objects local to that run.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..caching import LruCache, ReadWriteLock, SingleFlightMap
from ..constraints.dynamic import DerivationConfig, DynamicRuleDeriver
from ..constraints.horn_clause import ConstraintOrigin, SemanticConstraint
from ..constraints.repository import ConstraintRepository, RepositoryCacheStats
from ..core.optimizer import OptimizerConfig, SemanticQueryOptimizer
from ..query.equivalence import equivalence_key
from ..query.query import Query
from ..schema.schema import Schema
from .envelope import (
    BatchResult,
    BatchStats,
    ExecutionBatchResult,
    ExecutionBatchStats,
    ExecutionEnvelope,
    MutationResult,
    ResultSource,
    ServiceCacheSnapshot,
    ServiceResult,
    ServiceStats,
)

try:  # pragma: no cover - engine is always available in-tree
    from ..engine.cost_model import CostModel
except Exception:  # pragma: no cover
    CostModel = None  # type: ignore[assignment]


class OptimizationService:
    """Shared, cached access to one :class:`SemanticQueryOptimizer`.

    Parameters
    ----------
    schema, repository, constraints, cost_model, config:
        Forwarded to the wrapped :class:`SemanticQueryOptimizer`.
    result_cache_size:
        Maximum number of optimization results kept (LRU, keyed by the
        query's structural identity and the repository generation).  ``0``
        disables result caching.
    max_workers:
        Default thread-pool width for :meth:`optimize_many`; ``None`` (or
        ``1``) optimizes batches sequentially.
    store:
        An optional :class:`~repro.engine.storage.ObjectStore` to execute
        optimized queries against (see :meth:`execute`); without one the
        service only optimizes.
    execution_mode:
        Default engine for :meth:`execute` — an
        :class:`~repro.engine.modes.ExecutionMode` or its name
        (``"rowwise"`` / ``"vectorized"`` / ``"parallel"``).  ``None`` uses
        the process default (``REPRO_ENGINE`` env var, else rowwise).
    engine_workers:
        Default worker-pool width for the parallel engine (``None`` =
        ``REPRO_WORKERS`` env var, else the core count capped at 4).  This
        is the *process pool inside one execution*; ``max_workers`` above
        is the thread fan-out across queries of a batch.
    engine_min_partition_rows:
        Driver-set size below which the parallel engine stays in-process
        (``None`` = the engine default).  Tests and benchmarks lower it to
        force fan-out on small stores.

    Examples
    --------
    Repeated structurally-equal queries skip the pipeline after the first
    call, and :meth:`stats` reports every counter as one atomic snapshot:

    >>> from repro.constraints import ConstraintRepository, build_example_constraints
    >>> from repro.query import parse_query
    >>> from repro.schema import build_example_schema
    >>> schema = build_example_schema()
    >>> repository = ConstraintRepository(schema)
    >>> repository.add_all(build_example_constraints())
    >>> service = OptimizationService(schema, repository=repository)
    >>> query = parse_query(
    ...     '(SELECT {cargo.desc} { } {vehicle.desc = "refrigerated truck"} '
    ...     '{collects} {cargo, vehicle})')
    >>> service.optimize(query).source.value
    'computed'
    >>> service.optimize(query).source.value
    'result_cache'
    >>> service.stats().cache.result_hits
    1
    """

    def __init__(
        self,
        schema: Schema,
        repository: Optional[ConstraintRepository] = None,
        constraints: Optional[Sequence[SemanticConstraint]] = None,
        cost_model: Optional["CostModel"] = None,
        config: Optional[OptimizerConfig] = None,
        result_cache_size: int = 1024,
        max_workers: Optional[int] = None,
        store=None,
        execution_mode=None,
        engine_workers: Optional[int] = None,
        engine_min_partition_rows: Optional[int] = None,
    ) -> None:
        self.optimizer = SemanticQueryOptimizer(
            schema,
            repository=repository,
            constraints=constraints,
            cost_model=cost_model,
            config=config,
        )
        self.schema = schema
        self.max_workers = max_workers
        self.store = store
        self.execution_mode = execution_mode
        self.engine_workers = engine_workers
        self.engine_min_partition_rows = engine_min_partition_rows
        self._result_cache: LruCache = LruCache(result_cache_size)
        # Single-writer coordination for the live mutation path: query
        # executions hold the shared side, :meth:`mutate` the exclusive
        # side, so a write never interleaves with an execution mid-plan.
        self._store_lock = ReadWriteLock()
        self._mutations_applied = 0
        # Optional durability layer (attach_durability): when set, every
        # mutation batch commits its WAL frames before the write lock is
        # released, and MutationResult/ServiceStats carry its metadata.
        self._durability = None
        # Dynamic (state-derived) rule maintenance: when enabled, a write
        # touching a tracked class re-derives only that class's rules.
        self._dynamic_config: Optional[DerivationConfig] = None
        self._dynamic_classes: Optional[set] = None
        self._executors: Dict[Tuple, object] = {}
        # Guards check-then-create on the executor map: concurrent first
        # requests (gateway worker threads) must not build duplicate
        # executors — a replaced parallel executor would leak its forked
        # worker pool.
        self._executor_lock = threading.Lock()
        # Warm in-process executors checked out by execute_many's worker
        # threads and returned after each query, so batch after batch
        # reuses the same store-version-keyed caches.
        self._spare_executors: Dict[Tuple, List] = {}
        #: In-flight deduplication map.  :meth:`optimize_coalesced` keys it
        #: with ``("optimize", structural key, generation)``; the async
        #: gateway additionally keys whole request payloads with it, so one
        #: map (and one dedup counter set) covers both layers.  Safe to
        #: drive from threads and from an event loop alike.
        self.single_flight: SingleFlightMap = SingleFlightMap()
        #: Standing-view registry (:meth:`subscription_registry`), built
        #: lazily on the first ``subscribe`` so services that never serve
        #: live views pay nothing.  The write path flags it on dynamic-
        #: rule churn; the gateway (or a follower) pumps it after writes.
        self.subscriptions = None
        #: Shared version-keyed statistics cache over the attached store.
        #: Every executor, the batch path and the optimizer's cost model
        #: read through it, so the whole service performs at most one
        #: full statistics collect per store version.
        self._stats_cache = None
        #: Self-tuning manager (:meth:`enable_self_tuning`); ``None`` when
        #: the feedback loop is off.
        self._tuning = None
        self._bind_store_caches()
        # Profitability heuristics consult the store's live index set
        # (runtime-created and dropped indexes included), falling back to
        # the static schema only without a store.
        self.optimizer.index_probe = self._live_index_probe
        # Demoted rules sit out of retrieval; a no-op until self-tuning
        # with rule learning is enabled.
        self.optimizer.rule_filter = self._rule_filter

    @property
    def repository(self) -> Optional[ConstraintRepository]:
        """The wrapped optimizer's repository (single source of truth).

        Derived rather than stored so generation reads for cache keys can
        never diverge from the repository the optimizer actually uses.
        """
        return self.optimizer.repository

    # ------------------------------------------------------------------
    # Store-derived caches (statistics, live index probe)
    # ------------------------------------------------------------------
    def _bind_store_caches(self) -> None:
        """(Re)build the statistics cache for the current store.

        Called at construction and on every store swap.  Binds the
        optimizer's cost model to the cache so profitability estimates
        price against the store's *current* contents instead of whatever
        snapshot the model was constructed with.
        """
        from ..engine.statistics import StatisticsCache

        if self.store is None:
            self._stats_cache = None
            if self.optimizer.cost_model is not None:
                self.optimizer.cost_model.bind_statistics(None)
            return
        self._stats_cache = StatisticsCache(self.schema, self.store)
        if self.optimizer.cost_model is not None:
            self.optimizer.cost_model.bind_statistics(self._stats_cache.get)

    def _statistics(self):
        """Statistics current for the store's version, via the shared cache."""
        if self._stats_cache is None:
            raise ValueError(
                "OptimizationService has no object store attached; pass "
                "store= at construction or call attach_store()"
            )
        return self._stats_cache.get()

    @property
    def statistics_cache(self):
        """The shared statistics cache (``None`` without a store)."""
        return self._stats_cache

    def _live_index_probe(
        self, class_name: str, attribute_name: str
    ) -> Optional[bool]:
        """The store's live index set; ``None`` (= unknown) without a store."""
        store = self.store
        if store is None:
            return None
        try:
            return store.indexes.is_indexed(class_name, attribute_name)
        except Exception:
            return None

    def _rule_filter(self, constraint) -> bool:
        """Whether ``constraint`` may participate in optimization."""
        tuning = self._tuning
        if tuning is None or not tuning.config.learn_rules:
            return True
        return not tuning.is_demoted(constraint.name)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _record_access(self, query: Query) -> None:
        """Keep access-frequency statistics honest for pipeline-skipping hits."""
        if (
            self.repository is not None
            and self.optimizer.config.record_access_statistics
        ):
            self.repository.record_access(query.classes)

    def clear_result_cache(self) -> None:
        """Drop every cached optimization result."""
        self._result_cache.clear()

    def cache_stats(self) -> ServiceCacheSnapshot:
        """Current counters of the result cache and the repository caches.

        Each cache's counters are read atomically under that cache's lock
        (:meth:`repro.caching.LruCache.snapshot`), so the snapshot stays
        internally consistent under concurrent optimization traffic.
        """
        repo = (
            self.repository.cache_stats()
            if self.repository is not None
            else RepositoryCacheStats()
        )
        result = self._result_cache.snapshot()
        return ServiceCacheSnapshot(
            result_hits=result.hits,
            result_misses=result.misses,
            result_entries=result.entries,
            result_evictions=result.evictions,
            result_maxsize=result.maxsize,
            retrieval_hits=repo.retrieval_hits,
            retrieval_misses=repo.retrieval_misses,
            closure_hits=repo.closure_hits,
            closure_misses=repo.closure_misses,
        )

    def stats(self) -> ServiceStats:
        """One immutable snapshot of the whole service's counters.

        The view the gateway's ``stats`` RPC serializes: cache counters,
        single-flight dedup counters, repository generation/size and the
        warm executor set, each counter group read under its own lock.
        """
        return ServiceStats(
            cache=self.cache_stats(),
            single_flight=self.single_flight.snapshot(),
            repository_generation=(
                self.repository.generation if self.repository is not None else 0
            ),
            repository_constraints=(
                len(self.repository.declared())
                if self.repository is not None
                else 0
            ),
            executors=tuple(
                sorted(
                    f"{mode}/{strategy}"
                    for mode, strategy, _ in list(self._executors)
                )
            ),
            store_attached=self.store is not None,
            store_version=getattr(self.store, "version", 0) or 0,
            mutations_applied=self._mutations_applied,
            durability=(
                self._durability.stats()
                if self._durability is not None
                else None
            ),
            tuning=(
                self._tuning.snapshot() if self._tuning is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Single-query API
    # ------------------------------------------------------------------
    def optimize(self, query: Query, use_cache: bool = True) -> ServiceResult:
        """Optimize one query, serving from the result cache when possible.

        Cache identity is *structural* (``equivalence_key``): list ordering
        of projections, predicates, relationships and classes is ignored,
        so a hit may return an optimized query carrying a structural twin's
        ordering.  That matches the system's set-based answer semantics;
        callers that need per-call orderings or timings must pass
        ``use_cache=False``, which bypasses the result cache entirely (no
        lookup, no store) — as the timing experiments do.
        """
        caching = use_cache and self._result_cache.maxsize > 0
        return self._optimize_keyed(
            query, equivalence_key(query) if caching else None
        )

    def optimize_coalesced(
        self, query: Query, use_cache: bool = True
    ) -> ServiceResult:
        """Optimize one query, sharing work with identical in-flight calls.

        Like :meth:`optimize`, but concurrent calls for structurally-equal
        queries are **single-flighted**: the first caller (the leader) runs
        the pipeline — or takes the result-cache hit — while the rest block
        on the leader's future and receive the same underlying result with
        ``source`` marked :attr:`~.ResultSource.SINGLE_FLIGHT`.  Where the
        result cache collapses repeats over time, this collapses repeats
        happening *right now*, so a thundering herd of N identical requests
        costs one optimization instead of N.

        The flight key embeds the repository generation: a constraint
        add/remove during a flight does not let late followers observe a
        pre-mutation result under a post-mutation key.  A leader failure is
        propagated to every follower and never cached — the next call
        retries fresh.

        Layering note: this is the coalescing entry point for *direct*
        (threaded) service callers.  The gateway does not call it — it
        coalesces whole request payloads (rows included, options in the
        key) through the same :attr:`single_flight` map under its own
        ``"rpc"``-prefixed keys, so each computation is counted once and
        the map's dedup statistics aggregate both layers.
        """
        start = time.perf_counter()
        caching = use_cache and self._result_cache.maxsize > 0
        eq_key = equivalence_key(query)
        flight_key = ("optimize", eq_key, self._cache_epoch(query), use_cache)
        future, leader = self.single_flight.begin(flight_key)
        if leader:
            try:
                envelope = self._optimize_keyed(query, eq_key if caching else None)
            except BaseException as exc:
                self.single_flight.fail(flight_key, exc)
                raise
            self.single_flight.resolve(flight_key, envelope)
            return envelope
        shared: ServiceResult = future.result()
        self._record_access(query)
        return ServiceResult(
            query=query,
            result=replace(shared.result, original=query),
            source=ResultSource.SINGLE_FLIGHT,
            service_time=time.perf_counter() - start,
        )

    def _cache_epoch(self, query: Query) -> Tuple[int, ...]:
        """The cache epoch of ``query``: its classes' generation counters.

        Keying cached results on the *per-class* generations instead of the
        global one makes invalidation class-granular: re-deriving the
        dynamic rules of a mutated class leaves every cached optimization
        whose query does not touch that class servable.  Correctness holds
        because a constraint's referenced classes are always a subset of
        the classes of any query it is relevant to, so any relevant
        constraint change moves at least one counter in this tuple.

        Two tuning counters ride along: the cost model's weights
        generation (calibration swaps reprice profitability decisions)
        and the tuning manager's generation (index create/drop and rule
        demotions change what the optimizer would produce).  Both are 0
        until the corresponding feature activates, so the epoch shape is
        stable.
        """
        generations: Tuple[int, ...] = (
            self.repository.class_generations(query.classes)
            if self.repository is not None
            else ()
        )
        cost_model = self.optimizer.cost_model
        weights_generation = (
            cost_model.weights_generation if cost_model is not None else 0
        )
        tuning_generation = (
            self._tuning.generation if self._tuning is not None else 0
        )
        return generations + (weights_generation, tuning_generation)

    def _optimize_keyed(
        self, query: Query, eq_key: Optional[Tuple]
    ) -> ServiceResult:
        """Optimize with a precomputed structural key (``None`` = no caching)."""
        start = time.perf_counter()
        key: Optional[Tuple] = None
        if eq_key is not None:
            key = (eq_key, self._cache_epoch(query))
            cached = self._result_cache.get(key)
            if cached is not None:
                self._record_access(query)
                return ServiceResult(
                    query=query,
                    # The cached run may stem from a structural twin; point
                    # ``original`` at the query this caller submitted (the
                    # heavy fields — optimized query, trace, tags — are
                    # shared with the cached result).
                    result=replace(cached, original=query),
                    source=ResultSource.RESULT_CACHE,
                    service_time=time.perf_counter() - start,
                )
        result = self.optimizer.optimize(query)
        if key is not None:
            self._result_cache.put(key, result)
        return ServiceResult(
            query=query,
            result=result,
            source=ResultSource.COMPUTED,
            service_time=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Execution API
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Attach (or replace) the object store used by :meth:`execute`."""
        self.store = store
        self._bind_store_caches()
        self._drop_executors()

    def attach_durability(self, manager) -> None:
        """Attach an opened durability manager to the write path.

        ``manager`` is a :class:`~repro.durability.DurabilityManager`
        whose :meth:`~repro.durability.DurabilityManager.open` already
        adopted (or recovered) the attached store — from here on every
        :meth:`mutate` / :meth:`mutate_many` batch calls its ``commit()``
        under the store's write lock, so acked writes are in the WAL
        before any reader can observe them.  Pass ``None`` to detach.
        """
        self._durability = manager

    def flush_durability(self) -> None:
        """Force every buffered WAL frame onto stable storage.

        The drain path: the gateway calls this after it stops admitting
        work, so acked-but-unfsynced mutations survive a shutdown even
        under the batched fsync policy.  Takes the write lock to
        serialize against an in-flight mutation batch; a no-op without
        an attached durability manager.
        """
        if self._durability is None:
            return
        with self._store_lock.write():
            self._durability.flush()

    def backup(self) -> Dict[str, Any]:
        """Write an on-demand atomic snapshot; returns ``{path, version}``.

        Backs the ``backup`` RPC: the snapshot is taken under the
        exclusive store lock (the durability manager requires a
        quiescent store), rotates the WAL to the new base, and lands in
        the data directory like any scheduled snapshot.  Raises
        ``ValueError`` when no durability manager is attached (the
        gateway maps this to the ``backup_unavailable`` wire code).
        """
        if self._durability is None:
            raise ValueError(
                "backup requires durability; start the server with --data-dir"
            )
        with self._store_lock.write():
            path = self._durability.snapshot()
            version = self.store.version if self.store is not None else 0
        return {"path": path, "version": version}

    def replication_capture(self, version, register=None) -> Dict[str, Any]:
        """Capture a consistent sync point for a new replication subscriber.

        Runs under the shared (read) side of the store lock — readers
        exclude writers, so no mutation (and hence no sink callback) can
        fire mid-capture.  Calling ``register`` *inside* the locked span
        subscribes the caller to the live feed atomically with the
        capture: every record after the captured version reaches the
        subscriber through its queue, and none is duplicated or lost
        between sync payload and tail.

        With ``version`` set and bridgeable by the store's bounded
        journal, returns ``{"mode": "tail", "records": [...]}`` — the
        delta a lagging replica replays.  Otherwise returns
        ``{"mode": "snapshot", "header": ..., "rows": [...]}`` — the
        full state in deterministic snapshot order.
        """
        if self.store is None:
            raise ValueError(
                "replication requires an attached object store"
            )
        from ..durability.snapshot import SNAPSHOT_FORMAT

        with self._store_lock.read():
            records = (
                self.store.journal_since(version) if version is not None else None
            )
            if register is not None:
                register()
            if records is not None:
                return {
                    "mode": "tail",
                    "version": self.store.version,
                    "shard_count": self.store.shard_count,
                    "records": [record.as_dict() for record in records],
                }
            return {
                "mode": "snapshot",
                "version": self.store.version,
                "shard_count": self.store.shard_count,
                "format": SNAPSHOT_FORMAT,
                "header": dict(self.store.snapshot_header()),
                "rows": [
                    (class_name, oid, dict(values))
                    for class_name, oid, values in self.store.snapshot_rows()
                ],
            }

    def apply_replication(self, records) -> int:
        """Apply replicated mutation records on a replica; returns count.

        The replica-side write path: records stream in from the
        primary's feed and replay through the store's ``apply_journal``
        under the exclusive lock — exactly how forked parallel workers
        catch up — so shard versions advance like the original writes
        and every shard-granular cache invalidates identically.
        Dynamic rules of the touched classes are re-derived afterwards,
        still under the lock, mirroring the primary's own write path.
        """
        if self.store is None:
            raise ValueError(
                "OptimizationService has no object store attached; pass "
                "store= at construction or call attach_store()"
            )
        records = list(records)
        with self._store_lock.write():
            applied = self.store.apply_journal(records)
            self._mutations_applied += applied
            touched = {record.class_name for record in records}
            refreshed, changed = self._refresh_dynamic_rules(
                self._tracked_classes(touched)
            )
            if changed and self.subscriptions is not None:
                self.subscriptions.note_rule_churn(touched)
        return applied

    def subscription_registry(self):
        """The lazily-built standing-view registry of this service.

        Replicas host subscriptions too (views are advanced by the
        follower after each applied WAL frame), so the registry lives on
        the service, not on the gateway.
        """
        with self._executor_lock:
            if self.subscriptions is None:
                from ..subscriptions import SubscriptionRegistry

                self.subscriptions = SubscriptionRegistry(self)
            return self.subscriptions

    def adopt_replica_store(self, store) -> None:
        """Swap in a fully resynced replica store (full snapshot resync).

        Used when the primary's journal can no longer bridge this
        replica's version (bounded retention, or a new feed epoch): the
        follower rebuilds a complete store off-lock, and this swap —
        plus a dynamic-rule refresh over every tracked class — happens
        atomically with respect to readers.
        """
        with self._store_lock.write():
            self.store = store
            self._bind_store_caches()
            self._refresh_dynamic_rules(
                self._tracked_classes(self.schema.class_names())
            )
        self._drop_executors()

    def close(self) -> None:
        """Release execution resources (worker pools, cached executors).

        The service stays usable afterwards — the next execution simply
        rebuilds what it needs — so this is about *deterministic* release
        of the parallel engine's forked worker processes instead of
        waiting for garbage collection.  Also usable as a context manager:
        ``with OptimizationService(...) as service: ...``.
        """
        self.flush_durability()
        self._drop_executors()

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _drop_executors(self) -> None:
        """Forget cached executors, shutting down any worker pools."""
        with self._executor_lock:
            executors = list(self._executors.values())
            self._executors.clear()
            self._spare_executors.clear()
        for executor in executors:
            close = getattr(executor, "close", None)
            if close is not None:
                close()

    def _executor(self, execution_mode, join_strategy: str, workers=None):
        """A cached executor for one (mode, strategy, workers) triple.

        Executors are reused across calls so the vectorized engine's
        store-version-keyed pointer/fragment caches — and the parallel
        engine's forked worker pool — stay warm between requests, the
        steady state of a server executing many queries against one store.
        """
        from ..engine.modes import (
            ExecutionMode,
            create_executor,
            resolve_execution_mode,
            resolve_worker_count,
        )

        if self.store is None:
            raise ValueError(
                "OptimizationService has no object store attached; pass "
                "store= at construction or call attach_store()"
            )
        mode = execution_mode if execution_mode is not None else self.execution_mode
        resolved = resolve_execution_mode(mode)
        # Worker width only means anything to the parallel engine; keying
        # the in-process engines on it would needlessly duplicate them (and
        # their warm caches) per width value.
        if resolved is ExecutionMode.PARALLEL:
            width = resolve_worker_count(
                workers if workers is not None else self.engine_workers
            )
        else:
            width = 0
        key = (resolved.value, join_strategy, width)
        with self._executor_lock:
            executor = self._executors.get(key)
            if executor is None:
                executor = create_executor(
                    self.schema,
                    self.store,
                    mode=resolved,
                    join_strategy=join_strategy,
                    workers=width or None,
                    min_partition_rows=self.engine_min_partition_rows,
                    statistics_cache=self._stats_cache,
                )
                self._executors[key] = executor
        return executor

    def execute(
        self,
        query: Query,
        optimize: bool = True,
        use_cache: bool = True,
        execution_mode=None,
        join_strategy: str = "hash",
        workers: Optional[int] = None,
    ) -> ExecutionEnvelope:
        """Optimize ``query`` (optionally) and execute it against the store.

        The optimization half reuses :meth:`optimize` (including the result
        cache); the execution half runs on the engine selected by
        ``execution_mode`` (service default, else process default), with
        ``workers`` widening the parallel engine's pool.  Every engine
        returns identical rows and cost counters, so the mode only changes
        wall-clock time; parallel executions additionally report per-shard
        timings on the envelope.
        """
        envelope: Optional[ServiceResult] = None
        target = query
        baseline = None
        # One read-lock span covers the optimize half too: dynamic rules
        # derived from store state feed the optimization, so a rule
        # re-derivation (a write) must not land between transforming the
        # query and executing the transformed plan — the plan would encode
        # implications that are no longer true of the data.
        with self._store_lock.read():
            if optimize:
                envelope = self.optimize(query, use_cache=use_cache)
                target = envelope.optimized
            executor = self._executor(execution_mode, join_strategy, workers)
            start = time.perf_counter()
            execution = executor.execute(target)
            elapsed = time.perf_counter() - start
            if (
                self._tuning is not None
                and envelope is not None
                and envelope.result.trace.constraints_used()
                and self._tuning.should_sample_ab()
            ):
                # Sampled A/B leg: the *original* query on the same
                # engine, inside the same lock span so both legs observe
                # one store/rule epoch.  Its measured cost is the ground
                # truth the rule-payoff tracker scores rewrites against.
                baseline = executor.execute(query)
        if self._tuning is not None:
            self._tuning_feedback(
                executor, query, execution, elapsed, envelope, baseline
            )
        return ExecutionEnvelope(
            query=query,
            execution=execution,
            execution_mode=executor.mode.value,
            execute_time=elapsed,
            optimization=envelope,
        )

    def execute_many(
        self,
        queries: Iterable[Query],
        optimize: bool = True,
        use_cache: bool = True,
        execution_mode=None,
        join_strategy: str = "hash",
        workers: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> ExecutionBatchResult:
        """Optimize (optionally) and execute a batch of queries.

        The optimization half reuses :meth:`optimize_many` (batch dedup,
        result cache, optional thread fan-out).  The execution half depends
        on the engine: the **parallel** engine plans every query and feeds
        the plans to its pipelined ``execute_plans`` batch API, so shard
        tasks of different queries overlap on one worker pool; the
        in-process engines fan the executions out over ``max_workers``
        threads (each thread with its own executor, so no state races),
        falling back to one warm cached executor when single-threaded.
        Results always come back aligned with the input order.
        """
        from ..engine.modes import ExecutionMode, resolve_execution_mode

        batch = list(queries)
        start = time.perf_counter()
        envelopes: List[Optional[ServiceResult]] = [None] * len(batch)
        targets: List[Query] = batch
        optimize_time = 0.0
        # The whole batch — optimization included — runs under ONE shared
        # acquisition: writers wait for the batch, and the batch observes a
        # single store/rule epoch.  (One flat acquisition, not per-query
        # ones in the worker threads: the lock is writer-priority and not
        # reentrant, so nested read acquisitions under a waiting writer
        # would deadlock.)
        with self._store_lock.read():
            if optimize and batch:
                optimized = self.optimize_many(
                    batch, max_workers=max_workers, use_cache=use_cache
                )
                envelopes = list(optimized.results)
                targets = optimized.optimized_queries()
                optimize_time = optimized.stats.wall_time

            mode = (
                execution_mode if execution_mode is not None else self.execution_mode
            )
            resolved = resolve_execution_mode(mode)
            execute_start = time.perf_counter()
            if resolved is ExecutionMode.PARALLEL:
                timed_executions, pool_width = self._execute_batch_parallel(
                    targets, join_strategy, workers
                )
            else:
                timed_executions, pool_width = self._execute_batch_threaded(
                    targets, resolved, join_strategy, max_workers
                )
            execute_time = time.perf_counter() - execute_start

        # Per-envelope timing: the in-process paths measure each execution
        # individually; pipelined parallel executions report their worker
        # critical path (max shard elapsed) when they fanned out, and fall
        # back to the batch mean otherwise — queries overlap on one pool,
        # so an exclusive per-query wall clock does not exist there.
        mean_time = execute_time / len(batch) if batch else 0.0
        if self._tuning is not None and batch:
            for query, (execution, elapsed) in zip(batch, timed_executions):
                self._tuning.observe_execution(
                    resolved.value,
                    query,
                    execution.metrics,
                    elapsed if elapsed is not None else mean_time,
                )
            self._tuning_maintenance(resolved.value)
        results = [
            ExecutionEnvelope(
                query=query,
                execution=execution,
                execution_mode=resolved.value,
                execute_time=elapsed if elapsed is not None else mean_time,
                optimization=envelope,
            )
            for query, (execution, elapsed), envelope in zip(
                batch, timed_executions, envelopes
            )
        ]
        stats = ExecutionBatchStats(
            total=len(batch),
            wall_time=time.perf_counter() - start,
            optimize_time=optimize_time,
            execute_time=execute_time,
            workers=pool_width,
            execution_mode=resolved.value,
        )
        return ExecutionBatchResult(results=results, stats=stats)

    def _execute_batch_parallel(self, targets, join_strategy: str, workers):
        """Execute a batch on the (shared) parallel engine, pipelined.

        Returns ``(execution, elapsed-or-None)`` pairs: ``elapsed`` is the
        worker critical path (max shard elapsed) for fanned-out plans and
        ``None`` for inline ones.
        """
        from ..engine.planner import ConventionalPlanner

        executor = self._executor("parallel", join_strategy, workers)
        if not targets:
            return [], executor.workers
        # One shared version-keyed snapshot: batch after batch at the same
        # store version plans against the same collected statistics
        # instead of re-walking every extent per batch.
        statistics = self._statistics()
        planner = ConventionalPlanner(
            self.schema, statistics, execution_mode=executor.mode
        )
        plans = [planner.plan(target) for target in targets]
        timed = [
            (
                execution,
                max(report.elapsed for report in execution.shard_reports)
                if execution.shard_reports
                else None,
            )
            for execution in executor.execute_plans(plans)
        ]
        return timed, executor.workers

    def _execute_batch_threaded(
        self, targets, resolved, join_strategy: str, max_workers
    ):
        """Execute a batch on per-thread in-process executors.

        Returns ``(execution, elapsed)`` pairs with a real per-query wall
        clock (measured inside the worker thread).
        """
        from ..engine.modes import create_executor

        def timed(executor, target: Query):
            # No lock here: execute_many holds the shared side for the
            # whole batch (nested reads would deadlock under a waiting
            # writer on the writer-priority lock).
            start = time.perf_counter()
            execution = executor.execute(target)
            return execution, time.perf_counter() - start

        width = max_workers if max_workers is not None else self.max_workers
        if width is None or width <= 1 or len(targets) <= 1:
            executor = self._executor(resolved, join_strategy)
            return [timed(executor, target) for target in targets], 1

        if self.store is None:
            raise ValueError(
                "OptimizationService has no object store attached; pass "
                "store= at construction or call attach_store()"
            )
        pool_size = min(width, len(targets))
        # Worker threads check executors out of a service-level spare pool
        # and return them afterwards, so the warm pointer/fragment caches
        # survive from batch to batch (at most ``pool_size`` executors ever
        # accumulate per key; list.pop/append are atomic under the GIL).
        spares = self._spare_executors.setdefault(
            (resolved.value, join_strategy), []
        )

        def run(target: Query):
            try:
                executor = spares.pop()
            except IndexError:
                executor = create_executor(
                    self.schema,
                    self.store,
                    mode=resolved,
                    join_strategy=join_strategy,
                    statistics_cache=self._stats_cache,
                )
            try:
                return timed(executor, target)
            finally:
                spares.append(executor)

        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            return list(pool.map(run, targets)), pool_size

    # ------------------------------------------------------------------
    # Self-tuning (measured-cost calibration, auto-indexing, rule payoff)
    # ------------------------------------------------------------------
    def enable_self_tuning(self, config=None):
        """Turn on the measured-feedback loop; returns the manager.

        ``config`` is a :class:`~repro.tuning.TuningConfig` (``None`` =
        defaults: calibration, auto-indexing and rule learning all on).
        Requires an attached store.  When the optimizer has no cost
        model, one is created and bound to the shared statistics cache —
        calibrated weights have to land somewhere.

        From here on every :meth:`execute` / :meth:`execute_many` feeds
        the calibrator and the index advisor; calibration refits, index
        create/drop and rule demotions each bump the tuning generation,
        which rides in every cache epoch, so no cached result priced
        under the old tuning state is ever served as current.
        """
        from ..tuning import SelfTuningManager, TuningConfig

        if self.store is None or self._stats_cache is None:
            raise ValueError(
                "self-tuning needs an attached object store; pass store= "
                "at construction or call attach_store()"
            )
        if config is None:
            config = TuningConfig()
        if self.optimizer.cost_model is not None:
            self.optimizer.cost_model.bind_statistics(self._stats_cache.get)
        else:
            from ..engine.cost_model import CostModel as EngineCostModel

            model = EngineCostModel(self.schema, self._stats_cache.get())
            model.bind_statistics(self._stats_cache.get)
            self.optimizer.cost_model = model
        self._tuning = SelfTuningManager(config)
        return self._tuning

    @property
    def self_tuning(self):
        """The tuning manager (``None`` when self-tuning is off)."""
        return self._tuning

    def _tuning_feedback(
        self, executor, query, execution, wall_time, envelope=None, baseline=None
    ) -> None:
        """Post-execution hook: observe, score A/B, run due maintenance."""
        tuning = self._tuning
        if tuning is None:
            return
        mode = executor.mode.value
        tuning.observe_execution(mode, query, execution.metrics, wall_time)
        cost_model = self.optimizer.cost_model
        if (
            baseline is not None
            and envelope is not None
            and cost_model is not None
        ):
            tuning.observe_ab(
                self._rule_generations(
                    envelope.result.trace.constraints_used()
                ),
                cost_model.measured_cost(execution.metrics),
                cost_model.measured_cost(baseline.metrics),
            )
        self._tuning_maintenance(mode)

    def _rule_generations(
        self, names: Iterable[str]
    ) -> List[Tuple[str, Tuple[int, ...]]]:
        """Each rule paired with its referenced classes' generations."""
        unique = list(dict.fromkeys(names))
        if self.repository is None:
            return [(name, ()) for name in unique]
        declared = {c.name: c for c in self.repository.declared()}
        rules: List[Tuple[str, Tuple[int, ...]]] = []
        for name in unique:
            constraint = declared.get(name)
            generations = (
                self.repository.class_generations(
                    sorted(constraint.referenced_classes())
                )
                if constraint is not None
                else ()
            )
            rules.append((name, generations))
        return rules

    def _tuning_maintenance(self, mode: str) -> None:
        """Apply any due calibration refit or index advice.

        Must be called WITHOUT the store lock held: index advice takes
        the exclusive side.
        """
        tuning = self._tuning
        if tuning is None:
            return
        cost_model = self.optimizer.cost_model
        if cost_model is not None and tuning.due_calibration(mode):
            report = tuning.calibrate(mode, base=cost_model.weights)
            if report is not None:
                # The swap bumps weights_generation, which every cache
                # epoch embeds — stale-priced results age out, cached
                # plans stay valid (plan shape is weight-independent).
                cost_model.set_weights(report.weights)
        if tuning.due_advice():
            self._apply_index_advice()

    def _apply_index_advice(self) -> List:
        """Create/drop the indexes the advisor's heat justifies.

        Index ops go through the store's journaled write path under the
        exclusive lock — exactly like data writes — so replicas, the WAL
        and parallel workers all converge on the same index set.
        """
        tuning = self._tuning
        store = self.store
        if tuning is None or store is None:
            return []
        from ..engine.storage import StorageError

        def is_indexed(class_name: str, attribute_name: str) -> bool:
            try:
                return store.indexes.is_indexed(class_name, attribute_name)
            except Exception:
                return False

        def cardinality(class_name: str) -> int:
            try:
                return store.count(class_name)
            except Exception:
                return 0

        def indexable(class_name: str, attribute_name: str) -> bool:
            try:
                store._index_attribute(class_name, attribute_name)
            except Exception:
                return False
            return True

        actions = tuning.advise(is_indexed, cardinality, indexable)
        if not actions:
            return []
        applied = []
        with self._store_lock.write():
            for action in actions:
                try:
                    if action.op == "create":
                        ok = store.create_index(
                            action.class_name, action.attribute_name
                        )
                    else:
                        ok = store.drop_index(
                            action.class_name, action.attribute_name
                        )
                except StorageError:
                    # E.g. stored values failing the index's domain check;
                    # skip — the heat will re-propose or decay.
                    ok = False
                if ok:
                    tuning.index_applied(action)
                    applied.append(action)
        return applied

    # ------------------------------------------------------------------
    # Mutation API (the live write path)
    # ------------------------------------------------------------------
    def enable_dynamic_rules(
        self,
        config: Optional[DerivationConfig] = None,
        class_names: Optional[Iterable[str]] = None,
    ) -> int:
        """Derive state-dependent rules from the store and keep them fresh.

        Registers the rules :mod:`repro.constraints.dynamic` derives from
        the attached store (restricted to ``class_names`` when given) and
        arms the write path: every subsequent :meth:`mutate` touching a
        tracked class re-derives **only that class's** rules and swaps them
        atomically (:meth:`ConstraintRepository.replace_derived`), bumping
        only the touched classes' cache epochs.  Returns the number of
        derived rules currently declared.

        Scaling note: re-derivation scans the touched class's full extent
        while the write lock is held, so per-write latency grows with that
        extent (restrict ``class_names`` — or tune
        :class:`~repro.constraints.dynamic.DerivationConfig`, e.g.
        ``derive_functional=False`` — for write-heavy classes; incremental
        bound maintenance is the designated follow-up).
        """
        if self.store is None:
            raise ValueError(
                "dynamic rules need an attached object store; pass store= "
                "at construction or call attach_store()"
            )
        if self.repository is None:
            raise ValueError("dynamic rules need a constraint repository")
        self._dynamic_config = config or DerivationConfig()
        self._dynamic_classes = (
            set(class_names) if class_names is not None else None
        )
        with self._store_lock.write():
            tracked = self._tracked_classes(self.schema.class_names())
            self._refresh_dynamic_rules(tracked)
        return sum(
            1
            for constraint in self.repository.declared()
            if constraint.origin is ConstraintOrigin.DERIVED
        )

    def _tracked_classes(self, touched: Iterable[str]) -> List[str]:
        """The subset of ``touched`` whose dynamic rules this service owns."""
        if self._dynamic_config is None:
            return []
        touched_set = set(touched)
        if self._dynamic_classes is not None:
            touched_set &= self._dynamic_classes
        return sorted(touched_set)

    def _refresh_dynamic_rules(self, classes: List[str]) -> Tuple[int, bool]:
        """Re-derive the dynamic rules of ``classes`` (write lock held).

        Returns ``(classes refreshed, declared set changed)``.  Each class
        is re-derived independently and swapped through
        :meth:`ConstraintRepository.replace_derived`, which detects no-op
        swaps — a write that does not move any observed bound leaves the
        generation (and with it every warm cache) untouched.
        """
        if not classes or self.repository is None or self._dynamic_config is None:
            return 0, False
        deriver = DynamicRuleDeriver(self.schema, self._dynamic_config)
        changed = False
        for class_name in classes:
            declared = self.repository.declared()
            replaced = {
                c.name
                for c in declared
                if c.origin is ConstraintOrigin.DERIVED
                and class_name in c.referenced_classes()
            }
            taken = {c.name for c in declared} - replaced
            rules = deriver.derive(
                self.store, class_names=[class_name], existing_names=taken
            )
            changed |= self.repository.replace_derived([class_name], rules)
        return len(classes), changed

    def mutate(
        self,
        op: str,
        class_name: str,
        oid: Optional[int] = None,
        values: Optional[Dict] = None,
        rows: Optional[Sequence[Dict]] = None,
        refresh_rules: bool = True,
    ) -> MutationResult:
        """Apply one write (or an ``insert_many`` batch) to the store.

        ``op`` is ``"insert"`` (``values``), ``"update"`` (``oid`` +
        ``values``), ``"delete"`` (``oid``) or ``"insert_many"``
        (``rows``).  The write is applied under the exclusive side of the
        store lock, bumps only the touched shards' version counters, and —
        when dynamic rules are enabled — re-derives the rules of exactly
        the touched classes.  See :class:`MutationResult` for the reported
        invalidation footprint.
        """
        if op == "insert_many":
            specs = [
                {"op": "insert", "class_name": class_name, "values": row}
                for row in (rows if rows is not None else [])
            ]
            if not specs:
                raise ValueError("insert_many requires a non-empty 'rows' list")
        else:
            specs = [
                {
                    "op": op,
                    "class_name": class_name,
                    "oid": oid,
                    "values": values,
                }
            ]
        return self.mutate_many(specs, op_label=op, refresh_rules=refresh_rules)

    def mutate_many(
        self,
        mutations: Iterable[Dict],
        op_label: str = "batch",
        refresh_rules: bool = True,
    ) -> MutationResult:
        """Apply a sequence of writes atomically with respect to readers.

        Each mutation is a mapping with keys ``op`` (``insert`` /
        ``update`` / ``delete``), ``class_name`` (alias ``class``), and
        ``oid`` / ``values`` as the op requires.  The whole batch runs
        under one exclusive lock acquisition, so no query execution ever
        observes a partially applied batch.  There is no rollback: a
        failing mutation (e.g. an unknown OID) raises after the earlier
        writes in the batch have been applied — but dynamic rules are
        still re-derived for everything that *was* applied, so the rule
        set never goes stale even on a failed batch.
        """
        if self.store is None:
            raise ValueError(
                "OptimizationService has no object store attached; pass "
                "store= at construction or call attach_store()"
            )
        specs = [self._normalize_mutation(m) for m in mutations]
        start = time.perf_counter()
        oids: List[int] = []
        classes: set = set()
        shards: set = set()
        refreshed, changed = 0, False
        durability: Optional[Dict] = None
        from ..engine.storage import StorageError

        with self._store_lock.write():
            try:
                for spec_op, spec_class, spec_oid, spec_values in specs:
                    try:
                        if spec_op == "insert":
                            instance = self.store.insert(
                                spec_class, spec_values or {}
                            )
                            spec_oid = instance.oid
                        elif spec_op == "update":
                            self.store.update(
                                spec_class, spec_oid, spec_values or {}
                            )
                        else:  # delete (validated by _normalize_mutation)
                            self.store.delete(spec_class, spec_oid)
                    except StorageError as exc:
                        # The documented partial-application contract: the
                        # error says how much of the batch was committed.
                        raise StorageError(
                            f"{exc} ({len(oids)} of {len(specs)} mutations "
                            "applied before the failure)"
                        ) from None
                    oids.append(spec_oid)
                    classes.add(spec_class)
                    shards.add(self.store.shard_of(spec_oid))
                    self._mutations_applied += 1
            finally:
                # Commit the WAL even when the batch failed part-way:
                # the applied prefix is real (there is no rollback) and
                # must survive a crash like any other acked write.
                if self._durability is not None:
                    durability = self._durability.commit()
                if classes and refresh_rules:
                    refreshed, changed = self._refresh_dynamic_rules(
                        self._tracked_classes(classes)
                    )
                    if changed and self.subscriptions is not None:
                        # Flag (never pump) under the exclusive lock: the
                        # standing views touching these classes must
                        # resync against the re-derived rule set.
                        self.subscriptions.note_rule_churn(classes)
            store_version = self.store.version
            shard_versions = self.store.shard_versions()
        return MutationResult(
            op=op_label,
            classes=tuple(sorted(classes)),
            oids=tuple(oids),
            applied=len(oids),
            shards=tuple(sorted(shards)),
            store_version=store_version,
            shard_versions=shard_versions,
            rules_refreshed=refreshed,
            rules_changed=changed,
            generation=(
                self.repository.generation if self.repository is not None else 0
            ),
            mutate_time=time.perf_counter() - start,
            durability=durability,
        )

    @staticmethod
    def _normalize_mutation(mutation: Dict) -> Tuple[str, str, Optional[int], Optional[Dict]]:
        """Validate one mutation mapping into an ``(op, class, oid, values)`` spec."""
        op = mutation.get("op")
        if op not in ("insert", "update", "delete"):
            raise ValueError(
                f"unknown mutation op {op!r} (choose from: insert, update, delete)"
            )
        class_name = mutation.get("class_name") or mutation.get("class")
        if not isinstance(class_name, str) or not class_name:
            raise ValueError("mutation requires a non-empty 'class_name'")
        oid = mutation.get("oid")
        values = mutation.get("values")
        if op in ("update", "delete"):
            if not isinstance(oid, int) or isinstance(oid, bool) or oid < 1:
                raise ValueError(f"mutation op {op!r} requires an integer 'oid' >= 1")
        if op in ("insert", "update"):
            if values is None:
                values = {}
            if not isinstance(values, dict):
                raise ValueError(f"mutation op {op!r} requires a 'values' object")
        return op, class_name, oid, values

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------
    def optimize_many(
        self,
        queries: Iterable[Query],
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> BatchResult:
        """Optimize a batch of queries.

        Structurally-equal queries in the batch are optimized once and the
        result shared (the duplicates' envelopes are marked
        ``BATCH_DEDUP``).  The repository is precompiled up front so every
        query — and every worker thread — runs against the same snapshot.
        When ``max_workers`` (or the service default) is greater than one,
        the unique queries fan out over a thread pool; results always come
        back aligned with the input order.
        """
        batch = list(queries)
        start = time.perf_counter()
        if self.repository is not None:
            self.repository.ensure_precompiled()

        caching = use_cache and self._result_cache.maxsize > 0
        unique_queries: List[Query] = []
        unique_keys: List[Tuple] = []
        slot_of_key: Dict[Tuple, int] = {}
        slots: List[int] = []  # input index -> unique-query slot
        for query in batch:
            key = equivalence_key(query)
            slot = slot_of_key.get(key)
            if slot is None:
                slot = len(unique_queries)
                slot_of_key[key] = slot
                unique_queries.append(query)
                unique_keys.append(key)
            slots.append(slot)

        def run(slot: int) -> ServiceResult:
            return self._optimize_keyed(
                unique_queries[slot], unique_keys[slot] if caching else None
            )

        workers = max_workers if max_workers is not None else self.max_workers
        if workers is not None and workers > 1 and len(unique_queries) > 1:
            pool_size = min(workers, len(unique_queries))
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                unique_results = list(pool.map(run, range(len(unique_queries))))
        else:
            pool_size = 1
            unique_results = [run(slot) for slot in range(len(unique_queries))]

        envelopes: List[ServiceResult] = []
        first_use = [True] * len(unique_results)
        for index, slot in enumerate(slots):
            primary = unique_results[slot]
            if first_use[slot]:
                first_use[slot] = False
                envelopes.append(replace(primary, query=batch[index]))
            else:
                self._record_access(batch[index])
                envelopes.append(
                    replace(
                        primary,
                        query=batch[index],
                        result=replace(primary.result, original=batch[index]),
                        source=ResultSource.BATCH_DEDUP,
                        service_time=0.0,
                    )
                )

        stats = BatchStats(
            total=len(batch),
            unique=len(unique_queries),
            computed=sum(
                1 for r in unique_results if r.source is ResultSource.COMPUTED
            ),
            result_cache_hits=sum(
                1 for r in unique_results if r.source is ResultSource.RESULT_CACHE
            ),
            wall_time=time.perf_counter() - start,
            workers=pool_size,
        )
        return BatchResult(
            results=envelopes, stats=stats, cache=self.cache_stats()
        )
