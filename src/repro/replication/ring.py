"""Consistent-hash ring over replica endpoints.

The router keys ``optimize``/``execute`` traffic by the query's
structural :func:`~repro.query.equivalence.equivalence_key` so repeated
shapes land on the same replica and its result/single-flight caches stay
hot.  Two properties matter and both are pinned here:

* **cross-process stability** — the key must hash identically in every
  router process.  ``equivalence_key`` is a tuple of frozensets, whose
  iteration order (and builtin ``hash``) varies per process under hash
  randomization, so :func:`route_key` canonicalizes each component by
  *sorting* member reprs and the ring hashes with CRC-32, never
  ``hash()``.
* **minimal reshuffling** — each endpoint owns many virtual points on a
  32-bit ring, so removing a replica moves only its own keys.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import List, Sequence, Tuple

__all__ = ["ConsistentHashRing", "route_key"]

#: Virtual points per endpoint; enough to spread load within a few
#: percent across a handful of replicas without a noticeable ring.
DEFAULT_VNODES = 64


def route_key(key: Tuple[frozenset, ...]) -> str:
    """A deterministic string form of an ``equivalence_key`` tuple.

    Sorting each frozenset's member reprs makes the string (and hence
    the ring placement) identical across processes and Python runs.
    """
    return "|".join(
        ";".join(sorted(repr(member) for member in part)) for part in key
    )


class ConsistentHashRing:
    """Maps string keys to endpoints with CRC-32 virtual-node hashing."""

    def __init__(self, endpoints: Sequence[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.endpoints = list(endpoints)
        self.vnodes = vnodes
        points = []
        for endpoint in self.endpoints:
            for index in range(vnodes):
                point = zlib.crc32(f"{endpoint}#{index}".encode("utf-8"))
                points.append((point, endpoint))
        # Sort by (point, endpoint) so hash collisions between distinct
        # endpoints still order deterministically.
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def __len__(self) -> int:
        return len(self.endpoints)

    def node_for(self, key: str) -> str:
        """The endpoint owning ``key`` (first clockwise virtual point)."""
        nodes = self.nodes_for(key)
        if not nodes:
            raise ValueError("ring has no endpoints")
        return nodes[0]

    def nodes_for(self, key: str) -> List[str]:
        """Every endpoint in failover order for ``key``.

        Walks the ring clockwise from the key's position and yields each
        distinct endpoint once — the preferred owner first, then the
        fallbacks a router should try when the owner is unreachable.
        """
        if not self._points:
            return []
        start = bisect_right(self._hashes, zlib.crc32(key.encode("utf-8")))
        seen = []
        for offset in range(len(self._points)):
            _, endpoint = self._points[(start + offset) % len(self._points)]
            if endpoint not in seen:
                seen.append(endpoint)
                if len(seen) == len(self.endpoints):
                    break
        return seen
