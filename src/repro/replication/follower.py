"""The replica's side of the feed: bootstrap, live apply, reconnect.

A :class:`ReplicaFollower` connects to a primary's
:class:`~repro.replication.feed.ReplicationFeed`, rebuilds the exact
primary store from the snapshot stream
(:meth:`~repro.engine.storage.ShardedObjectStore.restore` — rows,
per-shard version counters and OID allocators all byte-identical), and
then applies every live ``record`` frame through
:meth:`OptimizationService.apply_replication` — the same
``apply_journal`` path forked parallel workers use, so shard-granular
cache invalidation and dynamic-rule re-derivation behave exactly as
they do for local writes.  Each applied frame is acked back with the
replica's new store version, which is what the primary reports as lag
and the router polls for read-your-writes.

On a dropped connection the follower reconnects with bounded retries,
sending its current version and the feed epoch: the primary answers
with a ``tail`` sync when its journal still bridges the gap, or a full
``snapshot`` sync (applied via
:meth:`OptimizationService.adopt_replica_store`) when it does not —
e.g. after the replica lagged past the journal bound or the primary
restarted under a new epoch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from ..durability.frames import FrameError, decode_frame, encode_frame
from ..durability.snapshot import SNAPSHOT_FORMAT
from ..engine.storage import MutationRecord, ShardedObjectStore, StorageError

__all__ = ["ReplicaFollower", "ReplicationError"]


class ReplicationError(Exception):
    """The feed violated the replication wire protocol."""


class ReplicaFollower:
    """Maintains one replica store from a primary's replication feed."""

    def __init__(
        self,
        schema,
        host: str,
        port: int,
        *,
        journal_limit: Optional[int] = None,
        reconnect_attempts: int = 30,
        reconnect_delay: float = 0.2,
    ):
        self.schema = schema
        self.primary = (host, port)
        self.journal_limit = journal_limit
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.epoch = ""
        self.connected = False
        #: Sync mode of the most recent handshake ("snapshot" or "tail").
        self.last_sync_mode: Optional[str] = None
        self.resyncs = 0
        self.records_applied = 0
        self.service = None
        self._store: Optional[ShardedObjectStore] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None
        self._stopped = False

    @property
    def applied_version(self) -> int:
        """The replica store's current (acked) version."""
        return self._store.version if self._store is not None else 0

    # ------------------------------------------------------------------
    # Bootstrap.

    async def bootstrap(self) -> ShardedObjectStore:
        """Connect and rebuild the primary's store; returns the store.

        Called once before the replica's service exists; a first-contact
        hello (``version: null``) always gets a full snapshot sync.
        """
        reader, writer, sync = await self._handshake(None, "")
        if sync.get("mode") != "snapshot":
            writer.close()
            raise ReplicationError(
                f"expected a snapshot sync on first contact, got {sync.get('mode')!r}"
            )
        store = await self._read_snapshot(reader, sync)
        self.epoch = sync.get("epoch") or ""
        self.last_sync_mode = "snapshot"
        self._reader, self._writer = reader, writer
        self._store = store
        self.connected = True
        return store

    def attach(self, service) -> None:
        """Attach the replica's service; live frames apply through it."""
        self.service = service

    # ------------------------------------------------------------------
    # Live loop.

    def start(self) -> "asyncio.Task":
        """Run :meth:`run` as a task on the current loop."""
        self._task = asyncio.ensure_future(self.run())
        return self._task

    async def run(self) -> None:
        """Apply the live stream; reconnect (bounded) on any drop.

        Raises :class:`ReplicationError` once reconnecting is exhausted,
        so a supervising ``serve`` process exits loudly rather than
        serving unboundedly stale reads.
        """
        if self.service is None or self._store is None:
            raise ReplicationError("bootstrap() and attach() must run first")
        await self._ack()
        while not self._stopped:
            try:
                await self._apply_stream()
            except asyncio.CancelledError:
                raise
            except (
                ConnectionError,
                OSError,
                FrameError,
                ReplicationError,
                asyncio.IncompleteReadError,
            ):
                pass
            self.connected = False
            if self._stopped:
                return
            if not await self._reconnect():
                raise ReplicationError(
                    f"lost the primary feed at {self.primary[0]}:{self.primary[1]} "
                    f"and reconnecting failed after {self.reconnect_attempts} attempts"
                )

    async def stop(self) -> None:
        """Stop the live loop and close the feed connection."""
        self._stopped = True
        self.connected = False
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, ReplicationError):
                pass
            self._task = None
        await self._close_connection()

    def status(self) -> Dict[str, Any]:
        """Primary endpoint, connection state and applied version."""
        return {
            "primary": f"{self.primary[0]}:{self.primary[1]}",
            "connected": self.connected,
            "epoch": self.epoch,
            "applied_version": self.applied_version,
            "last_sync_mode": self.last_sync_mode,
            "resyncs": self.resyncs,
            "records_applied": self.records_applied,
        }

    # ------------------------------------------------------------------
    # Wire plumbing.

    async def _handshake(self, version: Optional[int], epoch: str):
        reader, writer = await asyncio.open_connection(
            self.primary[0], self.primary[1], limit=1 << 26
        )
        try:
            writer.write(
                encode_frame(
                    {"kind": "hello", "version": version, "epoch": epoch}
                ).encode("utf-8")
            )
            await writer.drain()
            sync = await self._read_frame(reader)
            if sync.get("kind") != "sync":
                raise ReplicationError(
                    f"expected a sync frame, got {sync.get('kind')!r}"
                )
        except BaseException:
            writer.close()
            raise
        return reader, writer, sync

    async def _read_frame(self, reader) -> Dict[str, Any]:
        line = await reader.readline()
        if not line:
            raise ReplicationError("feed connection closed")
        return decode_frame(line.decode("utf-8"))

    async def _read_snapshot(self, reader, sync) -> ShardedObjectStore:
        """Consume a snapshot stream into a fresh store."""
        header = await self._read_frame(reader)
        if header.get("kind") != "snapshot":
            raise ReplicationError(
                f"expected a snapshot header, got {header.get('kind')!r}"
            )
        if header.get("format") != SNAPSHOT_FORMAT:
            raise ReplicationError(
                f"unsupported snapshot format {header.get('format')!r}"
            )
        rows = []
        while True:
            frame = await self._read_frame(reader)
            kind = frame.get("kind")
            if kind == "end":
                if frame.get("rows") != len(rows):
                    raise ReplicationError(
                        f"snapshot trailer claims {frame.get('rows')!r} rows, "
                        f"received {len(rows)}"
                    )
                break
            if kind != "row":
                raise ReplicationError(f"unexpected {kind!r} frame in snapshot")
            class_name = frame.get("class")
            values = frame.get("values")
            if not isinstance(class_name, str) or not isinstance(values, dict):
                raise ReplicationError("malformed snapshot row frame")
            rows.append((class_name, frame.get("oid"), values))
        kwargs = {} if self.journal_limit is None else {
            "journal_limit": self.journal_limit
        }
        try:
            store = ShardedObjectStore.restore(self.schema, header, rows, **kwargs)
        except (StorageError, TypeError, ValueError) as exc:
            raise ReplicationError(f"snapshot restore failed: {exc}") from None
        if store.version != sync.get("version"):
            raise ReplicationError(
                f"snapshot version {store.version} disagrees with sync "
                f"frame {sync.get('version')!r}"
            )
        return store

    async def _apply_stream(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped:
            frame = await self._read_frame(self._reader)
            if frame.get("kind") != "record":
                continue
            payload = {key: value for key, value in frame.items() if key != "kind"}
            try:
                record = MutationRecord.from_dict(payload)
            except StorageError as exc:
                raise ReplicationError(f"malformed record frame: {exc}") from None
            applied = await loop.run_in_executor(
                None, self.service.apply_replication, [record]
            )
            self.records_applied += applied
            # Replicas host live subscriptions too: their standing views
            # advance off the applied WAL frames, so pump after each
            # apply (still off the event loop — the pump executes
            # queries).  The ack goes out regardless of pump outcome.
            registry = getattr(self.service, "subscriptions", None)
            if registry is not None and registry.active:
                await loop.run_in_executor(None, registry.pump)
            await self._ack()

    async def _ack(self) -> None:
        if self._writer is None:
            return
        self._writer.write(
            encode_frame(
                {"kind": "ack", "version": self.applied_version}
            ).encode("utf-8")
        )
        await self._writer.drain()

    async def _close_connection(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _reconnect(self) -> bool:
        """Re-handshake with the current version; tail or full resync."""
        await self._close_connection()
        loop = asyncio.get_running_loop()
        delay = self.reconnect_delay
        for _ in range(self.reconnect_attempts):
            if self._stopped:
                return True
            try:
                reader, writer, sync = await self._handshake(
                    self._store.version, self.epoch
                )
            except (
                ConnectionError,
                OSError,
                FrameError,
                ReplicationError,
                asyncio.IncompleteReadError,
            ):
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, 2.0)
                continue
            mode = sync.get("mode")
            try:
                if mode == "snapshot":
                    store = await self._read_snapshot(reader, sync)
                    await loop.run_in_executor(
                        None, self.service.adopt_replica_store, store
                    )
                    self._store = store
                    self.resyncs += 1
                elif mode != "tail":
                    raise ReplicationError(f"unknown sync mode {mode!r}")
            except (
                ConnectionError,
                OSError,
                FrameError,
                ReplicationError,
                asyncio.IncompleteReadError,
            ):
                writer.close()
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, 2.0)
                continue
            self.epoch = sync.get("epoch") or ""
            self.last_sync_mode = mode
            self._reader, self._writer = reader, writer
            self.connected = True
            await self._ack()
            return True
        return False
