"""The primary's replication feed: initial sync + live WAL-frame tail.

One :class:`ReplicationFeed` fronts one
:class:`~repro.service.OptimizationService` on the primary.  Its
``sink`` is attached to the store's mutation sink (teed with the
durability manager's WAL sink), so every applied
:class:`~repro.engine.storage.MutationRecord` is encoded exactly once —
as the same checksummed NDJSON frame format the WAL writes to disk
(:mod:`repro.durability.frames`) — and fanned out to every subscribed
replica.

Wire protocol (one checksummed frame per line, both directions)::

    replica -> primary   {"kind": "hello", "version": V | null, "epoch": E}
                         {"kind": "ack", "version": V}
    primary -> replica   {"kind": "sync", "mode": "snapshot" | "tail",
                          "epoch": E, "version": V, "shard_count": N}
                         snapshot mode: a snapshot header frame, row
                         frames and an end trailer (the exact
                         :mod:`repro.durability.snapshot` shapes)
                         {"kind": "record", ...MutationRecord...}

A hello with a ``version`` the primary's bounded journal can still
bridge (and a matching feed epoch) gets a ``tail`` sync: the bridging
records, then the live stream.  Anything else — first contact, a
journal gap, an epoch from a previous primary process — gets a full
``snapshot`` sync.  The consistency point is taken under the service's
read lock (readers exclude writers), and the subscriber is registered
*inside* that capture, so no record can fall between the sync payload
and the live tail.

Slow consumers are bounded: a replica whose pending queue exceeds
``queue_limit`` is disconnected rather than buffered without limit (or
silently skipped — ``apply_journal`` does not detect sequence gaps).
The dropped replica reconnects and resyncs through the same hello path.
"""

from __future__ import annotations

import asyncio
import os
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..durability.frames import FrameError, decode_frame, encode_frame

__all__ = ["ReplicationFeed"]

#: Pending frames per subscriber before it is disconnected for lagging.
DEFAULT_QUEUE_LIMIT = 10_000


class _Subscriber:
    """One connected replica: a bounded queue plus ack bookkeeping."""

    def __init__(self, peer: str, loop: asyncio.AbstractEventLoop, limit: int):
        self.peer = peer
        self.pending: deque = deque()
        self.event = asyncio.Event()
        self.overflowed = False
        self.acked_version = 0
        self.synced_version = 0
        self._loop = loop
        self._limit = limit

    def push(self, line: str) -> None:
        """Enqueue one encoded frame (called from the mutating thread)."""
        if self.overflowed:
            return
        self.pending.append(line)
        if len(self.pending) > self._limit:
            self.overflowed = True
            self.pending.clear()
        try:
            self._loop.call_soon_threadsafe(self.event.set)
        except RuntimeError:
            # The feed's loop is shutting down; the connection is gone.
            pass


class ReplicationFeed:
    """Streams the primary's mutation records to subscribed replicas."""

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        #: Feed identity; a replica tailing a different epoch (a restarted
        #: primary whose journal seqs restarted) must full-resync.
        self.epoch = os.urandom(8).hex()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock = threading.Lock()
        self._subscribers: List[_Subscriber] = []
        self._frames_streamed = 0
        self._syncs = 0
        self._disconnects = 0

    async def start(self) -> Tuple[str, int]:
        """Bind the feed listener; returns ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port, limit=1 << 26
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Close the listener and drop every subscriber."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.overflowed = True
            subscriber.event.set()

    # ------------------------------------------------------------------
    # The store-side hook.

    def sink(self, record) -> None:
        """Mutation-sink callback: fan one record out to every replica.

        Fired inside the store's write-lock span (possibly from a
        gateway worker thread), so it must stay cheap: encode the frame
        once, append to each subscriber's queue, wake the writers.
        """
        line = encode_frame({"kind": "record", **record.as_dict()})
        with self._lock:
            subscribers = list(self._subscribers)
            self._frames_streamed += len(subscribers)
        for subscriber in subscribers:
            subscriber.push(line)

    # ------------------------------------------------------------------
    # Introspection.

    def describe(self) -> Dict[str, Any]:
        """The feed endpoint a would-be replica should connect to."""
        store = self.service.store
        return {
            "host": self.host,
            "port": self.port,
            "epoch": self.epoch,
            "version": getattr(store, "version", 0),
            "shard_count": getattr(store, "shard_count", 1),
        }

    def status(self) -> Dict[str, Any]:
        """Epoch, per-replica acked versions, and stream counters."""
        store = self.service.store
        version = getattr(store, "version", 0)
        with self._lock:
            replicas = [
                {
                    "peer": subscriber.peer,
                    "acked_version": subscriber.acked_version,
                    "lag": max(0, version - subscriber.acked_version),
                }
                for subscriber in self._subscribers
            ]
            counters = {
                "frames_streamed": self._frames_streamed,
                "syncs": self._syncs,
                "disconnects": self._disconnects,
            }
        return {
            "epoch": self.epoch,
            "feed_host": self.host,
            "feed_port": self.port,
            "replicas": replicas,
            **counters,
        }

    # ------------------------------------------------------------------
    # Per-connection handling.

    def _register(self, subscriber: _Subscriber) -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    def _unregister(self, subscriber: Optional[_Subscriber]) -> None:
        if subscriber is None:
            return
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)
                self._disconnects += 1

    async def _on_connect(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        subscriber: Optional[_Subscriber] = None
        try:
            subscriber = await self._sync(reader, writer, peer)
            if subscriber is not None:
                await self._serve(subscriber, reader, writer)
        except (ConnectionError, OSError, FrameError, asyncio.IncompleteReadError):
            pass
        finally:
            self._unregister(subscriber)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _sync(self, reader, writer, peer: str) -> Optional[_Subscriber]:
        """Handshake: read the hello, ship the sync payload, register."""
        line = await reader.readline()
        if not line:
            return None
        hello = decode_frame(line.decode("utf-8"))
        if hello.get("kind") != "hello":
            return None
        version = hello.get("version")
        epoch = hello.get("epoch") or ""
        tail_from = (
            version
            if isinstance(version, int)
            and not isinstance(version, bool)
            and epoch == self.epoch
            else None
        )
        loop = asyncio.get_running_loop()
        subscriber = _Subscriber(peer, loop, self.queue_limit)
        # Capture the sync point and register the subscriber atomically
        # with respect to writers (the capture holds the service's read
        # lock; the sink fires under the write lock).
        capture = await loop.run_in_executor(
            None,
            self.service.replication_capture,
            tail_from,
            lambda: self._register(subscriber),
        )
        with self._lock:
            self._syncs += 1
        subscriber.synced_version = capture["version"]
        subscriber.acked_version = 0
        writer.write(
            encode_frame(
                {
                    "kind": "sync",
                    "mode": capture["mode"],
                    "epoch": self.epoch,
                    "version": capture["version"],
                    "shard_count": capture["shard_count"],
                }
            ).encode("utf-8")
        )
        if capture["mode"] == "snapshot":
            header_frame = {"kind": "snapshot", "format": capture["format"]}
            header_frame.update(capture["header"])
            writer.write(encode_frame(header_frame).encode("utf-8"))
            rows = 0
            for class_name, oid, values in capture["rows"]:
                writer.write(
                    encode_frame(
                        {
                            "kind": "row",
                            "class": class_name,
                            "oid": oid,
                            "values": values,
                        }
                    ).encode("utf-8")
                )
                rows += 1
                if rows % 1000 == 0:
                    await writer.drain()
            writer.write(encode_frame({"kind": "end", "rows": rows}).encode("utf-8"))
        else:
            for payload in capture["records"]:
                writer.write(
                    encode_frame({"kind": "record", **payload}).encode("utf-8")
                )
        await writer.drain()
        return subscriber

    async def _serve(self, subscriber: _Subscriber, reader, writer) -> None:
        """Run the live tail writer and the ack reader until either ends."""
        pump = asyncio.ensure_future(self._pump(subscriber, writer))
        acks = asyncio.ensure_future(self._read_acks(subscriber, reader))
        try:
            await asyncio.wait([pump, acks], return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (pump, acks):
                task.cancel()
            await asyncio.gather(pump, acks, return_exceptions=True)

    async def _pump(self, subscriber: _Subscriber, writer) -> None:
        while True:
            await subscriber.event.wait()
            subscriber.event.clear()
            if subscriber.overflowed:
                # Lagging consumer: close rather than buffer unboundedly;
                # the replica reconnects and resyncs via hello.
                return
            while True:
                try:
                    line = subscriber.pending.popleft()
                except IndexError:
                    break
                writer.write(line.encode("utf-8"))
            await writer.drain()

    async def _read_acks(self, subscriber: _Subscriber, reader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            try:
                frame = decode_frame(line.decode("utf-8"))
            except FrameError:
                return
            if frame.get("kind") != "ack":
                continue
            version = frame.get("version")
            if isinstance(version, int) and not isinstance(version, bool):
                subscriber.acked_version = max(subscriber.acked_version, version)
