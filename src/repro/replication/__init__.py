"""Replicated read path: WAL-frame shipping and consistent-hash routing.

A primary gateway process tees every applied :class:`MutationRecord` into
a :class:`ReplicationFeed` — a TCP listener that streams the same
checksummed NDJSON frames the durability layer writes to disk.  Each
replica process runs a :class:`ReplicaFollower` that bootstraps from a
snapshot stream, applies the live tail through the store's
``apply_journal`` path (so shard-granular cache invalidation and
dynamic-rule re-derivation work unchanged), and acks applied versions
back so the primary can report lag.  A :class:`QueryRouter` fronts the
fleet: reads consistent-hash across replicas by structural query key,
mutations go to the single writer, and read-your-writes is enforced by
pinning each client connection to the store version of its last
mutation.

* :mod:`~repro.replication.ring` — the consistent-hash ring and the
  cross-process-stable route key;
* :mod:`~repro.replication.feed` — the primary's frame feed (initial
  sync + live tail + acks);
* :mod:`~repro.replication.follower` — the replica's bootstrap / apply /
  reconnect loop;
* :mod:`~repro.replication.router` — the ``python -m repro route`` tier.
"""

from .feed import ReplicationFeed
from .follower import ReplicaFollower, ReplicationError
from .ring import ConsistentHashRing, route_key
from .router import QueryRouter

__all__ = [
    "ConsistentHashRing",
    "QueryRouter",
    "ReplicaFollower",
    "ReplicationError",
    "ReplicationFeed",
    "route_key",
]
