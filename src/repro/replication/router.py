"""`repro route`: the consistent-hash query router over a replica fleet.

The router is a thin asyncio TCP tier speaking the exact gateway wire
protocol (:mod:`repro.server.protocol`), so every existing client —
``AsyncGatewayClient``, the loadgen, ``nc`` — works against it
unchanged.  Per incoming frame:

* ``optimize`` / ``execute`` / ``execute_batch`` are **reads**: the
  query text parses to its structural
  :func:`~repro.query.equivalence.equivalence_key`, and the
  :class:`~repro.replication.ring.ConsistentHashRing` picks the replica
  — so repeated query shapes land on the same replica and its caches
  stay hot.  A transport failure fails over along the ring and finally
  to the primary; requests never error just because one replica died.
* everything else (mutations, ``rules``, ``backup``, ``stats``, ...)
  forwards to the single-writer **primary**.

**Read-your-writes**: each client connection is pinned to the
``store_version`` of its last successful mutation.  A later read on
that connection only goes to a replica whose acked/applied version has
caught up — the router polls the replica's ``replica_status`` (briefly,
bounded) and otherwise falls back to the next ring node or the primary,
which trivially satisfies the pin.

Backend connections are shared, pipelined
:class:`~repro.server.client.AsyncGatewayClient`\\ s opened with
bounded reconnect-and-retry for idempotent reads, so a replica restart
is absorbed by the router rather than surfaced to clients.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from ..query import parse_query
from ..query.equivalence import equivalence_key
from ..server.client import AsyncGatewayClient
from ..server.errors import GatewayError, GatewayRequestError, ProtocolError
from ..server.protocol import (
    MUTATION_OPS,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)
from .ring import ConsistentHashRing, route_key

__all__ = ["QueryRouter"]

#: Ops the ring distributes across replicas; everything else → primary.
READ_OPS = ("optimize", "execute", "execute_batch")

_ROUTE_KEY_CACHE_LIMIT = 4096


def _parse_endpoint(endpoint: str) -> Tuple[str, int]:
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"endpoint must be HOST:PORT, got {endpoint!r}")
    return host, int(port)


class _ConnectionState:
    """Per-client-connection read-your-writes pin."""

    __slots__ = ("min_version",)

    def __init__(self):
        self.min_version = 0


class QueryRouter:
    """Routes gateway traffic across one primary and N read replicas."""

    def __init__(
        self,
        primary: str,
        replicas: List[str],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retry_reads: int = 5,
        pin_poll_interval: float = 0.02,
        pin_timeout: float = 5.0,
        vnodes: int = 64,
    ):
        self.primary_endpoint = primary
        self.replica_endpoints = list(replicas)
        self.host = host
        self.port = port
        self.retry_reads = retry_reads
        self.pin_poll_interval = pin_poll_interval
        self.pin_timeout = pin_timeout
        self._ring = ConsistentHashRing(self.replica_endpoints, vnodes=vnodes)
        self._server: Optional[asyncio.AbstractServer] = None
        self._primary: Optional[AsyncGatewayClient] = None
        self._backends: Dict[str, AsyncGatewayClient] = {}
        #: Last applied version observed per replica endpoint.
        self._applied: Dict[str, int] = {}
        self._route_keys: Dict[str, str] = {}
        self._stats = {
            "requests": 0,
            "routed_reads": 0,
            "routed_writes": 0,
            "failovers": 0,
            "stalls": 0,
            "errors": 0,
        }

    async def start(self) -> Tuple[str, int]:
        """Connect every backend and bind the listener."""
        primary_host, primary_port = _parse_endpoint(self.primary_endpoint)
        self._primary = await AsyncGatewayClient.connect(
            primary_host,
            primary_port,
            client_id="router-primary",
            retry_reads=self.retry_reads,
        )
        for endpoint in self.replica_endpoints:
            # A replica that is down at startup is not fatal: reads fail
            # over, and the backend is re-established lazily once it is
            # reachable again.
            await self._ensure_backend(endpoint)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=1 << 20
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Close the listener and every backend connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        clients = list(self._backends.values())
        self._backends = {}
        if self._primary is not None:
            clients.append(self._primary)
            self._primary = None
        for client in clients:
            await client.close()

    def status(self) -> Dict[str, Any]:
        return {
            "primary": self.primary_endpoint,
            "replicas": list(self.replica_endpoints),
            **self._stats,
        }

    # ------------------------------------------------------------------
    # Client connections.

    async def _serve_connection(self, reader, writer) -> None:
        state = _ConnectionState()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                response = await self._handle_line(line, state)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, state: _ConnectionState) -> dict:
        self._stats["requests"] += 1
        request_id: Any = None
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            op = frame.get("op")
            body = {key: value for key, value in frame.items() if key != "id"}
            if op in READ_OPS:
                result = await self._route_read(frame, body, state)
            else:
                result = await self._forward_primary(op, body, state)
            return ok_response(request_id, result)
        except (GatewayError, ProtocolError) as exc:
            self._stats["errors"] += 1
            return error_response(request_id, exc)
        except (ConnectionError, OSError) as exc:
            self._stats["errors"] += 1
            return error_response(
                request_id, GatewayError(f"backend unreachable: {exc}")
            )

    async def _forward_primary(
        self, op: Any, body: dict, state: _ConnectionState
    ) -> Any:
        self._stats["routed_writes"] += 1
        result = await self._primary.request(body)
        if op in MUTATION_OPS and isinstance(result, dict):
            version = result.get("store_version")
            if isinstance(version, int) and not isinstance(version, bool):
                # Pin this connection: its later reads must observe at
                # least this store version (read-your-writes).
                state.min_version = max(state.min_version, version)
        return result

    async def _ensure_backend(
        self, endpoint: str
    ) -> Optional[AsyncGatewayClient]:
        """The backend client for ``endpoint``, connecting if needed.

        Returns ``None`` when the replica is unreachable (connection
        refused is immediate on localhost fleets); the caller fails
        over and a later read retries the connect once the replica is
        back."""
        client = self._backends.get(endpoint)
        if client is not None:
            return client
        replica_host, replica_port = _parse_endpoint(endpoint)
        try:
            client = await AsyncGatewayClient.connect(
                replica_host,
                replica_port,
                client_id=f"router-{endpoint}",
                retry_reads=self.retry_reads,
            )
        except (ConnectionError, OSError):
            return None
        existing = self._backends.get(endpoint)
        if existing is not None:  # a concurrent read connected first
            await client.close()
            return existing
        self._backends[endpoint] = client
        return client

    async def _route_read(
        self, frame: dict, body: dict, state: _ConnectionState
    ) -> Any:
        self._stats["routed_reads"] += 1
        key = self._route_key(frame)
        for endpoint in self._ring.nodes_for(key):
            client = await self._ensure_backend(endpoint)
            if client is None:
                self._stats["failovers"] += 1
                continue
            if state.min_version and not await self._wait_for_version(
                endpoint, client, state.min_version
            ):
                self._stats["failovers"] += 1
                continue
            try:
                return await client.request(body)
            except GatewayRequestError:
                raise  # the backend answered; a server-side error is final
            except (GatewayError, ConnectionError, OSError):
                # The client's own reconnect budget is exhausted: drop
                # the backend so later reads re-establish it lazily (a
                # fast refused connect while it is down) instead of
                # paying the full retry delay on every request.
                self._stats["failovers"] += 1
                stale = self._backends.pop(endpoint, None)
                if stale is not None:
                    await stale.close()
                continue
        # No usable replica (none configured, all stale, or all down):
        # the primary always satisfies any pin.
        return await self._primary.request(body)

    def _route_key(self, frame: dict) -> str:
        if frame.get("op") == "execute_batch":
            queries = frame.get("queries")
            text = queries[0] if isinstance(queries, list) and queries else ""
        else:
            text = frame.get("query")
        if not isinstance(text, str) or not text:
            return ""
        cached = self._route_keys.get(text)
        if cached is not None:
            return cached
        try:
            key = route_key(equivalence_key(parse_query(text, name="route")))
        except Exception:
            key = text.strip()
        if len(self._route_keys) >= _ROUTE_KEY_CACHE_LIMIT:
            self._route_keys.clear()
        self._route_keys[text] = key
        return key

    async def _wait_for_version(
        self, endpoint: str, client: AsyncGatewayClient, min_version: int
    ) -> bool:
        """True once ``endpoint`` has applied ``min_version``.

        Polls the replica's ``replica_status`` (bounded by
        ``pin_timeout``); a False return means the caller should fail
        over rather than serve a stale read.
        """
        if self._applied.get(endpoint, 0) >= min_version:
            return True
        deadline = time.monotonic() + self.pin_timeout
        stalled = False
        while True:
            try:
                status = await client.request({"op": "replica_status"})
            except (GatewayError, ConnectionError, OSError):
                return False
            applied = status.get("applied_version", status.get("store_version", 0))
            if isinstance(applied, int) and not isinstance(applied, bool):
                self._applied[endpoint] = applied
                if applied >= min_version:
                    return True
            if time.monotonic() >= deadline:
                return False
            if not stalled:
                stalled = True
                self._stats["stalls"] += 1
            await asyncio.sleep(self.pin_poll_interval)
