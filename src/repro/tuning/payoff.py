"""Learned rule profitability.

The optimizer applies every relevant semantic rule whose transformation the
profitability analyzer approves — but the analyzer reasons from *estimates*.
Rules whose rewrites look profitable on paper can consistently lose on the
real data (a "selective" introduced predicate that matches everything, an
index whose column is pathologically skewed).  :class:`RulePayoffTracker`
keeps the ground truth: sampled A/B executions compare the optimized query
against the original on measured cost, and each rule that fired in the
winning-or-losing rewrite has its per-rule counters updated.

Counters are keyed by the constraint repository's ``class_generations`` for
the rule's referenced classes: when the underlying data changes (the
generations move), the accumulated evidence describes a database that no
longer exists, so the counters reset rather than demote a rule on stale
history.

A rule is **demoted** once it has ``min_trials`` trials with a win rate
below ``demote_threshold``; the owning service then filters it out of
optimization (it stays declared in the repository — demotion is a planner
decision, not a schema change).  Because generation movement resets the
evidence, demotion is self-healing: after the data shifts, the rule gets a
fresh hearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass
class RuleRecord:
    """Evidence accumulated for one rule under one data generation."""

    generations: Tuple[int, ...] = ()
    trials: int = 0
    wins: int = 0
    #: Hit-rate weighting: wins scaled by their measured cost ratio, so a
    #: rewrite that wins 10x counts for more than one that wins 1.01x.
    weighted_wins: float = 0.0

    @property
    def win_rate(self) -> float:
        """Fraction of trials the rule's rewrite won."""
        if self.trials == 0:
            return 1.0
        return self.wins / self.trials


class RulePayoffTracker:
    """Per-rule A/B outcome counters with generation-keyed reset."""

    def __init__(
        self, min_trials: int = 5, demote_threshold: float = 0.25
    ) -> None:
        self.min_trials = max(1, min_trials)
        self.demote_threshold = demote_threshold
        self._records: Dict[str, RuleRecord] = {}
        self._demoted: Dict[str, int] = {}
        self.trials = 0
        self.demotions = 0
        self.reinstatements = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        rules: Iterable[Tuple[str, Tuple[int, ...]]],
        won: bool,
        cost_ratio: float = 1.0,
    ) -> bool:
        """Fold one A/B outcome into every rule that fired.

        ``rules`` pairs each fired rule's name with the current
        ``class_generations`` tuple of *its* referenced classes (rules
        reference different class sets, so the generation key is
        per-rule).  ``won`` is whether the optimized execution beat the
        original on measured cost; ``cost_ratio`` is
        ``original / optimized`` (>1 for wins).  Returns True when the
        demotion set changed (the caller must then invalidate plan
        caches).
        """
        changed = False
        self.trials += 1
        for name, generations in rules:
            record = self._records.get(name)
            if record is None or record.generations != generations:
                # Data moved under the rule: old evidence is void.
                record = RuleRecord(generations=generations)
                self._records[name] = record
                if name in self._demoted:
                    del self._demoted[name]
                    self.reinstatements += 1
                    changed = True
            record.trials += 1
            if won:
                record.wins += 1
                record.weighted_wins += max(1.0, cost_ratio)
            if (
                record.trials >= self.min_trials
                and record.win_rate < self.demote_threshold
            ):
                if name not in self._demoted:
                    self._demoted[name] = record.trials
                    self.demotions += 1
                    changed = True
            elif name in self._demoted:
                del self._demoted[name]
                self.reinstatements += 1
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_demoted(self, rule_name: str) -> bool:
        """Whether ``rule_name`` is currently demoted."""
        return rule_name in self._demoted

    def demoted(self) -> List[str]:
        """Currently demoted rules, sorted."""
        return sorted(self._demoted)

    def record(self, rule_name: str) -> RuleRecord:
        """The (possibly empty) evidence record for one rule."""
        return self._records.get(rule_name, RuleRecord())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters plus per-rule evidence, for stats payloads."""
        return {
            "trials": self.trials,
            "demotions": self.demotions,
            "reinstatements": self.reinstatements,
            "demoted": self.demoted(),
            "rules": {
                name: {
                    "trials": record.trials,
                    "wins": record.wins,
                    "win_rate": round(record.win_rate, 4),
                    "weighted_wins": round(record.weighted_wins, 3),
                }
                for name, record in sorted(self._records.items())
            },
        }
