"""Workload-driven index advice.

Index introduction — the paper's headline transformation — only pays off
when the introduced predicate lands on an attribute that actually has an
index.  The static schema declares a fixed index set at design time; this
module watches the *workload* instead: every executed query contributes its
selective predicates' ``(class, attribute)`` targets to exponentially
decayed frequency counters, and :meth:`IndexAdvisor.advise` turns the
counters into create/drop actions.

The advisor is deliberately pure: it never touches a store.  It reports
actions against a caller-supplied ``is_indexed`` probe and ``cardinality``
lookup, and the owning :class:`~repro.tuning.manager.SelfTuningManager`
(under the service's write lock) applies them through
``ShardedObjectStore.create_index`` / ``drop_index`` so replicas and
parallel workers converge through the mutation journal like any other
write.

Safety rails:

* extents below ``min_cardinality`` are never indexed (a full scan of a
  tiny extent is cheaper than maintaining an index);
* only indexes the advisor itself created are ever dropped — declared
  schema indexes and operator-created ones are out of bounds;
* counters decay by halving every ``decay_interval`` observations, so a
  workload shift ages old heat out instead of pinning stale indexes
  forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

from ..query.query import Query


@dataclass(frozen=True)
class IndexAction:
    """One piece of advice: create or drop an index."""

    op: str  # "create" | "drop"
    class_name: str
    attribute_name: str
    heat: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for stats payloads."""
        return {
            "op": self.op,
            "class": self.class_name,
            "attribute": self.attribute_name,
            "heat": round(self.heat, 3),
        }


class IndexAdvisor:
    """Access-frequency counters over selective predicates, with advice.

    Parameters
    ----------
    create_threshold:
        Decayed heat at which an unindexed attribute earns an index.
    drop_threshold:
        Decayed heat below which an advisor-created index is retired.
        Must be below ``create_threshold`` (hysteresis — a flapping
        attribute must cool well past the create point before its index
        is dropped).
    decay_interval:
        Observations between halvings of every counter.
    min_cardinality:
        Extents smaller than this are never indexed.
    """

    def __init__(
        self,
        create_threshold: float = 16.0,
        drop_threshold: float = 2.0,
        decay_interval: int = 64,
        min_cardinality: int = 64,
    ) -> None:
        if drop_threshold >= create_threshold:
            raise ValueError(
                "drop_threshold must be below create_threshold (hysteresis)"
            )
        self.create_threshold = create_threshold
        self.drop_threshold = drop_threshold
        self.decay_interval = max(1, decay_interval)
        self.min_cardinality = min_cardinality
        self._heat: Dict[Tuple[str, str], float] = {}
        self._observations = 0
        #: Indexes this advisor created (the only ones it may drop).
        self.created: Set[Tuple[str, str]] = set()
        self.creates = 0
        self.drops = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, query: Query) -> None:
        """Fold one executed query's selective predicates into the heat."""
        self._observations += 1
        for predicate in query.predicates():
            if not predicate.is_selection:
                continue
            key = (predicate.left.class_name, predicate.left.attribute_name)
            self._heat[key] = self._heat.get(key, 0.0) + 1.0
        if self._observations % self.decay_interval == 0:
            self._decay()

    def _decay(self) -> None:
        cold = []
        for key in self._heat:
            self._heat[key] *= 0.5
            if self._heat[key] < 0.125 and key not in self.created:
                cold.append(key)
        for key in cold:
            del self._heat[key]

    def heat(self, class_name: str, attribute_name: str) -> float:
        """Current decayed heat of one attribute."""
        return self._heat.get((class_name, attribute_name), 0.0)

    # ------------------------------------------------------------------
    # Advice
    # ------------------------------------------------------------------
    def advise(
        self,
        is_indexed: Callable[[str, str], bool],
        cardinality: Callable[[str], int],
        indexable: Callable[[str, str], bool],
    ) -> List[IndexAction]:
        """Actions the current heat justifies.

        ``is_indexed`` must reflect the store's *live* index set,
        ``cardinality`` the live extent sizes, and ``indexable`` whether an
        index on the attribute is structurally possible (exists, not a
        pointer).  The caller applies the returned actions and then calls
        :meth:`applied` for each one that took effect.
        """
        actions: List[IndexAction] = []
        for (class_name, attribute_name), heat in sorted(self._heat.items()):
            key = (class_name, attribute_name)
            if heat >= self.create_threshold:
                if is_indexed(class_name, attribute_name):
                    continue
                if not indexable(class_name, attribute_name):
                    continue
                if cardinality(class_name) < self.min_cardinality:
                    continue
                actions.append(
                    IndexAction("create", class_name, attribute_name, heat)
                )
            elif heat <= self.drop_threshold and key in self.created:
                if is_indexed(class_name, attribute_name):
                    actions.append(
                        IndexAction("drop", class_name, attribute_name, heat)
                    )
        return actions

    def applied(self, action: IndexAction) -> None:
        """Record that ``action`` actually took effect on the store."""
        key = (action.class_name, action.attribute_name)
        if action.op == "create":
            self.created.add(key)
            self.creates += 1
        else:
            self.created.discard(key)
            self._heat.pop(key, None)
            self.drops += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Counters and the hottest attributes, for stats payloads."""
        hottest = sorted(
            self._heat.items(), key=lambda item: (-item[1], item[0])
        )[:8]
        return {
            "observations": self._observations,
            "creates": self.creates,
            "drops": self.drops,
            "managed": sorted(
                f"{cls}.{attr}" for cls, attr in self.created
            ),
            "hottest": [
                {"attribute": f"{cls}.{attr}", "heat": round(heat, 3)}
                for (cls, attr), heat in hottest
            ],
        }
