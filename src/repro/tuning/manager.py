"""The self-tuning manager: one feedback loop, one generation counter.

:class:`SelfTuningManager` owns the three tuning components and presents
the service with a small surface:

* :meth:`observe_execution` — called after every service execution with
  the engine mode, the measured metrics and the wall time; feeds the
  calibrator and the index advisor and decides (counter-based, so
  deterministic) when a calibration refit or an advice pass is due;
* :meth:`due_calibration` / :meth:`due_advice` — polled by the service at
  points where it holds the right locks to act;
* :meth:`should_sample_ab` — deterministic 1-in-N sampling of transformed
  queries for original-vs-optimized A/B execution;
* :meth:`observe_ab` — folds an A/B outcome into the rule payoff tracker;
* :attr:`generation` — bumped on **every externally visible tuning
  change** (weight swap applied, index created/dropped, demotion set
  changed).  The service folds it into its cache epochs, so plans and
  cached results priced under the old tuning state are never served as
  current.

The manager is thread-safe: the service calls into it from executor
threads (observations) and from the mutation path (advice application),
and a single internal lock keeps the counters consistent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.cost_model import CostWeights
from ..engine.executor import ExecutionMetrics
from ..query.query import Query
from .advisor import IndexAction, IndexAdvisor
from .calibrator import CalibrationReport, CostCalibrator
from .payoff import RulePayoffTracker


@dataclass(frozen=True)
class TuningConfig:
    """Switches and thresholds of the self-tuning loop.

    ``REPRO_TUNING`` accepts ``1``/``on``/``all`` (everything), ``0`` /
    ``off`` / empty (nothing), or a comma-separated subset of
    ``calibrate``, ``index``, ``rules``.
    """

    calibrate: bool = True
    auto_index: bool = True
    learn_rules: bool = True
    #: Executions between calibration refits (per process, not per mode).
    calibrate_interval: int = 64
    #: Executions between index-advice passes.
    advice_interval: int = 32
    #: One transformed query in this many is A/B executed.
    ab_interval: int = 8
    reservoir_size: int = 256
    min_samples: int = 24
    create_threshold: float = 16.0
    drop_threshold: float = 2.0
    decay_interval: int = 64
    min_cardinality: int = 64
    min_trials: int = 5
    demote_threshold: float = 0.25
    seed: int = 0

    @property
    def enabled(self) -> bool:
        """Whether any component is on."""
        return self.calibrate or self.auto_index or self.learn_rules

    @staticmethod
    def from_env(value: Optional[str]) -> Optional["TuningConfig"]:
        """Parse a ``REPRO_TUNING`` value; ``None`` means disabled."""
        if value is None:
            return None
        text = value.strip().lower()
        if text in ("", "0", "off", "false", "no", "none"):
            return None
        if text in ("1", "on", "true", "yes", "all"):
            return TuningConfig()
        parts = {part.strip() for part in text.split(",") if part.strip()}
        known = {"calibrate", "index", "rules"}
        unknown = parts - known
        if unknown:
            raise ValueError(
                f"REPRO_TUNING: unknown component(s) {sorted(unknown)!r}; "
                f"expected a subset of {sorted(known)!r} or 'all'/'off'"
            )
        return TuningConfig(
            calibrate="calibrate" in parts,
            auto_index="index" in parts,
            learn_rules="rules" in parts,
        )


class SelfTuningManager:
    """Bundles calibrator, advisor and payoff tracker for a service."""

    def __init__(self, config: Optional[TuningConfig] = None) -> None:
        self.config = config or TuningConfig()
        self.calibrator = CostCalibrator(
            reservoir_size=self.config.reservoir_size,
            min_samples=self.config.min_samples,
            seed=self.config.seed,
        )
        self.advisor = IndexAdvisor(
            create_threshold=self.config.create_threshold,
            drop_threshold=self.config.drop_threshold,
            decay_interval=self.config.decay_interval,
            min_cardinality=self.config.min_cardinality,
        )
        self.payoff = RulePayoffTracker(
            min_trials=self.config.min_trials,
            demote_threshold=self.config.demote_threshold,
        )
        self._lock = threading.Lock()
        self._executions = 0
        self._transformed = 0
        #: Bumped on every externally visible tuning change.
        self.generation = 0
        self.last_calibration: Optional[CalibrationReport] = None
        self.weight_swaps = 0

    # ------------------------------------------------------------------
    # Observation hooks (called on the execute path)
    # ------------------------------------------------------------------
    def observe_execution(
        self,
        mode: str,
        query: Query,
        metrics: ExecutionMetrics,
        wall_time: float,
    ) -> None:
        """Fold one execution into the calibrator and the advisor."""
        with self._lock:
            self._executions += 1
            if self.config.calibrate:
                self.calibrator.observe(mode, metrics, wall_time)
            if self.config.auto_index:
                self.advisor.observe(query)

    def due_calibration(self, mode: str) -> bool:
        """Whether a refit for ``mode`` is due at this point."""
        if not self.config.calibrate:
            return False
        with self._lock:
            return (
                self._executions > 0
                and self._executions % self.config.calibrate_interval == 0
                and self.calibrator.ready(mode)
            )

    def due_advice(self) -> bool:
        """Whether an index-advice pass is due at this point."""
        if not self.config.auto_index:
            return False
        with self._lock:
            return (
                self._executions > 0
                and self._executions % self.config.advice_interval == 0
            )

    # ------------------------------------------------------------------
    # Actions (called by the service under its own locks)
    # ------------------------------------------------------------------
    def calibrate(
        self, mode: str, base: CostWeights
    ) -> Optional[CalibrationReport]:
        """Refit weights for ``mode``; bumps the generation on success."""
        with self._lock:
            report = self.calibrator.calibrate(mode, base=base)
            if report is not None:
                self.last_calibration = report
                self.weight_swaps += 1
                self.generation += 1
            return report

    def advise(self, is_indexed, cardinality, indexable) -> List[IndexAction]:
        """Index actions the current heat justifies (see IndexAdvisor)."""
        with self._lock:
            return self.advisor.advise(is_indexed, cardinality, indexable)

    def index_applied(self, action: IndexAction) -> None:
        """Record an applied index action; bumps the generation."""
        with self._lock:
            self.advisor.applied(action)
            self.generation += 1

    # ------------------------------------------------------------------
    # Rule payoff (A/B)
    # ------------------------------------------------------------------
    def should_sample_ab(self) -> bool:
        """Deterministic 1-in-``ab_interval`` sampling of rewrites."""
        if not self.config.learn_rules:
            return False
        with self._lock:
            self._transformed += 1
            return self._transformed % self.config.ab_interval == 1

    def observe_ab(
        self,
        rules: List[Tuple[str, Tuple[int, ...]]],
        optimized_cost: float,
        original_cost: float,
    ) -> bool:
        """Fold one A/B outcome in; True when the demotion set changed.

        ``rules`` pairs each fired rule with the generation tuple of its
        referenced classes (see :meth:`RulePayoffTracker.observe`).
        """
        won = optimized_cost < original_cost
        ratio = (
            original_cost / optimized_cost if optimized_cost > 0 else 1.0
        )
        with self._lock:
            changed = self.payoff.observe(rules, won, cost_ratio=ratio)
            if changed:
                self.generation += 1
            return changed

    def is_demoted(self, rule_name: str) -> bool:
        """Whether ``rule_name`` is currently demoted."""
        with self._lock:
            return self.payoff.is_demoted(rule_name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The ``tuning`` block of the service stats payload."""
        with self._lock:
            payload: Dict[str, object] = {
                "enabled": {
                    "calibrate": self.config.calibrate,
                    "index": self.config.auto_index,
                    "rules": self.config.learn_rules,
                },
                "generation": self.generation,
                "executions_observed": self._executions,
                "weight_swaps": self.weight_swaps,
                "calibrator": self.calibrator.snapshot(),
                "advisor": self.advisor.snapshot(),
                "rules": self.payoff.snapshot(),
            }
            if self.last_calibration is not None:
                payload["last_calibration"] = self.last_calibration.as_dict()
            return payload
