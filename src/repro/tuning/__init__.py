"""Self-tuning: closing the loop from measured executions back into the
optimizer's decision inputs.

The paper's optimizer consumes three kinds of knowledge that are fixed at
setup time in the base reproduction: the cost model's weights, the set of
indexed attributes, and the semantic constraints ("rules") worth applying.
This package makes all three *measured* quantities:

* :class:`~repro.tuning.calibrator.CostCalibrator` regresses
  :class:`~repro.engine.cost_model.CostWeights` from accumulated
  ``(ExecutionMetrics, wall_time)`` pairs, per engine mode, so estimated
  and measured costs are denominated in observed seconds rather than
  hand-picked constants;
* :class:`~repro.tuning.advisor.IndexAdvisor` watches which
  ``class.attribute`` pairs the workload's selective predicates actually
  touch and proposes creating (or retiring) secondary indexes;
* :class:`~repro.tuning.payoff.RulePayoffTracker` scores each semantic
  rule by how often the rewrites it produced actually won an A/B
  comparison against the unoptimized query, and demotes rules that never
  pay off.

:class:`~repro.tuning.manager.SelfTuningManager` bundles the three behind
one generation counter so the owning service can fold "the tuning state
changed" into its cache epochs, and
:class:`~repro.tuning.manager.TuningConfig` parses the ``REPRO_TUNING``
environment variable.

Everything in this package is deterministic under a seed: the calibration
reservoir uses seeded reservoir sampling, A/B sampling is counter-based,
and the regression is exact, so two runs fed the same observations in the
same order produce identical weights, index actions and demotions.
"""

from .advisor import IndexAction, IndexAdvisor
from .calibrator import CalibrationReport, CostCalibrator
from .manager import SelfTuningManager, TuningConfig
from .payoff import RulePayoffTracker

__all__ = [
    "CalibrationReport",
    "CostCalibrator",
    "IndexAction",
    "IndexAdvisor",
    "RulePayoffTracker",
    "SelfTuningManager",
    "TuningConfig",
]
