"""Measured-cost calibration.

The cost model prices a query in abstract units by weighting the executor's
primitive-operation counters (instances retrieved, predicates evaluated,
pointer traversals, index lookups, rows output).  The hand-picked default
weights encode era-appropriate assumptions — I/O two orders of magnitude
above CPU — but nothing guarantees they match the machine the service is
actually running on.

:class:`CostCalibrator` closes that gap by regression: every execution
contributes one ``(counter vector, wall seconds)`` sample, and a ridge
regularized least-squares fit recovers per-operation weights denominated in
observed seconds.  Fits are per engine mode, because the modes really do
have different per-operation costs (a compiled vectorized predicate is far
cheaper per row than a re-interpreted one), and the resulting weights are
normalized so ``instance_retrieval == 1.0`` — the cost model's contract is
*relative* weights, and normalizing keeps the untouched batch/parallel
weights in comparable units.

Determinism: the sample reservoir uses Vitter's algorithm R driven by a
seeded generator, and the normal-equation solve is exact Gaussian
elimination, so identical observation streams yield identical weights.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import Dict, List, Optional, Tuple

from ..engine.cost_model import CostWeights
from ..engine.executor import ExecutionMetrics

#: The counter fields regressed on, in :class:`CostWeights` field order.
FEATURES: Tuple[str, ...] = (
    "instances_retrieved",
    "predicate_evaluations",
    "pointer_traversals",
    "index_lookups",
    "rows_output",
)

#: The weight fields the fit produces, aligned with :data:`FEATURES`.
WEIGHT_FIELDS: Tuple[str, ...] = (
    "instance_retrieval",
    "predicate_evaluation",
    "pointer_traversal",
    "index_lookup",
    "result_construction",
)


def _features(metrics: ExecutionMetrics) -> Tuple[float, ...]:
    return tuple(float(getattr(metrics, name)) for name in FEATURES)


def _solve(matrix: List[List[float]], rhs: List[float]) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; ``None`` when singular."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, n):
            factor = a[row][col] / a[col][col]
            for k in range(col, n + 1):
                a[row][k] -= factor * a[col][k]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n] - sum(a[row][k] * solution[k] for k in range(row + 1, n))
        solution[row] = acc / a[row][row]
    return solution


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one calibration fit."""

    mode: str
    sample_count: int
    weights: CostWeights
    #: Raw (seconds-denominated) weights before normalization.
    raw: Tuple[float, ...]
    #: Fraction of wall-time variance the fit explains (1.0 = perfect).
    r_squared: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for stats payloads."""
        return {
            "mode": self.mode,
            "samples": self.sample_count,
            "r_squared": round(self.r_squared, 6),
            "weights": {
                field: getattr(self.weights, field)
                for field in WEIGHT_FIELDS
            },
        }


class CostCalibrator:
    """Accumulates execution samples and fits cost weights from them.

    Parameters
    ----------
    reservoir_size:
        Samples retained per engine mode.  Once full, replacement follows
        seeded reservoir sampling, so the retained set stays a uniform
        sample of everything observed and old workload phases age out.
    min_samples:
        Fits are refused below this many samples (under-determined fits
        produce garbage weights).
    ridge:
        Tikhonov regularization strength.  Query workloads produce heavily
        collinear counters (rows output tracks instances retrieved), and
        the ridge term keeps the solve stable without distorting the
        dominant weights.
    seed:
        Seeds the reservoir's generator; fits are exact, so the seed is
        the only source of variation between runs.
    """

    def __init__(
        self,
        reservoir_size: int = 256,
        min_samples: int = 24,
        ridge: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self.min_samples = min_samples
        self.ridge = ridge
        self._random = Random(seed)
        self._samples: Dict[str, List[Tuple[Tuple[float, ...], float]]] = {}
        self._observed: Dict[str, int] = {}
        self.fits = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self, mode: str, metrics: ExecutionMetrics, wall_time: float
    ) -> None:
        """Record one execution's counters and wall-clock seconds."""
        if wall_time < 0:
            return
        sample = (_features(metrics), float(wall_time))
        reservoir = self._samples.setdefault(mode, [])
        seen = self._observed.get(mode, 0) + 1
        self._observed[mode] = seen
        if len(reservoir) < self.reservoir_size:
            reservoir.append(sample)
        else:
            slot = self._random.randrange(seen)
            if slot < self.reservoir_size:
                reservoir[slot] = sample

    def sample_count(self, mode: str) -> int:
        """Samples currently retained for ``mode``."""
        return len(self._samples.get(mode, ()))

    def observed_count(self, mode: str) -> int:
        """Total executions ever observed for ``mode``."""
        return self._observed.get(mode, 0)

    def ready(self, mode: str) -> bool:
        """Whether a fit for ``mode`` would be accepted."""
        return self.sample_count(mode) >= self.min_samples

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def calibrate(
        self, mode: str, base: Optional[CostWeights] = None
    ) -> Optional[CalibrationReport]:
        """Fit weights for ``mode``; ``None`` when not enough signal.

        ``base`` supplies the weight fields the fit does not touch (the
        batch/parallel shape parameters); defaults to :class:`CostWeights`
        defaults.
        """
        samples = self._samples.get(mode, [])
        if len(samples) < self.min_samples:
            return None
        n = len(FEATURES)
        xtx = [[0.0] * n for _ in range(n)]
        xty = [0.0] * n
        for features, wall in samples:
            for i in range(n):
                xty[i] += features[i] * wall
                for j in range(n):
                    xtx[i][j] += features[i] * features[j]
        # Ridge term scaled per-feature (standardized ridge): each diagonal
        # grows in proportion to its own magnitude, so features counted in
        # thousands and features counted in tens are shrunk evenly.
        floor = max(xtx[i][i] for i in range(n)) or 1.0
        for i in range(n):
            xtx[i][i] = xtx[i][i] * (1.0 + self.ridge) + self.ridge * floor * 1e-9
        raw = _solve(xtx, xty)
        if raw is None:
            return None
        # Negative weights are artifacts of collinearity, not evidence that
        # an operation has negative cost; clip before normalizing.
        clipped = [max(0.0, w) for w in raw]
        anchor = clipped[0] if clipped[0] > 0 else max(clipped)
        if anchor <= 0:
            return None
        normalized = [w / anchor for w in clipped]
        base = base or CostWeights()
        weights = replace(
            base, **{f: normalized[i] for i, f in enumerate(WEIGHT_FIELDS)}
        )
        self.fits += 1
        return CalibrationReport(
            mode=mode,
            sample_count=len(samples),
            weights=weights,
            raw=tuple(raw),
            r_squared=self._r_squared(samples, raw),
        )

    @staticmethod
    def _r_squared(
        samples: List[Tuple[Tuple[float, ...], float]], raw: List[float]
    ) -> float:
        mean = sum(wall for _, wall in samples) / len(samples)
        total = sum((wall - mean) ** 2 for _, wall in samples)
        residual = sum(
            (wall - sum(f * w for f, w in zip(features, raw))) ** 2
            for features, wall in samples
        )
        if total <= 0:
            return 1.0 if residual <= 1e-18 else 0.0
        return max(0.0, 1.0 - residual / total)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Per-mode sample counts for stats payloads."""
        return {
            "reservoir_size": self.reservoir_size,
            "fits": self.fits,
            "modes": {
                mode: {
                    "retained": len(reservoir),
                    "observed": self._observed.get(mode, 0),
                }
                for mode, reservoir in sorted(self._samples.items())
            },
        }
