"""Ablation: priority queue under a transformation budget (Section 4).

Section 4 of the paper suggests turning the transformation queue into a
priority queue when transformations must be rationed: *"priorities can be
assigned to different transformation rules and Q becomes a priority queue.
This enhancement is very useful when it is necessary to assign a budget and
limit the number of transformations."*

This ablation gives both queue disciplines the same small transformation
budget and measures how much of the available benefit each realises: the
number of index introductions performed (the most profitable rule, served
first by the priority queue) and the resulting execution-cost ratio of the
optimized queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.optimizer import OptimizerConfig, SemanticQueryOptimizer
from ..core.rules import TransformationKind
from ..data.generator import TABLE_4_1_SPECS, DatabaseSpec
from ..data.workload import build_evaluation_setup
from ..engine.executor import QueryExecutor
from ..query.query import Query
from .reporting import format_table


@dataclass
class PriorityMeasurement:
    """Aggregate outcome of one queue discipline under a budget."""

    discipline: str
    budget: int
    index_introductions: int = 0
    eliminations: int = 0
    restriction_introductions: int = 0
    total_fired: int = 0
    mean_cost_ratio: float = 1.0


@dataclass
class PriorityAblationResult:
    """Measurements for both disciplines."""

    measurements: Dict[str, PriorityMeasurement] = field(default_factory=dict)

    def as_table(self) -> str:
        """Aligned comparison table."""
        rows = []
        for name in sorted(self.measurements):
            m = self.measurements[name]
            rows.append(
                [
                    name,
                    m.budget,
                    m.index_introductions,
                    m.eliminations,
                    m.restriction_introductions,
                    m.total_fired,
                    m.mean_cost_ratio,
                ]
            )
        return format_table(
            [
                "queue",
                "budget",
                "index introductions",
                "eliminations",
                "restriction introductions",
                "fired",
                "mean cost ratio",
            ],
            rows,
        )


def run_priority_ablation(
    spec: DatabaseSpec = TABLE_4_1_SPECS["DB2"],
    query_count: int = 40,
    seed: int = 7,
    budget: int = 1,
    queries: Optional[Sequence[Query]] = None,
) -> PriorityAblationResult:
    """Compare FIFO and priority queues under a per-query transformation budget."""
    setup = build_evaluation_setup(spec, query_count=query_count, seed=seed)
    workload = list(queries) if queries is not None else setup.queries
    executor = QueryExecutor(setup.schema, setup.store)
    cost_model = setup.cost_model

    result = PriorityAblationResult()
    for use_priority in (False, True):
        name = "priority" if use_priority else "fifo"
        optimizer = SemanticQueryOptimizer(
            setup.schema,
            repository=setup.repository,
            cost_model=cost_model,
            config=OptimizerConfig(
                use_priority_queue=use_priority,
                transformation_budget=budget,
                record_access_statistics=False,
            ),
        )
        measurement = PriorityMeasurement(discipline=name, budget=budget)
        ratios: List[float] = []
        for query in workload:
            outcome = optimizer.optimize(query)
            measurement.total_fired += len(
                [r for r in outcome.trace if r.constraint_name]
            )
            measurement.index_introductions += len(
                outcome.trace.of_kind(TransformationKind.INDEX_INTRODUCTION)
            )
            measurement.eliminations += len(outcome.trace.eliminations())
            measurement.restriction_introductions += len(
                outcome.trace.of_kind(TransformationKind.RESTRICTION_INTRODUCTION)
            )
            original = cost_model.measured_cost(executor.execute(query).metrics)
            optimized = cost_model.measured_cost(
                executor.execute(outcome.optimized).metrics
            )
            ratios.append(optimized / original if original > 0 else 1.0)
        measurement.mean_cost_ratio = sum(ratios) / len(ratios) if ratios else 1.0
        result.measurements[name] = measurement
    return result
