"""Lightweight reporting helpers shared by the experiment harnesses.

Experiments return plain data structures; these helpers turn them into the
aligned text tables printed by the benchmark harness and the examples, in a
layout close to the paper's tables.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned text table."""
    def render(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_histogram(
    buckets: Mapping[str, int], total: int, bar_width: int = 30
) -> str:
    """Render a bucket histogram with proportional bars."""
    lines = []
    peak = max(buckets.values()) if buckets else 1
    for label, count in buckets.items():
        bar = "#" * (0 if peak == 0 else int(round(bar_width * count / peak)))
        share = 0.0 if total == 0 else 100.0 * count / total
        lines.append(f"{label:>8}  {count:4d}  {share:5.1f}%  {bar}")
    return "\n".join(lines)


def percentage(part: int, whole: int) -> float:
    """``part`` as a percentage of ``whole`` (0.0 when ``whole`` is 0)."""
    return 0.0 if whole == 0 else 100.0 * part / whole


def summarize_series(values: Iterable[float]) -> Dict[str, float]:
    """Minimum / mean / median / maximum of a numeric series."""
    data: List[float] = sorted(values)
    if not data:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    mid = len(data) // 2
    median = (
        data[mid] if len(data) % 2 == 1 else 0.5 * (data[mid - 1] + data[mid])
    )
    return {
        "min": data[0],
        "mean": sum(data) / len(data),
        "median": median,
        "max": data[-1],
    }
