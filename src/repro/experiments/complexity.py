"""Experiment: the O(m·n) complexity claim (Section 4).

The paper argues that, because transformations are tentative and never
preclude one another, the transformation step is bounded by ``O(m·n)`` where
``m`` is the number of distinct predicates and ``n`` the number of relevant
constraints.  This harness measures that claim directly on synthetic
constraint chains: it builds families of queries and constraint sets whose
``m·n`` product grows, runs the transformation step (initialization +
queue + transformation, no retrieval, no execution) and records the time and
the number of transformations fired.  The expectation is near-linear growth
of time with ``m·n`` — and, as a sanity check, the number of fired
transformations never exceeds the number of constraints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import Predicate
from ..core.initialization import initialize
from ..core.transformation import TransformationEngine
from ..query.query import Query
from ..schema.attribute import DomainType, value_attribute
from ..schema.object_class import ObjectClass
from ..schema.schema import Schema
from .reporting import format_table


def build_chain_schema(attribute_count: int) -> Schema:
    """A single-class schema with ``attribute_count`` integer attributes."""
    attributes = tuple(
        value_attribute(f"a{i}", DomainType.INTEGER, indexed=(i % 4 == 0))
        for i in range(attribute_count)
    )
    return Schema([ObjectClass(name="item", attributes=attributes)], (), name="chain")


def build_chain_constraints(count: int) -> List[SemanticConstraint]:
    """A chain ``a0=1 -> a1=1 -> ... -> a<count>=1`` of intra-class constraints.

    Every constraint's consequent is the next constraint's antecedent, so a
    single query predicate ``a0 = 1`` eventually fires the whole chain — the
    worst case for the transformation loop.
    """
    constraints = []
    for index in range(count):
        constraints.append(
            SemanticConstraint.build(
                name=f"chain{index}",
                antecedents=[Predicate.equals(f"item.a{index}", 1)],
                consequent=Predicate.equals(f"item.a{index + 1}", 1),
                anchor_classes={"item"},
            )
        )
    return constraints


def build_chain_query(predicate_count: int) -> Query:
    """A single-class query with ``predicate_count`` seed predicates."""
    predicates = tuple(
        Predicate.equals(f"item.a{i}", 1) for i in range(predicate_count)
    )
    return Query(
        projections=("item.a0",),
        selective_predicates=predicates,
        classes=("item",),
        name=f"chain_query_{predicate_count}",
    )


@dataclass
class ComplexityPoint:
    """One measured (m, n) configuration."""

    predicates: int
    constraints: int
    product: int
    transformation_time: float
    fired: int


@dataclass
class ComplexityResult:
    """All measured configurations."""

    points: List[ComplexityPoint] = field(default_factory=list)

    def as_table(self) -> str:
        """Aligned table of the scaling measurements."""
        rows = [
            [
                p.predicates,
                p.constraints,
                p.product,
                p.transformation_time * 1000.0,
                p.fired,
                (p.transformation_time * 1e6 / p.product) if p.product else 0.0,
            ]
            for p in self.points
        ]
        return format_table(
            [
                "predicates (m)",
                "constraints (n)",
                "m*n",
                "time (ms)",
                "fired",
                "us per cell",
            ],
            rows,
        )

    def time_per_cell(self) -> List[float]:
        """Seconds of transformation time per table cell, per configuration.

        For an O(m·n) algorithm this series stays roughly flat as m·n grows.
        """
        return [
            p.transformation_time / p.product for p in self.points if p.product > 0
        ]


def run_complexity(
    constraint_counts: Tuple[int, ...] = (8, 16, 32, 64, 128),
    seed_predicates: int = 1,
    repeats: int = 3,
) -> ComplexityResult:
    """Measure transformation time as the constraint chain grows."""
    result = ComplexityResult()
    for count in constraint_counts:
        schema = build_chain_schema(count + 2)
        constraints = build_chain_constraints(count)
        query = build_chain_query(seed_predicates)
        best_time: Optional[float] = None
        fired = 0
        for _ in range(max(1, repeats)):
            init = initialize(query, constraints, assume_relevant=False)
            engine = TransformationEngine(init.table, schema)
            start = time.perf_counter()
            engine.run()
            elapsed = time.perf_counter() - start
            fired = engine.stats.fired
            if best_time is None or elapsed < best_time:
                best_time = elapsed
        assert best_time is not None
        predicates = count + seed_predicates
        result.points.append(
            ComplexityPoint(
                predicates=predicates,
                constraints=count,
                product=predicates * count,
                transformation_time=best_time,
                fired=fired,
            )
        )
    return result
