"""Ablation: constraint grouping policies (Section 3).

The paper motivates two refinements of the constraint grouping scheme:
attaching each constraint to its *least frequently accessed* class should
cause fewer irrelevant constraints to be fetched than an arbitrary
assignment, and an even (balanced) distribution is mentioned as an
alternative.  This ablation quantifies the difference: it builds the same
constraint set under each policy, replays a skewed workload, and reports how
many constraints were fetched versus how many were actually relevant
(the retrieval precision) under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..constraints.groups import GroupingPolicy
from ..constraints.repository import ConstraintRepository
from ..data import evaluation
from ..data.generator import TABLE_4_1_SPECS, DatabaseGenerator, DatabaseSpec
from ..data.workload import build_workload
from ..query.query import Query
from ..schema.statistics import AccessStatistics
from .reporting import format_table


@dataclass
class GroupingMeasurement:
    """Aggregate retrieval statistics for one grouping policy."""

    policy: str
    queries: int = 0
    fetched: int = 0
    relevant: int = 0
    groups_touched: int = 0

    @property
    def irrelevant(self) -> int:
        """Constraints fetched but irrelevant to their query."""
        return self.fetched - self.relevant

    @property
    def precision(self) -> float:
        """Fraction of fetched constraints that were relevant."""
        return 1.0 if self.fetched == 0 else self.relevant / self.fetched


@dataclass
class GroupingAblationResult:
    """Measurements for every policy."""

    measurements: Dict[str, GroupingMeasurement] = field(default_factory=dict)

    def as_table(self) -> str:
        """Aligned comparison table."""
        rows = []
        for name in sorted(self.measurements):
            m = self.measurements[name]
            rows.append(
                [name, m.queries, m.fetched, m.relevant, m.irrelevant, m.precision]
            )
        return format_table(
            ["policy", "queries", "fetched", "relevant", "irrelevant", "precision"],
            rows,
        )


def run_grouping_ablation(
    spec: DatabaseSpec = TABLE_4_1_SPECS["DB1"],
    query_count: int = 40,
    seed: int = 7,
    policies: Sequence[GroupingPolicy] = (
        GroupingPolicy.ARBITRARY,
        GroupingPolicy.BALANCED,
        GroupingPolicy.LEAST_FREQUENT,
    ),
    queries: Optional[Sequence[Query]] = None,
) -> GroupingAblationResult:
    """Compare grouping policies on the same workload.

    The workload produced by the path generator is naturally skewed (central
    classes such as ``vehicle`` appear on many more paths than peripheral
    ones), which is exactly the situation the least-frequently-accessed
    assignment exploits.
    """
    schema = evaluation.build_evaluation_schema()
    constraints = evaluation.build_evaluation_constraints()
    if queries is None:
        database = DatabaseGenerator(schema, constraints, seed=seed).generate(spec)
        queries = build_workload(
            schema,
            database.value_catalog,
            count=query_count,
            seed=seed,
            constraints=constraints,
        )

    # Warm access statistics from the workload, as the running system would.
    access = AccessStatistics()
    for query in queries:
        access.record_query(query.classes)

    result = GroupingAblationResult()
    for policy in policies:
        repository = ConstraintRepository(
            schema, policy=policy, statistics=access
        )
        repository.add_all(constraints)
        repository.precompile()
        measurement = GroupingMeasurement(policy=policy.value)
        for query in queries:
            _relevant, stats = repository.retrieve_relevant(
                query.classes,
                query_relationships=query.relationships,
                record_access=False,
            )
            measurement.queries += 1
            measurement.fetched += stats.fetched
            measurement.relevant += stats.relevant
            measurement.groups_touched += stats.groups_touched
        result.measurements[policy.value] = measurement
    return result
