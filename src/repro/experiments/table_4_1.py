"""Experiment: Table 4.1 — the four evaluation database instances.

The paper's Table 4.1 lists, for DB1–DB4, the number of object classes, the
average class cardinality, the number of relationships and the average
relationship cardinality.  This experiment generates each database with
:class:`repro.data.generator.DatabaseGenerator` and reports the same four
statistics measured from the generated store, so the reader can confirm the
synthetic instances have the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..data.generator import TABLE_4_1_SPECS, DatabaseGenerator, DatabaseSpec
from .reporting import format_table

#: The paper's Table 4.1, used for side-by-side comparison in reports.
PAPER_TABLE_4_1: Dict[str, Dict[str, float]] = {
    "DB1": {
        "object_classes": 5,
        "avg_class_cardinality": 52,
        "relationships": 6,
        "avg_relationship_cardinality": 77,
    },
    "DB2": {
        "object_classes": 5,
        "avg_class_cardinality": 104,
        "relationships": 6,
        "avg_relationship_cardinality": 154,
    },
    "DB3": {
        "object_classes": 5,
        "avg_class_cardinality": 208,
        "relationships": 6,
        "avg_relationship_cardinality": 308,
    },
    "DB4": {
        "object_classes": 5,
        "avg_class_cardinality": 208,
        "relationships": 6,
        "avg_relationship_cardinality": 616,
    },
}


@dataclass
class Table41Result:
    """Measured database shapes for every generated instance."""

    rows: List[Dict[str, float]] = field(default_factory=list)

    def as_table(self) -> str:
        """Aligned text table comparing paper and measured values."""
        headers = [
            "database",
            "classes (paper)",
            "classes",
            "avg class card (paper)",
            "avg class card",
            "relationships (paper)",
            "relationships",
            "avg rel card (paper)",
            "avg rel card",
        ]
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE_4_1.get(row["database"], {})
            table_rows.append(
                [
                    row["database"],
                    paper.get("object_classes", "-"),
                    row["object_classes"],
                    paper.get("avg_class_cardinality", "-"),
                    row["avg_class_cardinality"],
                    paper.get("relationships", "-"),
                    row["relationships"],
                    paper.get("avg_relationship_cardinality", "-"),
                    row["avg_relationship_cardinality"],
                ]
            )
        return format_table(headers, table_rows)


def run_table_4_1(
    specs: Optional[Mapping[str, DatabaseSpec]] = None,
    seed: int = 7,
) -> Table41Result:
    """Generate every database instance and measure its Table 4.1 statistics."""
    specs = dict(specs or TABLE_4_1_SPECS)
    generator = DatabaseGenerator(seed=seed)
    result = Table41Result()
    for name in sorted(specs):
        database = generator.generate(specs[name])
        result.rows.append(database.summary())
    return result
