"""Experiment: Figure 4.1 — query transformation time.

Figure 4.1 of the paper plots the query transformation time of the 40 test
queries against the number of object classes in the query, with one series
per number of relevant constraints (roughly 1, 5 and 9 in the paper's plot).
The conclusion drawn is that *"query transformation time is clearly
proportional to both the number of object classes in the query and, to a
lesser extent, the number of relevant constraints"*, with every
transformation finishing well under a second.

This harness reproduces the measurement: it optimizes a workload of path
queries, records the transformation time (all optimizer phases except
constraint retrieval, as in the paper) together with the query's class count
and the number of relevant constraints, and aggregates mean times per
(class count, constraint bucket) cell.  Absolute values are hardware
dependent — the shape (monotone growth along both axes) is the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.optimizer import OptimizerConfig
from ..data.generator import TABLE_4_1_SPECS, DatabaseSpec
from ..data.workload import build_evaluation_setup
from ..query.query import Query
from ..service import OptimizationService, ServiceCacheSnapshot
from .reporting import format_table, summarize_series


@dataclass
class Figure41Point:
    """One measured query."""

    query_name: str
    class_count: int
    relevant_constraints: int
    transformation_time: float
    retrieval_time: float
    transformations_applied: int


@dataclass
class Figure41Result:
    """All measurements plus the aggregated series of Figure 4.1."""

    points: List[Figure41Point] = field(default_factory=list)
    repeats: int = 1
    cache: Optional[ServiceCacheSnapshot] = None

    def series(
        self, constraint_buckets: Sequence[Tuple[int, int]] = ((0, 2), (3, 5), (6, 99))
    ) -> Dict[str, Dict[int, float]]:
        """Mean transformation time per class count, per constraint bucket.

        Buckets are (low, high) inclusive ranges over the number of relevant
        constraints, standing in for the paper's per-constraint-count series.
        """
        result: Dict[str, Dict[int, float]] = {}
        for low, high in constraint_buckets:
            label = f"{low}-{high} constraints"
            per_class: Dict[int, List[float]] = {}
            for point in self.points:
                if low <= point.relevant_constraints <= high:
                    per_class.setdefault(point.class_count, []).append(
                        point.transformation_time
                    )
            result[label] = {
                classes: sum(times) / len(times)
                for classes, times in sorted(per_class.items())
            }
        return result

    def max_transformation_time(self) -> float:
        """The slowest observed transformation, in seconds."""
        return max((p.transformation_time for p in self.points), default=0.0)

    def as_table(self) -> str:
        """Aligned table: class count vs mean transformation time (ms)."""
        per_class: Dict[int, List[float]] = {}
        per_class_constraints: Dict[int, List[int]] = {}
        for point in self.points:
            per_class.setdefault(point.class_count, []).append(
                point.transformation_time
            )
            per_class_constraints.setdefault(point.class_count, []).append(
                point.relevant_constraints
            )
        rows = []
        for classes in sorted(per_class):
            stats = summarize_series(per_class[classes])
            constraints = per_class_constraints[classes]
            rows.append(
                [
                    classes,
                    len(per_class[classes]),
                    sum(constraints) / len(constraints),
                    stats["mean"] * 1000.0,
                    stats["max"] * 1000.0,
                ]
            )
        return format_table(
            [
                "classes in query",
                "queries",
                "avg relevant constraints",
                "mean transform time (ms)",
                "max transform time (ms)",
            ],
            rows,
        )


def run_figure_4_1(
    spec: DatabaseSpec = TABLE_4_1_SPECS["DB1"],
    query_count: int = 40,
    seed: int = 7,
    repeats: int = 3,
    queries: Optional[Sequence[Query]] = None,
) -> Figure41Result:
    """Measure transformation times for the workload.

    Parameters
    ----------
    spec:
        Database instance used to build the value catalog and repository
        (transformation time does not depend on database size, so DB1 is the
        default, as cheap to build as any).
    query_count:
        Workload size (the paper uses 40).
    seed:
        Workload seed.
    repeats:
        Each query is optimized this many times and the fastest run is kept,
        reducing timer noise on fast machines.
    queries:
        Optional explicit workload (overrides the generated one).
    """
    setup = build_evaluation_setup(spec, query_count=query_count, seed=seed)
    service = OptimizationService(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    workload = list(queries) if queries is not None else setup.queries
    result = Figure41Result(repeats=repeats)
    for query in workload:
        best = None
        retrieval_time = 0.0
        # Earlier workload queries may share this query's class set, so the
        # retrieval cache is dropped here to make the first attempt measure
        # a real grouped retrieval rather than a dict lookup.
        setup.repository.clear_retrieval_cache()
        for attempt in range(max(1, repeats)):
            # The pipeline must actually run on every repeat (this is a
            # timing experiment), so the result cache is bypassed; the
            # repository's retrieval cache still serves the repeats, which
            # matches the paper's exclusion of retrieval I/O from the
            # reported transformation time.
            outcome = service.optimize(query, use_cache=False).result
            if attempt == 0:
                retrieval_time = outcome.timings.retrieval
            if best is None or (
                outcome.timings.transformation_only
                < best.timings.transformation_only
            ):
                best = outcome
        assert best is not None
        result.points.append(
            Figure41Point(
                query_name=query.name or "",
                class_count=query.class_count,
                relevant_constraints=best.relevant_constraints,
                transformation_time=best.timings.transformation_only,
                retrieval_time=retrieval_time,
                transformations_applied=best.transformations_applied,
            )
        )
    result.cache = service.cache_stats()
    return result
