"""Run every experiment and print a consolidated report.

``python -m repro.experiments.runner`` regenerates all of the paper's tables
and figures (plus the ablations) and prints their text renderings; the same
entry points are exercised, with smaller parameters, by the pytest-benchmark
suite under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from .ablation_baseline import BaselineComparison, run_baseline_ablation
from .ablation_grouping import GroupingAblationResult, run_grouping_ablation
from .ablation_priority import PriorityAblationResult, run_priority_ablation
from .complexity import ComplexityResult, run_complexity
from .figure_4_1 import Figure41Result, run_figure_4_1
from .table_4_1 import Table41Result, run_table_4_1
from .table_4_2 import Table42Result, run_table_4_2


@dataclass
class ExperimentReport:
    """Results of a full experiment run."""

    table_4_1: Optional[Table41Result] = None
    figure_4_1: Optional[Figure41Result] = None
    table_4_2: Optional[Table42Result] = None
    complexity: Optional[ComplexityResult] = None
    grouping: Optional[GroupingAblationResult] = None
    priority: Optional[PriorityAblationResult] = None
    baseline: Optional[BaselineComparison] = None

    def render(self) -> str:
        """The consolidated text report."""
        sections = []
        if self.table_4_1 is not None:
            sections.append("== Table 4.1: database instances ==")
            sections.append(self.table_4_1.as_table())
        if self.figure_4_1 is not None:
            sections.append("")
            sections.append("== Figure 4.1: query transformation time ==")
            sections.append(self.figure_4_1.as_table())
            if self.figure_4_1.cache is not None:
                sections.append(
                    f"service caches: {self.figure_4_1.cache.describe()}"
                )
        if self.table_4_2 is not None:
            sections.append("")
            sections.append("== Table 4.2: optimized/original cost ratio buckets ==")
            sections.append(self.table_4_2.as_table())
            for name in sorted(self.table_4_2.rows):
                row = self.table_4_2.rows[name]
                if row.cache is not None:
                    sections.append(
                        f"service caches ({name}): {row.cache.describe()}"
                    )
        if self.complexity is not None:
            sections.append("")
            sections.append("== Complexity: O(m*n) transformation scaling ==")
            sections.append(self.complexity.as_table())
        if self.grouping is not None:
            sections.append("")
            sections.append("== Ablation: constraint grouping policies ==")
            sections.append(self.grouping.as_table())
        if self.priority is not None:
            sections.append("")
            sections.append("== Ablation: priority queue under a budget ==")
            sections.append(self.priority.as_table())
        if self.baseline is not None:
            sections.append("")
            sections.append("== Ablation: tentative vs straight-forward baseline ==")
            sections.append(self.baseline.as_table())
        return "\n".join(sections)


def run_all(
    query_count: int = 40,
    seed: int = 7,
    quick: bool = False,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Run every experiment.

    ``quick`` shrinks workloads so the full report finishes in a few seconds
    (used by tests); the default parameters match the paper's setup.
    ``engine`` selects the execution engine for the cost-measuring
    experiments (``"rowwise"`` / ``"vectorized"`` / ``"parallel"``;
    ``None`` = process default) and ``workers`` the parallel engine's pool
    width — counters, and therefore the reported numbers, are
    engine-independent.
    """
    count = 12 if quick else query_count
    report = ExperimentReport()
    report.table_4_1 = run_table_4_1(seed=seed)
    report.figure_4_1 = run_figure_4_1(
        query_count=count, seed=seed, repeats=1 if quick else 3
    )
    report.table_4_2 = run_table_4_2(
        query_count=count,
        seed=seed,
        check_answers=not quick,
        execution_mode=engine,
        workers=workers,
    )
    report.complexity = run_complexity(
        constraint_counts=(8, 16, 32) if quick else (8, 16, 32, 64, 128),
        repeats=1 if quick else 3,
    )
    report.grouping = run_grouping_ablation(query_count=count, seed=seed)
    report.priority = run_priority_ablation(query_count=count, seed=seed)
    report.baseline = run_baseline_ablation(
        query_count=min(count, 25), seed=seed, orderings=2 if quick else 4
    )
    return report


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40, help="workload size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads for a fast run"
    )
    parser.add_argument(
        "--engine",
        choices=["rowwise", "vectorized", "parallel"],
        default=None,
        help="execution engine for the cost-measuring experiments",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool width for the parallel engine",
    )
    args = parser.parse_args(argv)
    report = run_all(
        query_count=args.queries,
        seed=args.seed,
        quick=args.quick,
        engine=args.engine,
        workers=args.workers,
    )
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
