"""Experiment harness regenerating the paper's tables and figures.

One module per experiment (Table 4.1, Figure 4.1, Table 4.2, the O(m·n)
complexity claim) plus the three ablations called out in DESIGN.md
(constraint grouping policies, priority queue under a budget, tentative vs
straight-forward baseline) and a runner that produces the consolidated
report recorded in EXPERIMENTS.md.
"""

from .table_4_1 import PAPER_TABLE_4_1, Table41Result, run_table_4_1
from .figure_4_1 import Figure41Point, Figure41Result, run_figure_4_1
from .table_4_2 import (
    BUCKET_LABELS,
    DEFAULT_OVERHEAD_UNITS_PER_SECOND,
    QueryCostRecord,
    Table42Result,
    Table42Row,
    run_table_4_2,
)
from .complexity import (
    ComplexityPoint,
    ComplexityResult,
    build_chain_constraints,
    build_chain_query,
    build_chain_schema,
    run_complexity,
)
from .ablation_grouping import (
    GroupingAblationResult,
    GroupingMeasurement,
    run_grouping_ablation,
)
from .ablation_priority import (
    PriorityAblationResult,
    PriorityMeasurement,
    run_priority_ablation,
)
from .ablation_baseline import BaselineComparison, run_baseline_ablation
from .runner import ExperimentReport, run_all
from .reporting import format_histogram, format_table, percentage, summarize_series

__all__ = [
    "BUCKET_LABELS",
    "BaselineComparison",
    "ComplexityPoint",
    "ComplexityResult",
    "DEFAULT_OVERHEAD_UNITS_PER_SECOND",
    "ExperimentReport",
    "Figure41Point",
    "Figure41Result",
    "GroupingAblationResult",
    "GroupingMeasurement",
    "PAPER_TABLE_4_1",
    "PriorityAblationResult",
    "PriorityMeasurement",
    "QueryCostRecord",
    "Table41Result",
    "Table42Result",
    "Table42Row",
    "build_chain_constraints",
    "build_chain_query",
    "build_chain_schema",
    "format_histogram",
    "format_table",
    "percentage",
    "run_all",
    "run_baseline_ablation",
    "run_complexity",
    "run_figure_4_1",
    "run_grouping_ablation",
    "run_priority_ablation",
    "run_table_4_1",
    "run_table_4_2",
    "summarize_series",
]
