"""Ablation: tentative application vs the straight-forward baseline (Section 4).

The paper argues two properties of its tentative-application strategy over
the straight-forward "evaluate profitability and apply immediately"
approach:

1. the outcome is **order-insensitive** — the straight-forward approach can
   produce different final queries depending on the order constraints are
   considered, because an early elimination can destroy the antecedent of a
   later introduction;
2. the outcome is **at least as good**, while needing fewer profitability
   evaluations ("it is only necessary to test the profitability of a subset
   of transformations").

This ablation runs both optimizers on the same workload, re-runs the
baseline under several random constraint orderings, and reports: how many
queries end up with order-dependent results under the baseline, how many
distinct outcomes each optimizer produces across orderings (the tentative
optimizer must always produce exactly one), the mean execution-cost ratio
achieved by each, and the number of profitability checks performed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.baseline import StraightforwardOptimizer
from ..core.optimizer import OptimizerConfig, SemanticQueryOptimizer
from ..data.generator import TABLE_4_1_SPECS, DatabaseSpec
from ..data.workload import build_evaluation_setup
from ..engine.executor import QueryExecutor
from ..query.equivalence import structurally_equal
from ..query.query import Query
from .reporting import format_table


@dataclass
class BaselineComparison:
    """Aggregate comparison between the two strategies."""

    queries: int = 0
    orderings: int = 0
    order_sensitive_queries: int = 0
    tentative_mean_ratio: float = 1.0
    baseline_mean_ratio: float = 1.0
    tentative_never_worse: bool = True
    tentative_profitability_checks: int = 0
    baseline_profitability_checks: int = 0

    def as_table(self) -> str:
        """Aligned summary table."""
        rows = [
            ["queries", self.queries],
            ["constraint orderings tried", self.orderings],
            ["order-sensitive queries (baseline)", self.order_sensitive_queries],
            ["order-sensitive queries (tentative)", 0],
            ["mean cost ratio (tentative)", self.tentative_mean_ratio],
            ["mean cost ratio (baseline)", self.baseline_mean_ratio],
            ["tentative never worse than baseline", self.tentative_never_worse],
            ["profitability checks (tentative)", self.tentative_profitability_checks],
            ["profitability checks (baseline)", self.baseline_profitability_checks],
        ]
        return format_table(["metric", "value"], rows)


def run_baseline_ablation(
    spec: DatabaseSpec = TABLE_4_1_SPECS["DB2"],
    query_count: int = 25,
    seed: int = 7,
    orderings: int = 4,
    queries: Optional[Sequence[Query]] = None,
) -> BaselineComparison:
    """Compare the tentative optimizer against the straight-forward baseline."""
    setup = build_evaluation_setup(spec, query_count=query_count, seed=seed)
    workload = list(queries) if queries is not None else setup.queries
    executor = QueryExecutor(setup.schema, setup.store)
    cost_model = setup.cost_model
    closed_constraints = list(setup.repository.constraints())

    tentative = SemanticQueryOptimizer(
        setup.schema,
        repository=setup.repository,
        cost_model=cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )

    comparison = BaselineComparison(queries=len(workload), orderings=orderings)
    rng = random.Random(seed)
    tentative_ratios: List[float] = []
    baseline_ratios: List[float] = []

    for query in workload:
        original_cost = cost_model.measured_cost(executor.execute(query).metrics)

        outcome = tentative.optimize(query)
        optimized_cost = cost_model.measured_cost(
            executor.execute(outcome.optimized).metrics
        )
        tentative_ratio = (
            optimized_cost / original_cost if original_cost > 0 else 1.0
        )
        tentative_ratios.append(tentative_ratio)
        comparison.tentative_profitability_checks += len(
            outcome.retained_optional
        ) + len(outcome.discarded_optional)

        # Baseline under several constraint orderings.
        baseline_results = []
        ordering_ratios: List[float] = []
        for _ in range(max(1, orderings)):
            ordering = list(closed_constraints)
            rng.shuffle(ordering)
            baseline = StraightforwardOptimizer(
                setup.schema, ordering, cost_model=cost_model
            )
            baseline_outcome = baseline.optimize(query)
            comparison.baseline_profitability_checks += (
                baseline_outcome.profitability_checks
            )
            cost = cost_model.measured_cost(
                executor.execute(baseline_outcome.optimized).metrics
            )
            ordering_ratios.append(
                cost / original_cost if original_cost > 0 else 1.0
            )
            baseline_results.append(baseline_outcome.optimized)
        mean_ordering_ratio = sum(ordering_ratios) / len(ordering_ratios)
        baseline_ratios.append(mean_ordering_ratio)

        distinct = []
        for candidate in baseline_results:
            if not any(structurally_equal(candidate, other) for other in distinct):
                distinct.append(candidate)
        if len(distinct) > 1:
            comparison.order_sensitive_queries += 1
        # "At least as good" holds under the paper's assumption of an
        # accurate cost model; our estimates leave a small tolerance.
        if tentative_ratio > mean_ordering_ratio * 1.05 + 1e-6:
            comparison.tentative_never_worse = False

    comparison.tentative_mean_ratio = (
        sum(tentative_ratios) / len(tentative_ratios) if tentative_ratios else 1.0
    )
    comparison.baseline_mean_ratio = (
        sum(baseline_ratios) / len(baseline_ratios) if baseline_ratios else 1.0
    )
    return comparison
