"""Experiment: Table 4.2 — ratio of optimized cost to original cost.

The paper's Table 4.2 buckets, for each database instance DB1–DB4, the ratio
``cost(optimized query, including query transformation time) /
cost(original query)`` of the 40 test queries into 10 %-wide buckets from
0 % to 110 %.  The headline observations are:

* on the smallest database (DB1) optimization is often not worth it — 40 %
  of the queries got *slower*, though never by more than about 10 %,
  because the transformation overhead outweighs the small savings;
* on the largest database (DB4) 67 % of the queries ran faster, 27 % of them
  dramatically so (queries that originally "took hours ... were able to be
  executed much faster").

This harness reproduces the measurement on our substrate.  The same 40-query
workload is executed against every generated database instance; the cost of
a query is the executor's weighted operation count
(:meth:`repro.engine.cost_model.CostModel.measured_cost`), and the
transformation overhead is added to the optimized cost after converting
wall-clock seconds into cost units with a hardware calibration factor
(:data:`DEFAULT_OVERHEAD_UNITS_PER_SECOND`) — our machine optimizes in
fractions of a millisecond where the paper's SUN-3/160 needed a large
fraction of a second, so the raw wall-clock would make the overhead
invisible and the DB1 row meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.optimizer import OptimizerConfig
from ..data import evaluation
from ..data.generator import TABLE_4_1_SPECS, DatabaseGenerator, DatabaseSpec
from ..data.workload import constraint_selection_pool
from ..engine.cost_model import CostModel
from ..engine.modes import ExecutionMode, create_executor
from ..engine.statistics import DatabaseStatistics
from ..constraints.repository import ConstraintRepository
from ..query.equivalence import answers_match
from ..query.generator import GeneratorConfig, QueryGenerator
from ..query.query import Query
from ..service import OptimizationService, ServiceCacheSnapshot
from .reporting import format_table, percentage

#: Conversion from transformation wall-clock seconds to cost units when the
#: overhead is added to the optimized cost.  Calibration: in the paper the
#: transformation step (up to ~0.4 s on a 1991 SUN-3/160) cost roughly
#: 10–30 % of a DB1 query's execution time (1–2 s), which is what produces
#: the 100–110 % bucket of Table 4.2.  On our substrate a DB1 query costs on
#: the order of a few hundred cost units (nested-loop execution) and the
#: transformation step takes ~0.2–0.4 ms, so 200 000 units/second puts the
#: overhead in the same 10–30 % band for a typical DB1 query while remaining
#: marginal for the much more expensive DB4 queries — i.e. the calibration
#: preserves the paper's *relative* overhead, which is what Table 4.2 is
#: about.  Pass ``overhead_units_per_second=0`` for pure execution ratios.
DEFAULT_OVERHEAD_UNITS_PER_SECOND = 200_000.0

#: Bucket labels of the paper's Table 4.2 (upper bound of each 10% bucket).
BUCKET_LABELS = [f"{low}%" for low in range(0, 120, 10)]

#: The paper's qualitative summary of Table 4.2, used in reports.
PAPER_SUMMARY = {
    "DB1": "40% of queries slower (by <= ~10%), 34% faster",
    "DB4": "67% of queries faster, 27% dramatically",
}


@dataclass
class QueryCostRecord:
    """Cost measurement for one query on one database instance."""

    query_name: str
    original_cost: float
    optimized_cost: float
    transformation_overhead: float
    ratio: float
    was_transformed: bool
    answers_agree: bool


@dataclass
class Table42Row:
    """The Table 4.2 row for one database instance."""

    database: str
    records: List[QueryCostRecord] = field(default_factory=list)
    cache: Optional[ServiceCacheSnapshot] = None

    def ratios(self) -> List[float]:
        """All cost ratios of the row."""
        return [record.ratio for record in self.records]

    def buckets(self) -> Dict[str, int]:
        """Histogram of ratios into the paper's 10%-wide buckets."""
        counts = {label: 0 for label in BUCKET_LABELS}
        for ratio in self.ratios():
            bucket_index = min(int(ratio * 100) // 10, len(BUCKET_LABELS) - 1)
            counts[BUCKET_LABELS[bucket_index]] += 1
        return counts

    @property
    def faster(self) -> int:
        """Queries that got cheaper after optimization (ratio < 1)."""
        return sum(1 for r in self.ratios() if r < 0.999)

    @property
    def much_faster(self) -> int:
        """Queries at half the original cost or better."""
        return sum(1 for r in self.ratios() if r <= 0.5)

    @property
    def slower(self) -> int:
        """Queries that got more expensive (ratio > 1)."""
        return sum(1 for r in self.ratios() if r > 1.001)

    @property
    def all_answers_agree(self) -> bool:
        """Whether every optimized query returned the original answer."""
        return all(record.answers_agree for record in self.records)


@dataclass
class Table42Result:
    """Table 4.2 rows for every database instance."""

    rows: Dict[str, Table42Row] = field(default_factory=dict)
    overhead_units_per_second: float = DEFAULT_OVERHEAD_UNITS_PER_SECOND

    def as_table(self) -> str:
        """Aligned text rendering of the bucket histogram per database."""
        headers = ["database"] + BUCKET_LABELS + ["faster", "slower", "<=50%"]
        table_rows = []
        for name in sorted(self.rows):
            row = self.rows[name]
            buckets = row.buckets()
            table_rows.append(
                [name]
                + [buckets[label] for label in BUCKET_LABELS]
                + [
                    f"{percentage(row.faster, len(row.records)):.0f}%",
                    f"{percentage(row.slower, len(row.records)):.0f}%",
                    f"{percentage(row.much_faster, len(row.records)):.0f}%",
                ]
            )
        return format_table(headers, table_rows)


def _build_shared_workload(
    schema, constraints, query_count: int, seed: int
) -> List[Query]:
    """One workload reused for every database instance, as in the paper.

    The value catalog is taken from the largest instance (DB4) so that the
    predicate constants exist in the data; the same distributions drive all
    four instances, so the constants are representative everywhere.
    """
    catalog_db = DatabaseGenerator(schema, constraints, seed=seed).generate(
        TABLE_4_1_SPECS["DB4"]
    )
    generator = QueryGenerator(
        schema,
        value_catalog=catalog_db.value_catalog,
        # The paper's hand-formulated queries select on the application
        # domain values its constraints describe; bias ours the same way.
        config=GeneratorConfig(preferred_bias=0.7),
        seed=seed,
        preferred_predicates=constraint_selection_pool(constraints),
    )
    return generator.generate_workload(count=query_count)


def run_table_4_2(
    specs: Optional[Mapping[str, DatabaseSpec]] = None,
    query_count: int = 40,
    seed: int = 7,
    overhead_units_per_second: float = DEFAULT_OVERHEAD_UNITS_PER_SECOND,
    check_answers: bool = True,
    queries: Optional[Sequence[Query]] = None,
    execution_mode: Optional[ExecutionMode] = None,
    workers: Optional[int] = None,
    shard_count: int = 1,
) -> Table42Result:
    """Reproduce Table 4.2.

    Parameters
    ----------
    specs:
        Database instances to measure (defaults to the paper's DB1–DB4).
    query_count, seed:
        Workload parameters (40 queries, fixed seed).
    overhead_units_per_second:
        Calibration factor converting transformation seconds to cost units.
        Pass 0 to report pure execution-cost ratios without overhead.
    check_answers:
        Also execute an answer-equivalence check per query (slower but
        asserts the optimizer never changed an answer).
    queries:
        Optional explicit workload overriding the generated one.
    execution_mode:
        Which engine executes the workload (``None`` = process default).
        The engines report identical cost counters — the golden-snapshot
        tests pin this — so the mode changes the experiment's wall-clock
        time, never its numbers.
    workers:
        Worker-pool width for the parallel engine (ignored by the others).
    shard_count:
        Hash-partition the generated stores into this many shards.  The
        generated data and the measured counters are identical for every
        shard count; sharding only feeds the parallel engine's partitions.
    """
    specs = dict(specs or TABLE_4_1_SPECS)
    schema = evaluation.build_evaluation_schema()
    constraints = evaluation.build_evaluation_constraints()
    workload = (
        list(queries)
        if queries is not None
        else _build_shared_workload(schema, constraints, query_count, seed)
    )

    result = Table42Result(overhead_units_per_second=overhead_units_per_second)
    data_generator = DatabaseGenerator(schema, constraints, seed=seed)
    for name in sorted(specs):
        database = data_generator.generate(specs[name], shard_count=shard_count)
        statistics = DatabaseStatistics.collect(schema, database.store)
        cost_model = CostModel(schema, statistics)
        repository = ConstraintRepository(schema)
        repository.add_all(constraints)
        repository.precompile()
        # The service shares the precompiled repository snapshot across the
        # workload; its retrieval cache serves queries over repeated class
        # sets, which is exactly the high-throughput path a server would use.
        service = OptimizationService(
            schema,
            repository=repository,
            cost_model=cost_model,
            config=OptimizerConfig(record_access_statistics=False),
        )
        # The nested-loop strategy models the relational DBMS the paper used
        # to measure cost ratios (execution cost grows super-linearly with
        # database size, so DB4 wins are large and DB1 overhead is visible).
        executor = create_executor(
            schema,
            database.store,
            mode=execution_mode,
            join_strategy="nested_loop",
            workers=workers,
        )

        row = Table42Row(database=name)
        for query in workload:
            # use_cache=False: each query's transformation overhead feeds
            # the cost ratio, so it must be measured, not replayed from a
            # structural twin's cached run (same reasoning as Figure 4.1).
            outcome = service.optimize(query, use_cache=False).result
            original_cost = cost_model.measured_cost(executor.execute(query).metrics)
            optimized_cost = cost_model.measured_cost(
                executor.execute(outcome.optimized).metrics
            )
            overhead = (
                outcome.timings.transformation_only * overhead_units_per_second
            )
            ratio = (
                (optimized_cost + overhead) / original_cost
                if original_cost > 0
                else 1.0
            )
            agree = True
            if check_answers:
                agree = answers_match(
                    schema,
                    database.store,
                    query,
                    outcome.optimized,
                    execution_mode=execution_mode,
                )
            row.records.append(
                QueryCostRecord(
                    query_name=query.name or "",
                    original_cost=original_cost,
                    optimized_cost=optimized_cost,
                    transformation_overhead=overhead,
                    ratio=ratio,
                    was_transformed=outcome.was_transformed,
                    answers_agree=agree,
                )
            )
        row.cache = service.cache_stats()
        result.rows[name] = row
    return result
