"""Command-line interface.

``python -m repro`` optimizes a query written in the paper's five-part
notation against one of the bundled schemas and prints the transformation
trace, the predicate classification and the transformed query.  It is a thin
wrapper over the library — handy for poking at the optimizer without writing
a script.

Three subcommands wrap the serving layer:

* ``python -m repro serve`` — start the asyncio query gateway over a
  generated evaluation database (Table 4.1 spec selected with ``--db``).
  ``--replicate-on PORT`` additionally streams WAL frames to read
  replicas; ``--follow HOST:PORT`` starts a read-only replica of such a
  primary instead of generating a database.
* ``python -m repro route`` — start the consistent-hash query router
  over one primary and N replica gateways (reads fan out by structural
  query key, mutations go to the primary, read-your-writes enforced).
* ``python -m repro bench-client`` — drive a served gateway (or several,
  with ``--endpoints``) with the multi-client load generator and report
  p50/p95 latency, rows/s and the single-flight dedup rate (optionally
  persisting them as JSON).

A further subcommand, ``python -m repro lint``, runs the static invariant
checker (:mod:`repro.analysis`) over the source tree — the same driver
CI's ``static-analysis`` job gates on.

Examples
--------
Optimize the paper's Figure 2.3 query against the Figure 2.1 schema::

    python -m repro --schema example \
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { }
          {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
          {collects, supplies} {supplier, cargo, vehicle})'

Run the full experiment suite instead::

    python -m repro --experiments

Serve the DB2 database on the vectorized engine, then load it::

    python -m repro serve --db DB2 --engine vectorized --port 7431
    python -m repro bench-client --port 7431 --clients 16 --requests 20
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional

from .constraints import ConstraintRepository, build_example_constraints
from .core import OptimizerConfig
from .data import build_evaluation_constraints, build_evaluation_schema
from .query import format_query, parse_query
from .schema import build_example_schema
from .service import OptimizationService

#: Named schema/constraint bundles selectable from the command line.
BUNDLES = {
    "example": (build_example_schema, build_example_constraints),
    "evaluation": (build_evaluation_schema, build_evaluation_constraints),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Semantic query optimization (Pang, Lu, Ooi — ICDE 1991): "
            "optimize a query in the paper's five-part notation."
        ),
        epilog=(
            "subcommands: 'repro serve' starts the async query gateway "
            "(primary, replica, or standalone), 'repro route' starts the "
            "consistent-hash query router over a replica fleet, "
            "'repro bench-client' load-tests a served gateway, "
            "'repro lint' runs the static invariant checker "
            "(each has its own --help)."
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="query text, e.g. '(SELECT {cargo.desc} { } {...} {collects} {cargo, vehicle})'",
    )
    parser.add_argument(
        "--schema",
        choices=sorted(BUNDLES),
        default="example",
        help="which bundled schema + constraint set to optimize against",
    )
    parser.add_argument(
        "--no-class-elimination",
        action="store_true",
        help="disable the class elimination rule",
    )
    parser.add_argument(
        "--priority-queue",
        action="store_true",
        help="use the Section 4 priority queue",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="maximum number of transformations to apply",
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="run the full experiment suite instead of optimizing a query",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --experiments: use small workloads",
    )
    parser.add_argument(
        "--engine",
        choices=["rowwise", "vectorized", "parallel"],
        default=None,
        help=(
            "execution engine used by --execute and the experiments "
            "(default: REPRO_ENGINE env var, else rowwise)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker-pool width for the parallel engine "
            "(default: REPRO_WORKERS env var, else the core count)"
        ),
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help=(
            "also execute the original and optimized query against a "
            "generated demo database and report the measured cost counters"
        ),
    )
    return parser


def _execute_comparison(args: argparse.Namespace, schema, constraints, service, result) -> None:
    """Run the original and optimized query on a demo database and report."""
    from .data import DatabaseGenerator, DatabaseSpec
    from .engine import CostModel, DatabaseStatistics

    database = DatabaseGenerator(schema, constraints, seed=7).generate(
        DatabaseSpec("demo", class_cardinality=60, relationship_cardinality=90)
    )
    service.attach_store(database.store)
    cost_model = CostModel(
        schema, DatabaseStatistics.collect(schema, database.store)
    )
    original = service.execute(
        result.original, optimize=False, execution_mode=args.engine,
        workers=args.workers,
    )
    optimized = service.execute(
        result.original, optimize=True, execution_mode=args.engine,
        workers=args.workers,
    )
    print(f"\nExecution ({original.execution_mode} engine, demo database):")
    print(f"  original : {original.summary()}")
    print(f"             {original.metrics.as_dict()}")
    print(f"  optimized: {optimized.summary()}")
    print(f"             {optimized.metrics.as_dict()}")
    original_cost = cost_model.measured_cost(original.metrics)
    optimized_cost = cost_model.measured_cost(optimized.metrics)
    ratio = optimized_cost / original_cost if original_cost else 1.0
    print(
        f"  measured cost: {original_cost:.1f} -> {optimized_cost:.1f} "
        f"units (ratio {ratio:.2f})"
    )
    from .query import answers_match

    agree = answers_match(
        schema,
        database.store,
        result.original,
        result.optimized,
        execution_mode=args.engine,
    )
    print(f"  answers agree: {agree}")


def run_query(args: argparse.Namespace) -> int:
    """Optimize (and optionally execute) one query and print the outcome."""
    build_schema, build_constraints = BUNDLES[args.schema]
    schema = build_schema()
    constraints = build_constraints()
    repository = ConstraintRepository(schema)
    repository.add_all(constraints)

    try:
        query = parse_query(args.query, name="cli")
        query.validate(schema)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    service = OptimizationService(
        schema,
        repository=repository,
        config=OptimizerConfig(
            enable_class_elimination=not args.no_class_elimination,
            use_priority_queue=args.priority_queue,
            transformation_budget=args.budget,
        ),
    )
    envelope = service.optimize(query)
    result = envelope.result

    print("Original query:")
    print(format_query(result.original, multiline=True, indent="  "))
    print("\nTransformations:")
    print("  " + result.trace.describe().replace("\n", "\n  "))
    print("\nPredicate classification:")
    for predicate, tag in result.predicate_tags.items():
        print(f"  [{tag.value:10}] {predicate}")
    if result.eliminated_classes:
        print(f"\nEliminated classes: {', '.join(result.eliminated_classes)}")
    print("\nOptimized query:")
    print(format_query(result.optimized, multiline=True, indent="  "))
    print(f"\n{result.summary()}")
    print(f"Service: {envelope.source.value}, {service.cache_stats().describe()}")
    if args.execute:
        _execute_comparison(args, schema, constraints, service, result)
    return 0


# ----------------------------------------------------------------------
# serve / route / bench-client subcommands
# ----------------------------------------------------------------------
def _parse_endpoint(value: str):
    """Split a ``HOST:PORT`` argument; raises ``ValueError`` when malformed."""
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Start the asyncio query gateway over a generated evaluation "
            "database (line-delimited JSON over TCP)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=7431, help="listen port (0 = ephemeral)"
    )
    parser.add_argument(
        "--db",
        choices=["DB1", "DB2", "DB3", "DB4"],
        default="DB2",
        help="which Table 4.1 database instance to generate and serve",
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="store shard count (parallel engine)"
    )
    parser.add_argument(
        "--engine",
        choices=["rowwise", "vectorized", "parallel"],
        default=None,
        help="default execution engine (default: REPRO_ENGINE, else rowwise)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel-engine pool width"
    )
    parser.add_argument(
        "--worker-threads", type=int, default=4, help="gateway worker thread count"
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=64, help="admission: max active requests"
    )
    parser.add_argument(
        "--max-subscriptions",
        type=int,
        default=64,
        help=(
            "cap on live subscriptions (standing views) this gateway "
            "will hold; further subscribe RPCs answer subscription_limit"
        ),
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request budget in seconds",
    )
    parser.add_argument(
        "--dynamic-rules",
        action="store_true",
        help=(
            "derive state-dependent rules from the generated database and "
            "keep them fresh across mutation RPCs (re-derived per touched "
            "class)"
        ),
    )
    parser.add_argument(
        "--self-tune",
        action="store_true",
        help=(
            "enable the self-tuning feedback loop: measured-cost weight "
            "calibration, workload-driven auto-indexing and learned rule "
            "profitability (equivalent to REPRO_TUNING=1; the env var can "
            "also select components, e.g. REPRO_TUNING=calibrate,index)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help=(
            "durability directory: mutations are write-ahead logged and "
            "snapshotted here, and an existing directory is recovered on "
            "startup (replacing the generated database)"
        ),
    )
    parser.add_argument(
        "--wal-fsync",
        choices=["always", "batch", "off"],
        default=None,
        help=(
            "WAL fsync policy with --data-dir "
            "(default: REPRO_WAL_FSYNC, else batch)"
        ),
    )
    parser.add_argument(
        "--wal-fsync-interval",
        type=int,
        default=None,
        help=(
            "commits per group fsync under the batch policy "
            "(default: REPRO_WAL_FSYNC_INTERVAL, else 8)"
        ),
    )
    parser.add_argument(
        "--snapshot-frames",
        type=int,
        default=None,
        help=(
            "WAL frames that trigger a snapshot + segment rotation "
            "(default: REPRO_SNAPSHOT_FRAMES, else 10000)"
        ),
    )
    parser.add_argument(
        "--snapshot-age",
        type=float,
        default=None,
        help=(
            "seconds between age-triggered snapshots, 0 = disabled "
            "(default: REPRO_SNAPSHOT_AGE, else 0)"
        ),
    )
    parser.add_argument(
        "--replicate-on",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "primary mode: also listen on this port (0 = ephemeral) and "
            "stream every applied mutation as checksummed WAL frames to "
            "subscribed replicas (combine with --data-dir for durability; "
            "the WAL sink keeps firing first)"
        ),
    )
    parser.add_argument(
        "--follow",
        default=None,
        metavar="HOST:PORT",
        help=(
            "replica mode: bootstrap the store from this primary's "
            "replication feed (snapshot + live tail) instead of generating "
            "a database, serve read-only, and ack applied versions back; "
            "--db must match the primary's"
        ),
    )
    return parser


def run_serve(argv: List[str]) -> int:
    """``python -m repro serve``: run the gateway until interrupted.

    Both SIGINT (Ctrl-C / KeyboardInterrupt) and SIGTERM (the normal
    container stop signal) go through the same graceful path: stop
    accepting, drain admitted requests, flush the WAL, exit.
    """
    import signal

    from .data import TABLE_4_1_SPECS, build_evaluation_setup
    from .server import QueryGateway
    from .service import OptimizationService

    args = build_serve_parser().parse_args(argv)
    if args.follow and (args.data_dir or args.replicate_on is not None):
        build_serve_parser().error(
            "--follow (replica mode) is mutually exclusive with --data-dir "
            "and --replicate-on: replicas neither journal nor re-stream"
        )
    if args.follow:
        try:
            _parse_endpoint(args.follow)
        except ValueError as exc:
            build_serve_parser().error(f"--follow: {exc}")

    async def serve() -> None:
        # The server doesn't need a workload, only the database; the
        # generator requires at least one query.
        setup = build_evaluation_setup(
            TABLE_4_1_SPECS[args.db], query_count=1, shard_count=args.shards
        )
        store = setup.store
        manager = None
        follower = None
        feed = None
        if args.follow:
            from .replication import ReplicaFollower

            primary_host, primary_port = _parse_endpoint(args.follow)
            follower = ReplicaFollower(setup.schema, primary_host, primary_port)
            # The generated store is discarded: the replica's state is the
            # primary's, rebuilt byte-identically from the snapshot stream.
            store = await follower.bootstrap()
            print(
                f"replica synced from {args.follow}: store v{store.version} "
                f"(epoch {follower.epoch})",
                flush=True,
            )
        if args.data_dir:
            from .durability import DurabilityManager

            manager = DurabilityManager(
                args.data_dir,
                fsync_policy=args.wal_fsync,
                fsync_interval=args.wal_fsync_interval,
                snapshot_frames=args.snapshot_frames,
                snapshot_age=args.snapshot_age,
            )
            store, report = manager.open(store)
            if report is not None:
                if report.clean:
                    health = "clean"
                else:
                    reasons = sorted({i.reason for i in report.wal_issues})
                    health = "with issues: " + ", ".join(reasons)
                print(
                    f"recovered {args.data_dir}: snapshot v"
                    f"{report.snapshot_version} + {report.replayed_frames} "
                    f"WAL frame(s) -> store v{report.final_version} "
                    f"({health})",
                    flush=True,
                )
            else:
                print(
                    f"durability enabled: fresh data dir {args.data_dir} "
                    f"(fsync={manager.fsync_policy})",
                    flush=True,
                )
        service = OptimizationService(
            setup.schema,
            repository=setup.repository,
            cost_model=setup.cost_model,
            store=store,
            execution_mode=args.engine,
            engine_workers=args.workers,
        )
        if manager is not None:
            service.attach_durability(manager)
        if args.dynamic_rules:
            derived = service.enable_dynamic_rules()
            print(f"dynamic rules enabled: {derived} derived", flush=True)
        from .tuning import TuningConfig

        tuning_config = None
        if args.self_tune:
            tuning_config = TuningConfig()
        else:
            try:
                tuning_config = TuningConfig.from_env(
                    os.environ.get("REPRO_TUNING")
                )
            except ValueError as exc:
                print(f"ignoring REPRO_TUNING: {exc}", flush=True)
        if tuning_config is not None:
            manager_t = service.enable_self_tuning(tuning_config)
            enabled = [
                name
                for name, on in (
                    ("calibrate", manager_t.config.calibrate),
                    ("index", manager_t.config.auto_index),
                    ("rules", manager_t.config.learn_rules),
                )
                if on
            ]
            print(
                f"self-tuning enabled: {', '.join(enabled)}",
                flush=True,
            )
        follower_task = None
        if follower is not None:
            follower.attach(service)
            follower_task = follower.start()
        if args.replicate_on is not None:
            from .durability import SinkTee
            from .replication import ReplicationFeed

            feed = ReplicationFeed(service, host=args.host, port=args.replicate_on)
            feed_host, feed_port = await feed.start()
            tee = SinkTee()
            if store.mutation_sink is not None:
                # Keep the WAL sink first: a record is on disk before any
                # replica can observe it.
                tee.attach(store.mutation_sink)
            tee.attach(feed.sink)
            store.set_mutation_sink(tee)
            print(
                f"replication feed on {feed_host}:{feed_port} "
                f"(epoch {feed.epoch})",
                flush=True,
            )
        gateway = QueryGateway(
            service,
            args.host,
            args.port,
            worker_threads=args.worker_threads,
            max_in_flight=args.max_in_flight,
            max_subscriptions=args.max_subscriptions,
            request_timeout=args.request_timeout,
            read_only=follower is not None,
            replication=feed,
            follower=follower,
        )
        host, port = await gateway.start()
        print(
            f"repro gateway serving {args.db} on {host}:{port} "
            f"(engine={args.engine or 'default'}, "
            f"threads={args.worker_threads}); Ctrl-C or SIGTERM to drain "
            "and stop",
            flush=True,
        )
        # SIGTERM must take the same drain + WAL-flush path as Ctrl-C;
        # the default handler would kill the process with acked writes
        # still in the stdio buffers.  (Regression: SIGTERM used to skip
        # the graceful drain entirely.)
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        sigterm_installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
            sigterm_installed = True
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX event loop: KeyboardInterrupt still works
        gateway_task = asyncio.ensure_future(gateway.serve_forever())
        stop_task = asyncio.ensure_future(stop_requested.wait())
        tasks = [gateway_task, stop_task]
        if follower_task is not None:
            # A follower whose reconnect budget is exhausted must take
            # the replica down loudly, not leave it serving stale reads.
            tasks.append(follower_task)
        try:
            done, _ = await asyncio.wait(
                tasks,
                return_when=asyncio.FIRST_COMPLETED,
            )
        except asyncio.CancelledError:
            done = set()
        finally:
            for task in tasks:
                task.cancel()
            # Retrieve every result (cancellations and the gateway's
            # exception, if any) so nothing dies unobserved.
            await asyncio.gather(*tasks, return_exceptions=True)
            if sigterm_installed:
                loop.remove_signal_handler(signal.SIGTERM)
            drained = await gateway.stop()
            if feed is not None:
                await feed.stop()
            if follower is not None:
                await follower.stop()
            if manager is not None:
                manager.close()
            print(f"gateway stopped (drained={drained})", flush=True)
        if gateway_task in done:
            # The gateway finished on its own — serve_forever only ever
            # ends by raising, so re-raise here (after the drain above)
            # rather than mask a server crash as a clean exit-0 stop.
            gateway_task.result()
        if follower_task is not None and follower_task in done:
            follower_task.result()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def build_route_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``route`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro route",
        description=(
            "Start the consistent-hash query router over one primary and N "
            "replica gateways.  Speaks the same NDJSON protocol as serve: "
            "reads fan out across replicas by structural query key, "
            "mutations forward to the primary, and each connection's reads "
            "observe at least its own last write (read-your-writes)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=7531, help="listen port (0 = ephemeral)"
    )
    parser.add_argument(
        "--primary",
        required=True,
        metavar="HOST:PORT",
        help="the single-writer primary gateway (all mutations go here)",
    )
    parser.add_argument(
        "--replica",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="a read replica gateway (repeat per replica; none = primary only)",
    )
    parser.add_argument(
        "--retry-reads",
        type=int,
        default=5,
        help="per-backend reconnect-and-retry budget for idempotent reads",
    )
    parser.add_argument(
        "--pin-timeout",
        type=float,
        default=5.0,
        help=(
            "seconds a pinned read waits for a replica to catch up to the "
            "connection's last written version before failing over"
        ),
    )
    return parser


def run_route(argv: List[str]) -> int:
    """``python -m repro route``: run the query router until interrupted."""
    import signal

    from .replication import QueryRouter

    args = build_route_parser().parse_args(argv)
    for endpoint in [args.primary] + args.replica:
        try:
            _parse_endpoint(endpoint)
        except ValueError as exc:
            build_route_parser().error(str(exc))

    async def route() -> None:
        router = QueryRouter(
            args.primary,
            args.replica,
            args.host,
            args.port,
            retry_reads=args.retry_reads,
            pin_timeout=args.pin_timeout,
        )
        host, port = await router.start()
        print(
            f"repro router serving on {host}:{port} -> primary "
            f"{args.primary}, {len(args.replica)} replica(s); Ctrl-C or "
            "SIGTERM to stop",
            flush=True,
        )
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        sigterm_installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
            sigterm_installed = True
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        try:
            await stop_requested.wait()
        finally:
            if sigterm_installed:
                loop.remove_signal_handler(signal.SIGTERM)
            await router.stop()
            status = router.status()
            print(
                f"router stopped ({status['requests']} requests, "
                f"{status['failovers']} failovers, {status['stalls']} "
                "read-your-writes stalls)",
                flush=True,
            )

    try:
        asyncio.run(route())
    except KeyboardInterrupt:
        pass
    return 0


def build_bench_client_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``bench-client`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro bench-client",
        description=(
            "Drive a served gateway with the multi-client load generator "
            "and report p50/p95 latency, rows/s and the dedup rate."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="gateway address")
    parser.add_argument("--port", type=int, default=7431, help="gateway port")
    parser.add_argument(
        "--endpoints",
        default=None,
        metavar="HOST:PORT,...",
        help=(
            "comma-separated gateway list; overrides --host/--port and "
            "stripes the client connections round-robin across the "
            "endpoints (e.g. a replica fleet).  Mixed read/write runs "
            "need endpoints that accept writes — a router or the primary; "
            "replicas answer mutations with the read_only code"
        ),
    )
    parser.add_argument(
        "--retry-reads",
        type=int,
        default=0,
        help=(
            "per-client reconnect-and-retry budget for idempotent reads "
            "on dropped connections (0 = fail fast)"
        ),
    )
    parser.add_argument("--clients", type=int, default=16, help="client connections")
    parser.add_argument(
        "--requests", type=int, default=20, help="requests issued per client"
    )
    parser.add_argument(
        "--db",
        choices=["DB1", "DB2", "DB3", "DB4"],
        default="DB2",
        help="workload source (must match the served database's spec)",
    )
    parser.add_argument(
        "--queries", type=int, default=12, help="distinct workload queries to cycle"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate per client (requests/s); default closed loop",
    )
    parser.add_argument(
        "--op", choices=["execute", "optimize"], default="execute", help="RPC to drive"
    )
    parser.add_argument(
        "--engine",
        choices=["rowwise", "vectorized", "parallel"],
        default=None,
        help="execution_mode option sent with every request",
    )
    parser.add_argument(
        "--mutate-every",
        type=int,
        default=0,
        help=(
            "mixed read/write mode: make every Nth request per client an "
            "insert (0 = read-only)"
        ),
    )
    parser.add_argument(
        "--mutate-class",
        default="cargo",
        help="object class the mixed-mode inserts write into",
    )
    parser.add_argument(
        "--mutate-rows",
        type=int,
        default=1,
        help=(
            "rows per write request: 1 sends single inserts, larger values "
            "send insert_many batches (one WAL commit per batch)"
        ),
    )
    parser.add_argument(
        "--subscribe",
        type=int,
        default=0,
        metavar="N",
        help=(
            "make the first N clients each hold a live subscription for "
            "the whole run and count the diff frames they receive"
        ),
    )
    parser.add_argument(
        "--artifact",
        default=None,
        help="merge the report into this JSON file (e.g. benchmarks/BENCH_gateway.json)",
    )
    return parser


def run_bench_client(argv: List[str]) -> int:
    """``python -m repro bench-client``: load a served gateway and report."""
    from .data import TABLE_4_1_SPECS, build_evaluation_setup
    from .query import format_query
    from .server import MutationMix, connect_clients, run_load

    args = build_bench_client_parser().parse_args(argv)

    if args.clients < 1 or args.requests < 1:
        build_bench_client_parser().error("--clients and --requests must be >= 1")
    if args.endpoints:
        try:
            endpoints = [
                _parse_endpoint(item.strip())
                for item in args.endpoints.split(",")
                if item.strip()
            ]
        except ValueError as exc:
            build_bench_client_parser().error(f"--endpoints: {exc}")
        if not endpoints:
            build_bench_client_parser().error("--endpoints: empty endpoint list")
    else:
        endpoints = [(args.host, args.port)]

    def mutation_mix(schema):
        """Schema-derived insert template: every value attribute populated.

        Fully populated rows keep the write realistic — a row of ``None``s
        would silently disable the server's derived range rules and never
        intersect a read — and the first string attribute is uniqued per
        (client, request) so rows stay distinguishable.
        """
        if args.mutate_every <= 0:
            return None
        if args.mutate_rows < 1:
            build_bench_client_parser().error("--mutate-rows must be >= 1")
        if not schema.has_class(args.mutate_class):
            build_bench_client_parser().error(
                f"--mutate-class: unknown object class {args.mutate_class!r}"
            )
        values, unique = {}, []
        for attribute in schema.object_class(args.mutate_class).attributes:
            if attribute.is_pointer:
                continue
            if attribute.domain.is_numeric:
                values[attribute.name] = 1
            else:
                values[attribute.name] = "lg"
                if not unique:
                    unique.append(attribute.name)
        return MutationMix(
            every=args.mutate_every,
            class_name=args.mutate_class,
            values=values,
            unique_attributes=tuple(unique),
            rows=args.mutate_rows,
        )

    async def bench():
        # The workload generator is seeded, so building the setup locally
        # yields exactly the queries the served database understands.
        setup = build_evaluation_setup(
            TABLE_4_1_SPECS[args.db], query_count=max(args.queries, 1)
        )
        queries = [format_query(query) for query in setup.queries]
        options = {}
        if args.engine:
            options["execution_mode"] = args.engine
        clients = []
        try:
            clients = await connect_clients(
                endpoints,
                args.clients,
                retry_reads=args.retry_reads,
                client_prefix="bench",
            )
            mix = mutation_mix(setup.schema)
            report = await run_load(
                clients,
                queries,
                requests_per_client=args.requests,
                op=args.op,
                options=options,
                rate=args.rate,
                mutations=mix,
                subscribe=max(args.subscribe, 0),
            )
            stats = await clients[0].stats()
        finally:
            for client in clients:
                await client.close()
        return report, stats

    report, stats = asyncio.run(bench())
    print(report.describe())
    dedup = stats["service"]["single_flight"]
    print(
        f"server single-flight: {dedup['leaders']} leaders, "
        f"{dedup['followers']} followers ({dedup['dedup_rate']:.0%} dedup)"
    )
    if args.artifact:
        try:
            with open(args.artifact) as handle:
                data = json.load(handle)
        except (FileNotFoundError, ValueError):
            data = {}
        data["bench_client"] = {
            **report.as_dict(),
            "op": args.op,
            "db": args.db,
            "engine": args.engine or "default",
            "endpoints": args.endpoints or f"{args.host}:{args.port}",
            "server_single_flight": dedup,
            "server_tuning": stats["service"].get("tuning"),
        }
        with open(args.artifact, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.artifact}")
    return 0 if report.errors == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "route":
        return run_route(argv[1:])
    if argv and argv[0] == "bench-client":
        return run_bench_client(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiments:
        from .experiments import run_all

        report = run_all(quick=args.quick, engine=args.engine, workers=args.workers)
        print(report.render())
        return 0

    if not args.query:
        parser.print_help()
        return 1
    return run_query(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
