"""Command-line interface.

``python -m repro`` optimizes a query written in the paper's five-part
notation against one of the bundled schemas and prints the transformation
trace, the predicate classification and the transformed query.  It is a thin
wrapper over the library — handy for poking at the optimizer without writing
a script.

Examples
--------
Optimize the paper's Figure 2.3 query against the Figure 2.1 schema::

    python -m repro --schema example \
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { }
          {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
          {collects, supplies} {supplier, cargo, vehicle})'

Run the full experiment suite instead::

    python -m repro --experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .constraints import ConstraintRepository, build_example_constraints
from .core import OptimizerConfig
from .data import build_evaluation_constraints, build_evaluation_schema
from .query import format_query, parse_query
from .schema import build_example_schema
from .service import OptimizationService

#: Named schema/constraint bundles selectable from the command line.
BUNDLES = {
    "example": (build_example_schema, build_example_constraints),
    "evaluation": (build_evaluation_schema, build_evaluation_constraints),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Semantic query optimization (Pang, Lu, Ooi — ICDE 1991): "
            "optimize a query in the paper's five-part notation."
        ),
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="query text, e.g. '(SELECT {cargo.desc} { } {...} {collects} {cargo, vehicle})'",
    )
    parser.add_argument(
        "--schema",
        choices=sorted(BUNDLES),
        default="example",
        help="which bundled schema + constraint set to optimize against",
    )
    parser.add_argument(
        "--no-class-elimination",
        action="store_true",
        help="disable the class elimination rule",
    )
    parser.add_argument(
        "--priority-queue",
        action="store_true",
        help="use the Section 4 priority queue",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="maximum number of transformations to apply",
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="run the full experiment suite instead of optimizing a query",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --experiments: use small workloads",
    )
    parser.add_argument(
        "--engine",
        choices=["rowwise", "vectorized", "parallel"],
        default=None,
        help=(
            "execution engine used by --execute and the experiments "
            "(default: REPRO_ENGINE env var, else rowwise)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker-pool width for the parallel engine "
            "(default: REPRO_WORKERS env var, else the core count)"
        ),
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help=(
            "also execute the original and optimized query against a "
            "generated demo database and report the measured cost counters"
        ),
    )
    return parser


def _execute_comparison(args: argparse.Namespace, schema, constraints, service, result) -> None:
    """Run the original and optimized query on a demo database and report."""
    from .data import DatabaseGenerator, DatabaseSpec
    from .engine import CostModel, DatabaseStatistics

    database = DatabaseGenerator(schema, constraints, seed=7).generate(
        DatabaseSpec("demo", class_cardinality=60, relationship_cardinality=90)
    )
    service.attach_store(database.store)
    cost_model = CostModel(
        schema, DatabaseStatistics.collect(schema, database.store)
    )
    original = service.execute(
        result.original, optimize=False, execution_mode=args.engine,
        workers=args.workers,
    )
    optimized = service.execute(
        result.original, optimize=True, execution_mode=args.engine,
        workers=args.workers,
    )
    print(f"\nExecution ({original.execution_mode} engine, demo database):")
    print(f"  original : {original.summary()}")
    print(f"             {original.metrics.as_dict()}")
    print(f"  optimized: {optimized.summary()}")
    print(f"             {optimized.metrics.as_dict()}")
    original_cost = cost_model.measured_cost(original.metrics)
    optimized_cost = cost_model.measured_cost(optimized.metrics)
    ratio = optimized_cost / original_cost if original_cost else 1.0
    print(
        f"  measured cost: {original_cost:.1f} -> {optimized_cost:.1f} "
        f"units (ratio {ratio:.2f})"
    )
    from .query import answers_match

    agree = answers_match(
        schema,
        database.store,
        result.original,
        result.optimized,
        execution_mode=args.engine,
    )
    print(f"  answers agree: {agree}")


def run_query(args: argparse.Namespace) -> int:
    """Optimize (and optionally execute) one query and print the outcome."""
    build_schema, build_constraints = BUNDLES[args.schema]
    schema = build_schema()
    constraints = build_constraints()
    repository = ConstraintRepository(schema)
    repository.add_all(constraints)

    try:
        query = parse_query(args.query, name="cli")
        query.validate(schema)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    service = OptimizationService(
        schema,
        repository=repository,
        config=OptimizerConfig(
            enable_class_elimination=not args.no_class_elimination,
            use_priority_queue=args.priority_queue,
            transformation_budget=args.budget,
        ),
    )
    envelope = service.optimize(query)
    result = envelope.result

    print("Original query:")
    print(format_query(result.original, multiline=True, indent="  "))
    print("\nTransformations:")
    print("  " + result.trace.describe().replace("\n", "\n  "))
    print("\nPredicate classification:")
    for predicate, tag in result.predicate_tags.items():
        print(f"  [{tag.value:10}] {predicate}")
    if result.eliminated_classes:
        print(f"\nEliminated classes: {', '.join(result.eliminated_classes)}")
    print("\nOptimized query:")
    print(format_query(result.optimized, multiline=True, indent="  "))
    print(f"\n{result.summary()}")
    print(f"Service: {envelope.source.value}, {service.cache_stats().describe()}")
    if args.execute:
        _execute_comparison(args, schema, constraints, service, result)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiments:
        from .experiments import run_all

        report = run_all(quick=args.quick, engine=args.engine, workers=args.workers)
        print(report.render())
        return 0

    if not args.query:
        parser.print_help()
        return 1
    return run_query(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
