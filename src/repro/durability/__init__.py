"""Durability: write-ahead logging, snapshots, and crash recovery.

Everything the live mutation path writes survives the process here.
:class:`DurabilityManager` is the only class most callers need — it owns
a data directory, appends every store mutation to per-shard WAL segments
(:mod:`.wal`), periodically compacts them into atomic snapshots
(:mod:`.snapshot`), and rebuilds the exact pre-crash store on startup
(:mod:`.recovery`).  The on-disk unit throughout is a checksummed NDJSON
frame (:mod:`.frames`), the same line-oriented encoding the TCP gateway
speaks.
"""

from .frames import FrameError, checksum, decode_frame, encode_frame
from .manager import DurabilityManager
from .recovery import RecoveryReport, recover
from .snapshot import (
    SnapshotError,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    write_snapshot,
)
from .tee import SinkTee
from .wal import FSYNC_POLICIES, FrameIssue, WriteAheadLog, read_segment

__all__ = [
    "FSYNC_POLICIES",
    "DurabilityManager",
    "FrameError",
    "FrameIssue",
    "RecoveryReport",
    "SinkTee",
    "SnapshotError",
    "WriteAheadLog",
    "checksum",
    "decode_frame",
    "encode_frame",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "read_segment",
    "recover",
    "write_snapshot",
]
