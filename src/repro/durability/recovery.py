"""Crash recovery: newest valid snapshot + contiguous WAL tail replay.

Recovery rebuilds the exact pre-crash store in four steps:

1. **Snapshot.**  Try snapshots newest-first; the first one that loads
   cleanly wins (defective ones are reported and skipped).  With no
   loadable snapshot, start from an empty store at version 0.
2. **Scan.**  Read every WAL segment, stopping per file at the first
   defective frame — a torn final append is the expected crash artifact
   and costs only that file's unreadable suffix.  Segment headers must
   agree with the file name; records must deserialize as mutation
   records.  Segments are visited in ascending ``(base, shard)`` order,
   and when the same ``seq`` appears under two bases — stale segments a
   pre-purge build left behind — the frame from the newer base wins: it
   was written after the newer snapshot, so it is the acked re-use of a
   seq recovery previously discarded.  Every defect becomes a
   :class:`~.wal.FrameIssue` in the report, never an exception.
3. **Merge.**  Per-shard record streams are merged on ``seq`` and
   replayed only while contiguous from the snapshot version: the global
   mutation order interleaves across shard files, so a frame lost from
   one shard's torn tail invalidates every *later* frame in the other
   shards too (they were acked after the lost one).  The replay stops at
   the first gap; everything beyond it is counted as discarded.
4. **Replay.**  The contiguous prefix goes through the store's own
   :meth:`~repro.engine.storage.ShardedObjectStore.apply_journal` —
   the same idempotent machinery replicas use — so recovered state
   matches an uninterrupted run byte for byte, per-shard versions
   included.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine.storage import MutationRecord, ShardedObjectStore, StorageError
from ..schema.schema import Schema
from .snapshot import SnapshotError, list_snapshots, load_snapshot
from .wal import FrameIssue, parse_segment_name, read_segment

__all__ = ["RecoveryReport", "recover"]

#: Subdirectory of the data dir holding the WAL segments.
WAL_SUBDIR = "wal"


@dataclass
class RecoveryReport:
    """What recovery found and did — stable, serializable, log-friendly."""

    data_dir: str
    snapshot_version: int = 0
    snapshot_path: Optional[str] = None
    #: Snapshots that failed validation and were skipped, newest first.
    rejected_snapshots: List[str] = field(default_factory=list)
    #: Defective WAL frames (and scanner complaints), in scan order.
    wal_issues: List[FrameIssue] = field(default_factory=list)
    #: Frames replayed on top of the snapshot.
    replayed_frames: int = 0
    #: Intact frames discarded because an earlier seq was unrecoverable.
    discarded_frames: int = 0
    final_version: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was rejected, torn, or discarded."""
        return (
            not self.rejected_snapshots
            and not self.wal_issues
            and self.discarded_frames == 0
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "snapshot_version": self.snapshot_version,
            "snapshot_path": self.snapshot_path,
            "rejected_snapshots": list(self.rejected_snapshots),
            "wal_issues": [
                {
                    "file": issue.file,
                    "line_number": issue.line_number,
                    "reason": issue.reason,
                    "detail": issue.detail,
                }
                for issue in self.wal_issues
            ],
            "replayed_frames": self.replayed_frames,
            "discarded_frames": self.discarded_frames,
            "final_version": self.final_version,
            "clean": self.clean,
        }


def _scan_wal(
    wal_dir: str, report: RecoveryReport
) -> Dict[int, MutationRecord]:
    """All trustworthy mutation records across segments, keyed by seq."""
    records: Dict[int, MutationRecord] = {}
    if not os.path.isdir(wal_dir):
        return records
    # Scan in ascending (base, shard) order so that when a seq appears in
    # segments with different bases — stale pre-recovery segments left
    # behind by an older build — the frame from the *newer* base (written
    # after the newer snapshot, i.e. the acked re-use of a discarded seq)
    # deterministically wins.
    segments = []
    for name in os.listdir(wal_dir):
        parsed = parse_segment_name(name)
        if parsed is None:
            continue
        shard, base = parsed
        segments.append((base, shard, name))
    origin_base: Dict[int, int] = {}
    for base, shard, name in sorted(segments):
        path = os.path.join(wal_dir, name)
        frames, issue = read_segment(path)
        if not frames:
            if issue is not None:
                report.wal_issues.append(issue)
            continue
        header = frames[0]
        if (
            header.get("kind") != "segment"
            or header.get("shard") != shard
            or header.get("base") != base
        ):
            report.wal_issues.append(
                FrameIssue(name, 1, "bad-header", f"header {header!r}")
            )
            continue
        for line_number, frame in enumerate(frames[1:], 2):
            if frame.get("kind") != "record":
                report.wal_issues.append(
                    FrameIssue(
                        name,
                        line_number,
                        "bad-record",
                        f"unexpected kind {frame.get('kind')!r}",
                    )
                )
                break
            payload = {k: v for k, v in frame.items() if k != "kind"}
            try:
                record = MutationRecord.from_dict(payload)
            except StorageError as exc:
                report.wal_issues.append(
                    FrameIssue(name, line_number, "bad-record", str(exc))
                )
                break
            if record.seq in records:
                if base > origin_base[record.seq]:
                    report.wal_issues.append(
                        FrameIssue(
                            name,
                            line_number,
                            "duplicate-seq",
                            f"seq {record.seq} supersedes a stale "
                            f"base-{origin_base[record.seq]} frame",
                        )
                    )
                    records[record.seq] = record
                    origin_base[record.seq] = base
                else:
                    report.wal_issues.append(
                        FrameIssue(
                            name,
                            line_number,
                            "duplicate-seq",
                            f"seq {record.seq} already seen",
                        )
                    )
                continue
            records[record.seq] = record
            origin_base[record.seq] = base
        if issue is not None:
            report.wal_issues.append(issue)
    return records


def recover(
    data_dir: str,
    schema: Schema,
    shard_count: int = 1,
    journal_limit: Optional[int] = None,
) -> Tuple[ShardedObjectStore, RecoveryReport]:
    """Rebuild the store persisted under ``data_dir``.

    ``shard_count`` and ``journal_limit`` only shape the store when no
    snapshot is loadable — a snapshot's own header wins otherwise.
    Never raises on defective data: every defect lands in the report and
    recovery proceeds with the longest trustworthy prefix.
    """
    report = RecoveryReport(data_dir=data_dir)
    store: Optional[ShardedObjectStore] = None
    for version, path in list_snapshots(data_dir):
        try:
            store = load_snapshot(path, schema, journal_limit=journal_limit)
        except SnapshotError as exc:
            report.rejected_snapshots.append(str(exc))
            continue
        report.snapshot_version = version
        report.snapshot_path = path
        break
    if store is None:
        kwargs = {} if journal_limit is None else {"journal_limit": journal_limit}
        store = ShardedObjectStore(schema, shard_count=shard_count, **kwargs)

    records = _scan_wal(os.path.join(data_dir, WAL_SUBDIR), report)
    replay: List[MutationRecord] = []
    seq = store.version + 1
    while seq in records:
        replay.append(records.pop(seq))
        seq += 1
    stale = sum(1 for s in records if s <= store.version)
    beyond = len(records) - stale
    if beyond:
        # Intact frames stranded past a gap: acked after a frame that
        # never reached disk, so they cannot be trusted to apply.
        report.discarded_frames = beyond
        report.wal_issues.append(
            FrameIssue(
                WAL_SUBDIR,
                0,
                "sequence-gap",
                f"no frame for seq {seq}; {beyond} later frame(s) discarded",
            )
        )
    report.replayed_frames = store.apply_journal(replay)
    report.final_version = store.version
    return store, report
