"""Per-shard write-ahead log segments.

The WAL directory holds one *segment* file per store shard, named
``shard-{shard:03d}.{base:012d}.ndjson`` where ``base`` is the store
version the segment starts after: every record frame in the segment has
``seq > base``.  All shards share the same base, which advances only at
snapshot time (:meth:`WriteAheadLog.rotate`) — a snapshot makes every
older frame redundant, so rotation deletes the superseded segments
outright rather than truncating in place.

Each segment starts with a ``{"kind": "segment", ...}`` header frame and
then carries one ``{"kind": "record", ...}`` frame per mutation, in the
order the shard received them.  Frames are checksummed NDJSON lines
(:mod:`.frames`); the global mutation order is recovered by merging the
per-shard streams on ``seq``.

Write path and fsync batching
-----------------------------
:meth:`append` buffers a frame into the segment's stdio buffer;
:meth:`commit` — called once per service mutation batch, under the
store's write lock — flushes every dirty segment to the OS and then
applies the fsync policy:

``always``
    fsync every commit.  Maximum durability, one disk flush per batch.
``batch``
    fsync every ``fsync_interval`` commits (group commit).  A crash can
    lose at most the un-fsynced tail, which recovery detects as a torn
    or missing suffix.
``off``
    never fsync on commit (benchmarking baseline).  :meth:`flush` — the
    drain/shutdown path — still fsyncs unconditionally.

The Python-level flush in every commit is load-bearing beyond
durability: the parallel engine forks workers while holding the read
lock, mutually exclusive with the write lock this runs under, so a
child process never inherits half-buffered WAL bytes it could later
double-write.

Fork safety
-----------
The log records its owning PID at construction and every mutating
method is a no-op in any other process.  Forked pool workers inherit
the store — and with it the mutation sink — but only the parent may
touch the segment files.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .frames import FrameError, decode_frame, encode_frame

__all__ = [
    "FSYNC_POLICIES",
    "FrameIssue",
    "WriteAheadLog",
    "parse_segment_name",
    "purge_segments",
    "read_segment",
    "segment_name",
]

#: Accepted values for the ``fsync_policy`` knob (see module docstring).
FSYNC_POLICIES = ("always", "batch", "off")

_SEGMENT_RE = re.compile(r"^shard-(\d{3})\.(\d{12})\.ndjson$")


def segment_name(shard: int, base: int) -> str:
    """The on-disk file name for ``shard``'s segment starting after ``base``."""
    return f"shard-{shard:03d}.{base:012d}.ndjson"


def parse_segment_name(name: str) -> Optional[Tuple[int, int]]:
    """``(shard, base)`` for a segment file name, or ``None`` if foreign."""
    match = _SEGMENT_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def purge_segments(directory: str) -> List[str]:
    """Delete every segment file in ``directory``; returns deleted paths.

    Only valid once a snapshot has made all existing segments redundant:
    at rotation, and when a manager opens over a recovered data dir.
    The open-time purge is load-bearing, not housekeeping — recovery may
    have discarded intact frames stranded past a sequence gap, and new
    writes re-use those seqs, so a stale segment left on disk until the
    next rotation could shadow the acked frames in a second recovery.
    """
    deleted: List[str] = []
    if not os.path.isdir(directory):
        return deleted
    for name in sorted(os.listdir(directory)):
        if parse_segment_name(name) is not None:
            path = os.path.join(directory, name)
            os.unlink(path)
            deleted.append(path)
    return deleted


@dataclass(frozen=True)
class FrameIssue:
    """One defective frame found while scanning a segment.

    ``reason`` is a stable :class:`~.frames.FrameError` code (``torn``,
    ``invalid-json``, ``missing-crc``, ``checksum-mismatch``) or the
    scanner's own ``bad-header`` / ``bad-record``; ``line_number`` is
    1-based.  Scanning stops at the first issue — everything after an
    unreadable frame in the same segment is untrusted and discarded.
    """

    file: str
    line_number: int
    reason: str
    detail: str = ""


def _iter_raw_lines(data: bytes):
    """Yield ``(raw_line, terminated)`` pairs, keeping the newline."""
    start = 0
    while start < len(data):
        index = data.find(b"\n", start)
        if index == -1:
            yield data[start:], False
            return
        yield data[start : index + 1], True
        start = index + 1


def read_segment(path: str) -> Tuple[List[Dict[str, Any]], Optional[FrameIssue]]:
    """Scan one segment, returning its intact frames and the first defect.

    Returns every frame up to (excluding) the first defective line; the
    defect — if any — is described by the returned :class:`FrameIssue`.
    A clean segment returns ``(frames, None)``.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    name = os.path.basename(path)
    frames: List[Dict[str, Any]] = []
    for line_number, (raw, terminated) in enumerate(_iter_raw_lines(data), 1):
        if not terminated:
            return frames, FrameIssue(
                name, line_number, "torn", f"{len(raw)} trailing bytes"
            )
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            return frames, FrameIssue(name, line_number, "invalid-json", str(exc))
        try:
            frames.append(decode_frame(text))
        except FrameError as exc:
            return frames, FrameIssue(
                name, line_number, exc.reason, str(exc)
            )
    return frames, None


class WriteAheadLog:
    """Appender over the per-shard segment files of one WAL directory."""

    def __init__(
        self,
        directory: str,
        shard_count: int,
        base_version: int,
        fsync_policy: str = "batch",
        fsync_interval: int = 8,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync_policy!r}"
            )
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if fsync_interval < 1:
            raise ValueError(
                f"fsync_interval must be >= 1, got {fsync_interval}"
            )
        self.directory = directory
        self.shard_count = shard_count
        self.fsync_policy = fsync_policy
        self.fsync_interval = fsync_interval
        self.base_version = base_version
        self.appended_frames = 0
        self.committed_batches = 0
        self.fsync_count = 0
        self._pid = os.getpid()
        self._handles: List[Any] = []
        self._dirty = [False] * shard_count
        self._unsynced = [False] * shard_count
        self._commits_since_fsync = 0
        os.makedirs(directory, exist_ok=True)
        self._open_segments(base_version)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def _open_segments(self, base_version: int) -> None:
        self.base_version = base_version
        self._handles = []
        for shard in range(self.shard_count):
            path = os.path.join(
                self.directory, segment_name(shard, base_version)
            )
            handle = open(path, "a", encoding="utf-8", newline="\n")
            if handle.tell() == 0:
                handle.write(
                    encode_frame(
                        {
                            "kind": "segment",
                            "shard": shard,
                            "base": base_version,
                        }
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
            self._handles.append(handle)
        self._fsync_directory()
        self._dirty = [False] * self.shard_count
        self._unsynced = [False] * self.shard_count
        self._commits_since_fsync = 0

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def rotate(self, base_version: int) -> None:
        """Start fresh segments after a snapshot at ``base_version``.

        Every existing segment is superseded (all its records have
        ``seq <= base_version``, covered by the snapshot) and deleted.
        """
        if os.getpid() != self._pid:
            return
        for handle in self._handles:
            handle.flush()
            handle.close()
        purge_segments(self.directory)
        self.appended_frames = 0
        self._open_segments(base_version)

    def close(self) -> None:
        if os.getpid() != self._pid or not self._handles:
            return
        self.flush()
        for handle in self._handles:
            handle.close()
        self._handles = []

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def append(self, shard: int, record: Dict[str, Any]) -> None:
        """Buffer one mutation record frame into ``shard``'s segment.

        Callers must hold the store's write lock; the frame becomes
        crash-durable only per the fsync policy at the next
        :meth:`commit`.
        """
        if os.getpid() != self._pid:
            return
        self._handles[shard].write(encode_frame(dict(record, kind="record")))
        self._dirty[shard] = True
        self.appended_frames += 1

    def commit(self) -> Dict[str, Any]:
        """Flush buffered frames to the OS; fsync per policy.

        Returns ``{"fsynced": bool, "pending_fsync": int}`` — whether
        this commit reached stable storage and how many commits are
        still riding on the next group fsync.
        """
        if os.getpid() != self._pid:
            return {"fsynced": False, "pending_fsync": 0}
        for shard, dirty in enumerate(self._dirty):
            if dirty:
                self._handles[shard].flush()
                self._unsynced[shard] = True
                self._dirty[shard] = False
        self.committed_batches += 1
        self._commits_since_fsync += 1
        fsynced = False
        if self.fsync_policy == "always" or (
            self.fsync_policy == "batch"
            and self._commits_since_fsync >= self.fsync_interval
        ):
            self._fsync_unsynced()
            fsynced = True
        pending = 0 if fsynced else self._commits_since_fsync
        return {"fsynced": fsynced, "pending_fsync": pending}

    def flush(self) -> None:
        """Drain: flush and fsync everything, regardless of policy.

        The shutdown path — after the gateway stops admitting work, every
        acked mutation must be on stable storage before the process exits.
        """
        if os.getpid() != self._pid:
            return
        for shard, dirty in enumerate(self._dirty):
            if dirty:
                self._handles[shard].flush()
                self._unsynced[shard] = True
                self._dirty[shard] = False
        self._fsync_unsynced()

    def _fsync_unsynced(self) -> None:
        for shard, unsynced in enumerate(self._unsynced):
            if unsynced:
                os.fsync(self._handles[shard].fileno())
                self._unsynced[shard] = False
        self.fsync_count += 1
        self._commits_since_fsync = 0
