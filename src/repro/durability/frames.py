"""Checksummed NDJSON frames — the on-disk unit of the durability layer.

Both the WAL segments and the snapshot files are sequences of *frames*:
one JSON object per line, carrying a ``crc`` field computed over the
canonical serialization of the rest of the object.  The canonical form
(sorted keys, no whitespace) exists only for checksumming — the stored
line itself preserves the payload's key order, because attribute order
flows from ``ObjectInstance.values`` into result rows and byte-identical
recovery must reproduce it.

A frame is *intact* when the line ends in a newline, parses as a JSON
object, carries an integer ``crc``, and the recomputed checksum matches.
Anything else raises :class:`FrameError` with a stable ``reason`` code so
recovery can report precisely what it found at the tail of a segment:

``torn``
    The line does not end in a newline — the classic crash-interrupted
    final append.
``invalid-json``
    The line is newline-terminated but does not parse, or parses to a
    non-object.
``missing-crc``
    The object has no integer ``crc`` field.
``checksum-mismatch``
    The recomputed CRC-32 disagrees with the stored one (bit rot, or a
    torn write that still happened to end in a newline).
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Mapping

__all__ = ["FrameError", "checksum", "encode_frame", "decode_frame"]


class FrameError(ValueError):
    """An on-disk frame failed validation.

    ``reason`` is one of the stable codes documented in the module
    docstring; recovery reports it verbatim.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(f"{reason}: {detail}" if detail else reason)


def checksum(payload: Mapping[str, Any]) -> int:
    """CRC-32 of the canonical (sorted-keys, compact) JSON serialization."""
    canonical = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def encode_frame(payload: Mapping[str, Any]) -> str:
    """Serialize ``payload`` to one checksummed NDJSON line.

    The emitted line keeps ``payload``'s key order (the checksum alone is
    order-independent) and appends the ``crc`` field last.
    """
    if "crc" in payload:
        raise ValueError("frame payloads must not carry a 'crc' field")
    body: Dict[str, Any] = dict(payload)
    body["crc"] = checksum(payload)
    return json.dumps(body, separators=(",", ":")) + "\n"


def decode_frame(line: str) -> Dict[str, Any]:
    """Parse and verify one NDJSON line; the ``crc`` field is stripped.

    Raises :class:`FrameError` with a stable reason code on any defect.
    """
    if not line.endswith("\n"):
        raise FrameError("torn", f"{len(line)} bytes without newline")
    try:
        body = json.loads(line)
    except ValueError as exc:
        raise FrameError("invalid-json", str(exc)) from None
    if not isinstance(body, dict):
        raise FrameError("invalid-json", f"frame is {type(body).__name__}")
    stored = body.pop("crc", None)
    if not isinstance(stored, int) or isinstance(stored, bool):
        raise FrameError("missing-crc")
    actual = checksum(body)
    if actual != stored:
        raise FrameError(
            "checksum-mismatch", f"stored {stored:#010x}, actual {actual:#010x}"
        )
    return body
