"""The durability manager — one object wiring WAL, snapshots and recovery.

:class:`DurabilityManager` owns a *data directory*::

    <data-dir>/
      snapshot-000000000042.ndjson    # newest first wins; one spare kept
      wal/
        shard-000.000000000042.ndjson # per-shard segments, shared base
        shard-001.000000000042.ndjson

Lifecycle
---------
:meth:`open` is called once, before the service starts serving:

* **Fresh directory** — the provided store (typically just generated
  from ``--db``) is snapshotted as the initial recovery point and the
  WAL opens at its version.
* **Existing directory** — the persisted store is recovered (snapshot +
  WAL tail replay, :func:`~.recovery.recover`), the provided store is
  discarded, and the recovered state is immediately re-snapshotted so
  the WAL tail collapses and the next recovery is bounded again.

Either way :meth:`open` attaches itself as the store's mutation sink, so
from then on every direct mutation lands in the WAL *before* the write
lock is released.  The service calls :meth:`commit` once per mutation
batch (still under the write lock): buffered frames are flushed, fsynced
per policy, and — when the frame-count or age trigger fires — the store
is snapshotted and the segments rotated.

Configuration comes from constructor arguments, falling back to
``REPRO_*`` environment variables, falling back to defaults:

=========================== ============================= =========
argument                    environment variable          default
=========================== ============================= =========
``fsync_policy``            ``REPRO_WAL_FSYNC``           ``batch``
``fsync_interval``          ``REPRO_WAL_FSYNC_INTERVAL``  ``8``
``snapshot_frames``         ``REPRO_SNAPSHOT_FRAMES``     ``10000``
``snapshot_age``            ``REPRO_SNAPSHOT_AGE``        ``0`` (off)
=========================== ============================= =========

The age trigger reads an injectable monotonic ``clock`` (never the
calendar clock) and only fires when there are frames to compact.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..engine.storage import MutationRecord, ShardedObjectStore
from .recovery import WAL_SUBDIR, RecoveryReport, recover
from .snapshot import prune_snapshots, write_snapshot
from .wal import FSYNC_POLICIES, WriteAheadLog, purge_segments

__all__ = ["DurabilityManager"]

DEFAULT_FSYNC_POLICY = "batch"
DEFAULT_FSYNC_INTERVAL = 8
DEFAULT_SNAPSHOT_FRAMES = 10_000
DEFAULT_SNAPSHOT_AGE = 0.0


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


class DurabilityManager:
    """Write-ahead logging + snapshots + recovery for one data directory."""

    def __init__(
        self,
        data_dir: str,
        fsync_policy: Optional[str] = None,
        fsync_interval: Optional[int] = None,
        snapshot_frames: Optional[int] = None,
        snapshot_age: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fsync_policy is None:
            fsync_policy = os.environ.get(
                "REPRO_WAL_FSYNC", DEFAULT_FSYNC_POLICY
            )
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, "
                f"got {fsync_policy!r}"
            )
        if fsync_interval is None:
            fsync_interval = _env_int(
                "REPRO_WAL_FSYNC_INTERVAL", DEFAULT_FSYNC_INTERVAL
            )
        if snapshot_frames is None:
            snapshot_frames = _env_int(
                "REPRO_SNAPSHOT_FRAMES", DEFAULT_SNAPSHOT_FRAMES
            )
        if snapshot_age is None:
            snapshot_age = _env_float(
                "REPRO_SNAPSHOT_AGE", DEFAULT_SNAPSHOT_AGE
            )
        if snapshot_frames < 1:
            raise ValueError(
                f"snapshot_frames must be >= 1, got {snapshot_frames}"
            )
        self.data_dir = data_dir
        self.fsync_policy = fsync_policy
        self.fsync_interval = fsync_interval
        self.snapshot_frames = snapshot_frames
        self.snapshot_age = snapshot_age
        self.snapshot_count = 0
        self._clock = clock
        self._pid = os.getpid()
        self._store: Optional[ShardedObjectStore] = None
        self._wal: Optional[WriteAheadLog] = None
        self._last_snapshot_at = clock()
        self.last_report: Optional[RecoveryReport] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(
        self, store: ShardedObjectStore
    ) -> Tuple[ShardedObjectStore, Optional[RecoveryReport]]:
        """Recover-or-adopt; returns the store to serve and the report.

        A fresh data dir adopts (and snapshots) the provided ``store``;
        an existing one recovers the persisted state instead — the
        provided store is discarded and the *recovered* store returned.
        Either way the returned store has this manager attached as its
        mutation sink.
        """
        if self._store is not None:
            raise RuntimeError("durability manager is already open")
        os.makedirs(self.data_dir, exist_ok=True)
        report: Optional[RecoveryReport] = None
        if self._has_persisted_state():
            store, report = recover(
                self.data_dir,
                store.schema,
                shard_count=store.shard_count,
                journal_limit=store.journal_limit,
            )
            self.last_report = report
        self._store = store
        # (Re-)snapshot before opening the WAL: collapses any replayed
        # tail, and guarantees a recovery point exists from frame one.
        write_snapshot(self.data_dir, store)
        prune_snapshots(self.data_dir)
        self.snapshot_count += 1
        # The snapshot supersedes every existing segment; purge them now
        # rather than at the next rotation.  Frames discarded by recovery
        # (stranded past a sequence gap) share seqs with the writes about
        # to happen — left on disk, they could shadow the acked frames in
        # a second recovery.
        purge_segments(os.path.join(self.data_dir, WAL_SUBDIR))
        self._wal = WriteAheadLog(
            os.path.join(self.data_dir, WAL_SUBDIR),
            store.shard_count,
            store.version,
            fsync_policy=self.fsync_policy,
            fsync_interval=self.fsync_interval,
        )
        self._last_snapshot_at = self._clock()
        store.set_mutation_sink(self._on_record)
        return store, report

    def _has_persisted_state(self) -> bool:
        wal_dir = os.path.join(self.data_dir, WAL_SUBDIR)
        names = sorted(os.listdir(self.data_dir))
        if os.path.isdir(wal_dir):
            names.extend(sorted(os.listdir(wal_dir)))
        return any(
            name.endswith(".ndjson") and not name.endswith(".tmp")
            for name in names
        )

    def close(self) -> None:
        """Final flush + fsync, then release the segment files."""
        if self._wal is not None:
            self._wal.close()
        if self._store is not None:
            self._store.set_mutation_sink(None)
            self._store = None

    # ------------------------------------------------------------------
    # Write path (all under the service's store write lock)
    # ------------------------------------------------------------------
    def _on_record(self, record: MutationRecord) -> None:
        """The store's mutation sink: buffer one frame, routed by shard."""
        self._wal.append(self._store.shard_of(record.oid), record.as_dict())

    def commit(self) -> Dict[str, Any]:
        """Flush the batch; fsync per policy; snapshot when triggered.

        Called once per service mutation batch, under the write lock, so
        the snapshot (when taken) is consistent.  Returns the durability
        metadata attached to the batch's :class:`MutationResult`.
        """
        if os.getpid() != self._pid or self._wal is None:
            return {"fsynced": False, "pending_fsync": 0}
        result = self._wal.commit()
        if self._snapshot_due():
            self.snapshot()
            result["fsynced"] = True
        result["wal_frames"] = self._wal.appended_frames
        result["snapshot_version"] = self._wal.base_version
        return result

    def _snapshot_due(self) -> bool:
        if self._wal.appended_frames >= self.snapshot_frames:
            return True
        return (
            self.snapshot_age > 0
            and self._wal.appended_frames > 0
            and self._clock() - self._last_snapshot_at >= self.snapshot_age
        )

    def snapshot(self) -> str:
        """Snapshot now and rotate the WAL; returns the snapshot path.

        Callers must hold the store's write lock (commit's caller does).
        """
        if os.getpid() != self._pid:
            raise RuntimeError("snapshot() called from a forked process")
        self._wal.flush()
        path = write_snapshot(self.data_dir, self._store)
        self._wal.rotate(self._store.version)
        prune_snapshots(self.data_dir)
        self.snapshot_count += 1
        self._last_snapshot_at = self._clock()
        return path

    def flush(self) -> None:
        """Drain: force everything buffered onto stable storage."""
        if self._wal is not None:
            self._wal.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        wal = self._wal
        return {
            "data_dir": self.data_dir,
            "fsync_policy": self.fsync_policy,
            "fsync_interval": self.fsync_interval,
            "snapshot_frames": self.snapshot_frames,
            "snapshot_age": self.snapshot_age,
            "snapshot_count": self.snapshot_count,
            "snapshot_version": wal.base_version if wal else None,
            "wal_frames": wal.appended_frames if wal else 0,
            "wal_commits": wal.committed_batches if wal else 0,
            "wal_fsyncs": wal.fsync_count if wal else 0,
            "recovered": self.last_report is not None,
        }
