"""Fan one mutation-sink hook out to several consumers.

:class:`~repro.engine.storage.ShardedObjectStore` exposes exactly one
mutation sink, and two subsystems want it on a replicating primary: the
:class:`~repro.durability.manager.DurabilityManager` (WAL append) and
the :class:`~repro.replication.feed.ReplicationFeed` (frame fan-out).
:class:`SinkTee` composes them — sinks fire in attach order, so wiring
the WAL first preserves the durability ordering guarantee (a record is
on disk before any replica can see it).
"""

from __future__ import annotations

import threading
from typing import Callable, Tuple

__all__ = ["SinkTee"]


class SinkTee:
    """A mutation sink that forwards each record to every attached sink."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sinks: Tuple[Callable, ...] = ()

    def attach(self, sink: Callable) -> None:
        """Append ``sink``; it fires after every previously attached one."""
        with self._lock:
            self._sinks = self._sinks + (sink,)

    def detach(self, sink: Callable) -> None:
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s is not sink)

    def __len__(self) -> int:
        return len(self._sinks)

    def __call__(self, record) -> None:
        # Snapshot the tuple so attach/detach during iteration is safe;
        # fires inside the store's write-lock span like any other sink.
        for sink in self._sinks:
            sink(record)
