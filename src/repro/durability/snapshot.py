"""Atomic store snapshots.

A snapshot is one checksummed NDJSON file, ``snapshot-{version:012d}.ndjson``,
holding the complete store state at a single version:

1. a ``{"kind": "snapshot", "format": 1, ...}`` header frame carrying
   :meth:`ShardedObjectStore.snapshot_header` — shard count, global and
   per-shard versions, and the per-class OID allocators;
2. one ``{"kind": "row", ...}`` frame per instance, classes in sorted
   name order and instances in OID order (so equal stores produce
   byte-identical snapshots);
3. a ``{"kind": "end", "rows": N}`` trailer frame whose count seals the
   file — a snapshot missing its trailer is *invalid*, never partially
   loaded.

Writes are atomic: the file is assembled under a ``.tmp`` name, fsynced,
``os.replace``\\ d into place, and the directory entry fsynced.  A crash
mid-snapshot leaves either the previous snapshot set untouched or a
stray ``.tmp`` that loading ignores.  Loading validates every frame and
raises on the first defect, so recovery can fall back to the next older
snapshot (or an empty store) rather than trust a torn one.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple

from ..engine.storage import ShardedObjectStore, StorageError
from ..schema.schema import Schema
from .frames import FrameError, decode_frame, encode_frame

__all__ = [
    "SnapshotError",
    "list_snapshots",
    "load_snapshot",
    "parse_snapshot_name",
    "prune_snapshots",
    "snapshot_name",
    "write_snapshot",
]

#: On-disk snapshot format version, bumped on incompatible changes.
SNAPSHOT_FORMAT = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.ndjson$")


class SnapshotError(StorageError):
    """A snapshot file failed validation while loading."""


def snapshot_name(version: int) -> str:
    return f"snapshot-{version:012d}.ndjson"


def parse_snapshot_name(name: str) -> Optional[int]:
    """The version embedded in a snapshot file name, or ``None``."""
    match = _SNAPSHOT_RE.match(name)
    if match is None:
        return None
    return int(match.group(1))


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """All ``(version, path)`` snapshot files, newest first."""
    found = []
    for name in os.listdir(directory):
        version = parse_snapshot_name(name)
        if version is not None:
            found.append((version, os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def write_snapshot(directory: str, store: ShardedObjectStore) -> str:
    """Atomically persist ``store``'s full state; returns the final path.

    Callers must hold the store's write lock (or otherwise guarantee the
    store is quiescent) so the header versions and the rows agree.
    """
    os.makedirs(directory, exist_ok=True)
    final_path = os.path.join(directory, snapshot_name(store.version))
    tmp_path = final_path + ".tmp"
    rows = 0
    with open(tmp_path, "w", encoding="utf-8", newline="\n") as handle:
        header = dict(store.snapshot_header())
        header_frame = {"kind": "snapshot", "format": SNAPSHOT_FORMAT}
        header_frame.update(header)
        handle.write(encode_frame(header_frame))
        for class_name, oid, values in store.snapshot_rows():
            handle.write(
                encode_frame(
                    {
                        "kind": "row",
                        "class": class_name,
                        "oid": oid,
                        "values": values,
                    }
                )
            )
            rows += 1
        handle.write(encode_frame({"kind": "end", "rows": rows}))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, final_path)
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    return final_path


def prune_snapshots(directory: str, keep: int = 2) -> List[str]:
    """Delete all but the ``keep`` newest snapshots; returns deleted paths.

    Keeping one spare means a defective newest snapshot (however
    unlikely, given the atomic write) still leaves a recovery point.
    """
    deleted = []
    for _, path in list_snapshots(directory)[keep:]:
        os.unlink(path)
        deleted.append(path)
    return deleted


def load_snapshot(
    path: str, schema: Schema, journal_limit: Optional[int] = None
) -> ShardedObjectStore:
    """Rebuild the exact snapshotted store from ``path``.

    Raises :class:`SnapshotError` on any structural defect — a frame
    failure, a missing or short trailer, a header/name version mismatch —
    so callers can fall back instead of loading a torn file.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    else:
        raise SnapshotError(f"{path}: missing trailing newline")
    frames = []
    for line_number, raw in enumerate(lines, 1):
        try:
            frames.append(decode_frame(raw.decode("utf-8") + "\n"))
        except (FrameError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"{path}:{line_number}: {exc}") from None
    if len(frames) < 2:
        raise SnapshotError(f"{path}: too short ({len(frames)} frames)")
    header, trailer = frames[0], frames[-1]
    if header.get("kind") != "snapshot":
        raise SnapshotError(f"{path}: first frame is not a snapshot header")
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: unsupported format {header.get('format')!r}"
        )
    if trailer.get("kind") != "end":
        raise SnapshotError(f"{path}: missing end trailer")
    row_frames = frames[1:-1]
    if trailer.get("rows") != len(row_frames):
        raise SnapshotError(
            f"{path}: trailer claims {trailer.get('rows')!r} rows, "
            f"found {len(row_frames)}"
        )
    named_version = parse_snapshot_name(os.path.basename(path))
    if named_version is not None and named_version != header.get("version"):
        raise SnapshotError(
            f"{path}: header version {header.get('version')!r} disagrees "
            f"with file name"
        )

    def rows():
        for frame in row_frames:
            if frame.get("kind") != "row":
                raise SnapshotError(f"{path}: unexpected {frame.get('kind')!r} frame")
            class_name = frame.get("class")
            values = frame.get("values")
            # restore() validates oids and class membership, but a
            # non-string class or non-object values would reach dict()/
            # hashing first and raise TypeError — reject them here so a
            # defective snapshot is always a SnapshotError the recovery
            # fallback can catch.
            if not isinstance(class_name, str):
                raise SnapshotError(
                    f"{path}: row frame 'class' must be a string, "
                    f"got {type(class_name).__name__}"
                )
            if not isinstance(values, dict):
                raise SnapshotError(
                    f"{path}: row frame 'values' must be an object, "
                    f"got {type(values).__name__}"
                )
            yield class_name, frame.get("oid"), values

    kwargs = {} if journal_limit is None else {"journal_limit": journal_limit}
    try:
        return ShardedObjectStore.restore(schema, header, rows(), **kwargs)
    except SnapshotError:
        raise
    except (StorageError, TypeError, ValueError) as exc:
        raise SnapshotError(f"{path}: {exc}") from None
