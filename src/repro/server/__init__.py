"""Async query gateway: serve the optimizer to many concurrent clients.

This package is the network-facing layer of the system.  It fronts one
:class:`~repro.service.OptimizationService` with an asyncio TCP server
speaking a line-delimited JSON protocol, and adds everything sustained
multi-client traffic needs that the blocking service API does not have:

* :mod:`~repro.server.protocol` — the wire format and request parsing into
  the existing query AST;
* :mod:`~repro.server.admission` — bounded in-flight requests, per-client
  fairness, load shedding, graceful drain;
* :mod:`~repro.server.gateway` — dispatch, the bounded worker pool, and
  single-flight deduplication of identical in-flight requests;
* :mod:`~repro.server.session` — one pipelined connection;
* :mod:`~repro.server.client` — :class:`AsyncGatewayClient` (TCP or
  in-process);
* :mod:`~repro.server.loadgen` — the multi-client load generator behind
  ``python -m repro bench-client`` and ``BENCH_gateway.json``.

Start a gateway in three lines::

    gateway = QueryGateway(service)          # service has a store attached
    host, port = await gateway.start()
    await gateway.serve_forever()

or from the shell: ``python -m repro serve --db DB2 --engine vectorized``.
"""

from .admission import AdmissionController, AdmissionStats
from .client import AsyncGatewayClient
from .errors import (
    AdmissionError,
    BackupUnavailable,
    ClientQueueFull,
    GatewayDraining,
    GatewayError,
    GatewayRequestError,
    MutationError,
    ProtocolError,
    ReadOnlyError,
    ReplicationUnavailable,
    RequestTimeout,
)
from .gateway import QueryGateway
from .loadgen import LoadReport, MutationMix, connect_clients, run_load
from .protocol import PROTOCOL_VERSION, decode_frame, encode_frame, parse_request
from .session import ClientSession

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionStats",
    "AsyncGatewayClient",
    "BackupUnavailable",
    "ClientQueueFull",
    "ClientSession",
    "GatewayDraining",
    "GatewayError",
    "GatewayRequestError",
    "LoadReport",
    "MutationError",
    "MutationMix",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryGateway",
    "ReadOnlyError",
    "ReplicationUnavailable",
    "RequestTimeout",
    "connect_clients",
    "decode_frame",
    "encode_frame",
    "parse_request",
    "run_load",
]
