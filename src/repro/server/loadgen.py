"""Multi-client load generator for the gateway.

Drives a workload of query texts through N :class:`AsyncGatewayClient`
instances and aggregates latency/throughput/error statistics into a
:class:`LoadReport`.  Used by the ``bench-client`` CLI subcommand and by
``benchmarks/test_gateway_throughput.py`` (which persists the report into
``BENCH_gateway.json``).

Two arrival disciplines:

* **open loop** (``rate`` set) — each client fires requests on a fixed
  arrival schedule regardless of completions, the standard model for
  sustained multi-client traffic: latency under overload grows in the
  queue instead of silently throttling the offered load.
* **closed loop** (``rate=None``) — each client issues its requests
  back-to-back, waiting for each response; with ``lockstep=True`` all
  clients synchronize on a barrier before every request wave, which makes
  single-flight coalescing deterministic (one leader per wave) — the
  discipline the dedup measurement uses.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .client import AsyncGatewayClient
from .errors import GatewayError


async def connect_clients(
    endpoints: Sequence[Any],
    count: int,
    *,
    retry_reads: int = 0,
    client_prefix: str = "load",
) -> List[AsyncGatewayClient]:
    """Connect ``count`` clients striped round-robin across ``endpoints``.

    ``endpoints`` is a list of ``(host, port)`` pairs — one per gateway
    process.  Client ``i`` connects to ``endpoints[i % len(endpoints)]``,
    so a workload fans out evenly over a replica fleet without a router
    in the measurement path.  ``retry_reads`` is forwarded to every
    client (see :class:`AsyncGatewayClient.connect`).  On any connect
    failure the already-opened clients are closed before re-raising.
    """
    if not endpoints:
        raise ValueError("connect_clients requires at least one endpoint")
    clients: List[AsyncGatewayClient] = []
    try:
        for index in range(count):
            host, port = endpoints[index % len(endpoints)]
            clients.append(
                await AsyncGatewayClient.connect(
                    host,
                    port,
                    client_id=f"{client_prefix}-{index}",
                    retry_reads=retry_reads,
                )
            )
    except BaseException:
        for client in clients:
            await client.close()
        raise
    return clients


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of ``samples`` (0.0 when empty).

    >>> percentile([4.0, 1.0, 3.0, 2.0], 0.5)
    3.0
    >>> percentile([], 0.95)
    0.0
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class MutationMix:
    """Shape of the write traffic in a mixed read/write load run.

    Every ``every``-th request of each client becomes an ``insert`` into
    ``class_name`` instead of a read.  ``values`` is a template the
    generator stamps with a unique ``(client, sequence)`` suffix for each
    string attribute named in ``unique_attributes``, so inserted rows stay
    distinguishable without coordination between clients.
    """

    every: int = 10
    class_name: str = "cargo"
    values: Dict[str, Any] = field(default_factory=dict)
    unique_attributes: Sequence[str] = ()
    #: Rows per write request: 1 sends single ``insert`` RPCs, larger
    #: values send ``insert_many`` batches (one WAL commit per batch).
    rows: int = 1

    def row_for(
        self, client_index: int, number: int, suffix: str = ""
    ) -> Dict[str, Any]:
        """The values object client ``client_index``'s request ``number`` inserts."""
        row = dict(self.values)
        for attribute in self.unique_attributes:
            row[attribute] = (
                f"{row.get(attribute, 'w')}-{client_index}-{number}{suffix}"
            )
        return row

    def rows_for(self, client_index: int, number: int) -> List[Dict[str, Any]]:
        """The batch a multi-row write request inserts (still unique rows)."""
        return [
            self.row_for(client_index, number, suffix=f"-{batch_index}")
            for batch_index in range(max(self.rows, 1))
        ]


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generator run."""

    clients: int = 0
    requests: int = 0
    errors: int = 0
    rows: int = 0
    duration: float = 0.0
    latencies: List[float] = field(default_factory=list)
    error_codes: Dict[str, int] = field(default_factory=dict)
    coalesced: int = 0
    mutations: int = 0
    #: Standing subscriptions held open for the duration of the run, and
    #: the diff/resync push frames they received while the load ran.
    subscriptions: int = 0
    push_frames: int = 0

    @property
    def p50(self) -> float:
        """Median request latency in seconds."""
        return percentile(self.latencies, 0.50)

    @property
    def p95(self) -> float:
        """95th-percentile request latency in seconds."""
        return percentile(self.latencies, 0.95)

    @property
    def requests_per_second(self) -> float:
        """Completed requests per second of wall clock."""
        return self.requests / self.duration if self.duration > 0 else 0.0

    @property
    def rows_per_second(self) -> float:
        """Answer rows returned per second of wall clock."""
        return self.rows / self.duration if self.duration > 0 else 0.0

    @property
    def coalesced_rate(self) -> float:
        """Fraction of successful requests served from a shared flight."""
        completed = self.requests - self.errors
        return self.coalesced / completed if completed > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (the ``BENCH_gateway.json`` shape)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "rows": self.rows,
            "duration_s": self.duration,
            "latency_p50_ms": self.p50 * 1000.0,
            "latency_p95_ms": self.p95 * 1000.0,
            "requests_per_s": self.requests_per_second,
            "rows_per_s": self.rows_per_second,
            "coalesced": self.coalesced,
            "coalesced_rate": self.coalesced_rate,
            "mutations": self.mutations,
            "subscriptions": self.subscriptions,
            "push_frames": self.push_frames,
            "error_codes": dict(self.error_codes),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.requests} requests from {self.clients} clients in "
            f"{self.duration:.2f}s: p50 {self.p50 * 1000:.2f} ms, "
            f"p95 {self.p95 * 1000:.2f} ms, "
            f"{self.requests_per_second:.0f} req/s, "
            f"{self.rows_per_second:.0f} rows/s, "
            f"{self.coalesced_rate:.0%} coalesced, {self.mutations} writes, "
            f"{self.subscriptions} subscriptions, "
            f"{self.push_frames} push frames, "
            f"{self.errors} errors"
        )


async def run_load(
    clients: List[AsyncGatewayClient],
    queries: Sequence[str],
    *,
    requests_per_client: int = 20,
    op: str = "execute",
    options: Optional[Dict[str, Any]] = None,
    rate: Optional[float] = None,
    lockstep: bool = False,
    mutations: Optional[MutationMix] = None,
    subscribe: int = 0,
) -> LoadReport:
    """Drive ``queries`` through ``clients`` and aggregate a report.

    Client ``i`` issues ``requests_per_client`` requests, cycling through
    the workload starting at offset ``i`` (set ``lockstep=True`` to start
    everyone at offset 0 and synchronize waves — the repeated-query dedup
    discipline).  ``rate`` (requests/second per client) selects the open
    loop; ``None`` the closed loop.  ``mutations`` opens the mixed
    read/write mode: every :attr:`MutationMix.every`-th request of a
    client becomes an insert, deterministically placed so the mix is
    reproducible run over run.  ``subscribe=N`` makes the first ``N``
    clients each hold a live subscription (client ``i`` on query ``i``)
    for the whole run; the diff/resync push frames they receive are
    counted into :attr:`LoadReport.push_frames` after delivery settles,
    and the views are unsubscribed before the report returns.
    """
    report = LoadReport(clients=len(clients))
    options = options or {}
    barrier_event: Optional[asyncio.Event] = None
    barrier_count = 0

    async def fire(
        client: AsyncGatewayClient,
        query: str,
        mutation_rows: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        start = time.perf_counter()
        try:
            if mutation_rows is not None and len(mutation_rows) > 1:
                payload = await client.insert_many(
                    mutations.class_name, mutation_rows
                )
            elif mutation_rows is not None:
                payload = await client.insert(
                    mutations.class_name, mutation_rows[0]
                )
            elif op == "optimize":
                payload = await client.optimize(query, **options)
            else:
                payload = await client.execute(query, **options)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Gateway errors carry a wire code; transport failures (peer
            # reset, closed connection) are counted too instead of
            # aborting the whole run and losing the report.
            report.errors += 1
            code = (
                exc.code
                if isinstance(exc, GatewayError)
                else type(exc).__name__
            )
            report.error_codes[code] = report.error_codes.get(code, 0) + 1
        else:
            if mutation_rows is not None:
                report.mutations += len(mutation_rows)
            report.rows += payload.get("row_count", 0)
            if payload.get("coalesced"):
                report.coalesced += 1
        finally:
            report.requests += 1
            report.latencies.append(time.perf_counter() - start)

    def rows_for(index: int, number: int) -> Optional[List[Dict[str, Any]]]:
        """The insert batch for this request slot (``None`` = it is a read)."""
        if mutations is None or mutations.every < 1:
            return None
        if (index + number) % mutations.every != mutations.every - 1:
            return None
        return mutations.rows_for(index, number)

    async def open_loop(index: int, client: AsyncGatewayClient) -> None:
        interval = 1.0 / rate
        begin = time.perf_counter()
        tasks = []
        for number in range(requests_per_client):
            due = begin + number * interval
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            query = queries[(index + number) % len(queries)]
            tasks.append(
                asyncio.ensure_future(fire(client, query, rows_for(index, number)))
            )
        await asyncio.gather(*tasks)

    async def closed_loop(index: int, client: AsyncGatewayClient) -> None:
        nonlocal barrier_count
        for number in range(requests_per_client):
            if lockstep:
                # Reusable barrier: the last client to arrive releases the
                # wave, so all clients fire request N simultaneously.
                barrier_count += 1
                if barrier_count == len(clients):
                    barrier_count = 0
                    event, new_event = barrier_event, asyncio.Event()
                    _update_barrier(new_event)
                    event.set()
                else:
                    await barrier_event.wait()
                offset = number  # everyone sends the same query per wave
            else:
                offset = index + number
            await fire(
                client, queries[offset % len(queries)], rows_for(index, number)
            )

    def _update_barrier(event: asyncio.Event) -> None:
        nonlocal barrier_event
        barrier_event = event

    def count_failure(exc: Exception) -> None:
        report.errors += 1
        code = exc.code if isinstance(exc, GatewayError) else type(exc).__name__
        report.error_codes[code] = report.error_codes.get(code, 0) + 1

    subscribed: List[tuple] = []
    for index, client in enumerate(clients[: max(subscribe, 0)]):
        try:
            payload = await client.subscribe(queries[index % len(queries)])
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            count_failure(exc)
        else:
            subscribed.append((client, payload["subscription"]))
    report.subscriptions = len(subscribed)

    if lockstep:
        barrier_event = asyncio.Event()
    start = time.perf_counter()
    runner = open_loop if rate else closed_loop
    await asyncio.gather(
        *(runner(index, client) for index, client in enumerate(clients))
    )
    report.duration = time.perf_counter() - start

    if subscribed:
        # Push frames trail the mutations that caused them; wait for the
        # counters to go quiet before reading them off.
        settled = -1
        for _ in range(40):
            total = sum(client.push_frames for client, _sid in subscribed)
            if total == settled:
                break
            settled = total
            await asyncio.sleep(0.05)
        report.push_frames = sum(
            client.push_frames for client, _sid in subscribed
        )
        for client, sid in subscribed:
            try:
                await client.unsubscribe(sid)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                count_failure(exc)
    return report
