"""Gateway error taxonomy.

Every failure the gateway can report to a client maps to one
:class:`GatewayError` subclass with a stable wire ``code``, so clients can
branch on the code without parsing messages and the protocol module can
serialize any gateway exception uniformly (:func:`~repro.server.protocol.
error_response`).  Unexpected exceptions inside handlers are reported with
the generic ``internal`` code and never take the connection down.
"""

from __future__ import annotations


class GatewayError(Exception):
    """Base class for every error the gateway reports over the wire."""

    #: Stable machine-readable error code sent in the response frame.
    code = "internal"


class ProtocolError(GatewayError):
    """The request frame is malformed (bad JSON, unknown op, bad query).

    Protocol errors are per-frame, not per-connection: the session answers
    with an error response and keeps reading, so one bad frame from a
    client never kills its other in-flight requests.
    """

    code = "protocol_error"


class AdmissionError(GatewayError):
    """The gateway is at capacity and the request was not admitted."""

    code = "overloaded"


class ClientQueueFull(AdmissionError):
    """This client already has too many requests pending (fairness bound).

    The per-client bound keeps one greedy connection from occupying the
    whole waiting queue and starving every other client.
    """

    code = "client_queue_full"


class GatewayDraining(AdmissionError):
    """The gateway is shutting down and no longer admits new requests.

    Requests admitted before the drain began still complete and receive
    their responses; only *new* arrivals are turned away with this code.
    """

    code = "draining"


class MutationError(GatewayError):
    """A well-formed mutation could not be applied to the store.

    Raised for storage-level failures the protocol validator cannot see
    up front — deleting or updating an OID that does not exist, for
    example.  Like every gateway error it is per-request: the frame gets
    an error response with this code and the connection stays up.
    """

    code = "mutation_error"


class RequestTimeout(GatewayError):
    """The request did not complete within its timeout budget.

    A timeout abandons this caller's *wait* only — shared single-flight
    work keeps running and resolves for any other waiter, so a timed-out
    request can never poison the in-flight map.
    """

    code = "timeout"


class ReadOnlyError(GatewayError):
    """A mutating op reached a read-only replica gateway.

    Replicas apply writes only through the replication feed; direct
    ``insert``/``update``/``delete``/``rules`` RPCs must go to the
    primary (the router does this automatically).  The rejection is
    per-request and the connection stays up.
    """

    code = "read_only"


class ReplicationUnavailable(GatewayError):
    """This gateway is not streaming WAL frames (``subscribe_wal``).

    Returned when the server was started without ``--replicate-on``, so
    there is no feed endpoint to hand out.
    """

    code = "replication_unavailable"


class BackupUnavailable(GatewayError):
    """The ``backup`` RPC needs durability and none is configured.

    On-demand snapshots are written by the durability manager; a server
    started without ``--data-dir`` has nowhere to put one.
    """

    code = "backup_unavailable"


class SubscriptionUnknown(GatewayError):
    """An ``unsubscribe`` named a subscription this gateway is not serving.

    Either the id never existed here, or the view was already dropped —
    by an earlier unsubscribe, a slow-consumer disconnect, or the
    connection that owned it going away.  Per-request, as always.
    """

    code = "subscription_unknown"


class SubscriptionLimit(GatewayError):
    """The gateway is at its standing-view cap (``--max-subscriptions``).

    Each live subscription retains an optimized plan and a result
    snapshot and is re-checked after every write, so the gateway bounds
    how many it will hold.  Free one (``unsubscribe``) or raise the cap.
    """

    code = "subscription_limit"


class GatewayRequestError(GatewayError):
    """Client-side image of an error response received from the gateway."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
