"""The asyncio query gateway.

:class:`QueryGateway` fronts one :class:`~repro.service.OptimizationService`
for many concurrent clients: an asyncio TCP server speaks the
line-delimited JSON protocol (:mod:`repro.server.protocol`), admission
control (:mod:`repro.server.admission`) bounds and fairly shares the
in-flight request set, and a bounded worker-thread pool runs the actual
optimizer/engine work so the event loop never blocks on a query.

**Single-flight deduplication.**  ``optimize`` and ``execute`` requests are
deduplicated in flight by structural query identity
(:func:`~repro.query.equivalence.equivalence_key`) plus their options, via
the service's shared :class:`~repro.caching.SingleFlightMap`: while a
request is being computed, every identical concurrent request waits on the
same future and receives the same payload (marked ``"coalesced": true``),
so a thundering herd of N identical queries costs one optimization and one
execution.  Flight keys embed the repository generation and the store
version, so a constraint change or data mutation can never serve a stale
payload.  The shared work is resolved by the worker thread itself (handed
back to the event loop), not by the request coroutine that started it —
which is why a timed-out or disconnected *waiter* never cancels work other
clients are waiting on, and why a completed flight always retires its map
entry even if every waiter gave up.

**Lifecycle.**  :meth:`start` binds the listener, :meth:`serve_forever`
blocks, and :meth:`stop` gracefully drains: new requests are rejected with
the ``draining`` code while admitted and queued work runs to completion
and responses are flushed before connections close.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..engine.storage import StorageError
from ..query.equivalence import equivalence_key
from ..subscriptions.queue import DEFAULT_QUEUE_LIMIT, PushChannel
from .admission import AdmissionController
from .errors import (
    BackupUnavailable,
    GatewayDraining,
    GatewayError,
    MutationError,
    ProtocolError,
    ReadOnlyError,
    ReplicationUnavailable,
    RequestTimeout,
    SubscriptionLimit,
    SubscriptionUnknown,
)
from .protocol import (
    MUTATION_OPS,
    PROTOCOL_VERSION,
    Request,
    batch_payload,
    decode_frame,
    error_response,
    execution_payload,
    mutation_payload,
    ok_response,
    optimization_payload,
    parse_request,
)


def _consume(future: "asyncio.Future") -> None:
    """Swallow an abandoned future's outcome so it never warns."""
    if not future.cancelled():
        future.exception()


class QueryGateway:
    """Serve one :class:`OptimizationService` to many concurrent clients.

    Parameters
    ----------
    service:
        The (already configured) optimization service.  Execution RPCs
        require it to have an attached object store.
    host, port:
        Listen address; port ``0`` binds an ephemeral port (reported by
        :meth:`start` and :attr:`address`).
    worker_threads:
        Width of the thread pool the optimizer/engine work runs on.  This
        bounds *compute* concurrency; admission bounds *request*
        concurrency (coalesced waiters hold a request slot but no thread).
    max_in_flight, max_waiting, max_pending_per_client:
        Admission-control limits (see :class:`AdmissionController`).
    request_timeout:
        Default per-request budget in seconds, covering admission wait and
        computation.  Requests may lower (never raise) it with the
        ``timeout`` option.
    read_only, replication, follower:
        Replication wiring (:mod:`repro.replication`): ``read_only``
        rejects mutation and ``rules`` frames with the ``read_only``
        code, ``replication`` is the primary's feed (answers
        ``subscribe_wal`` and reports per-replica lag), ``follower`` is
        the replica's follower (reports sync progress).

    Examples
    --------
    An in-process round trip (no socket; :meth:`start` would add TCP):

    >>> import asyncio
    >>> from repro.constraints import ConstraintRepository, build_example_constraints
    >>> from repro.schema import build_example_schema
    >>> from repro.server.client import AsyncGatewayClient
    >>> from repro.service import OptimizationService
    >>> schema = build_example_schema()
    >>> repository = ConstraintRepository(schema)
    >>> repository.add_all(build_example_constraints())
    >>> async def roundtrip():
    ...     service = OptimizationService(schema, repository=repository)
    ...     gateway = QueryGateway(service)
    ...     client = AsyncGatewayClient.in_process(gateway)
    ...     payload = await client.optimize(
    ...         '(SELECT {cargo.desc} { } {vehicle.desc = "refrigerated truck"} '
    ...         '{collects} {cargo, vehicle})')
    ...     await gateway.stop()
    ...     return payload["source"]
    >>> asyncio.run(roundtrip())
    'computed'
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        worker_threads: int = 4,
        max_in_flight: int = 64,
        max_waiting: int = 256,
        max_pending_per_client: int = 64,
        request_timeout: float = 30.0,
        read_only: bool = False,
        replication=None,
        follower=None,
        max_subscriptions: int = 64,
        subscription_queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        # Replication wiring: a read-only replica rejects mutating RPCs
        # (its store changes only through the feed); ``replication`` is
        # the primary's ReplicationFeed (subscribe_wal / lag reporting),
        # ``follower`` the replica's ReplicaFollower (progress reporting).
        self._read_only = read_only
        self._replication = replication
        self._follower = follower
        self.admission = AdmissionController(
            max_in_flight=max_in_flight,
            max_waiting=max_waiting,
            max_pending_per_client=max_pending_per_client,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=worker_threads, thread_name_prefix="gateway-worker"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set = set()
        # Live subscriptions this gateway is pushing to: sid -> (channel,
        # subscriber).  Touched only on the event loop.
        self._max_subscriptions = max_subscriptions
        self._subscription_queue_limit = subscription_queue_limit
        self._channels: Dict[str, Tuple[PushChannel, Any]] = {}
        self._subscription_overflows = 0
        self._started = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._responses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the TCP listener; returns the actual ``(host, port)``."""
        from .session import ClientSession

        async def on_connect(reader, writer):
            session = ClientSession(self, reader, writer)
            self._sessions.add(session)
            try:
                await session.run()
            finally:
                self._sessions.discard(session)

        self._server = await asyncio.start_server(
            on_connect, self.host, self.port, limit=1 << 20
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        """The listen address (final port once :meth:`start` returned)."""
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been called)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self, drain: bool = True, timeout: float = 10.0) -> bool:
        """Shut down, by default draining in-flight work first.

        Stops accepting connections, rejects new requests with the
        ``draining`` code, waits up to ``timeout`` seconds for admitted
        and queued requests to complete (responses are flushed to their
        sockets), then closes the remaining sessions and the worker pool.
        Returns ``True`` if the backlog fully drained in time.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.admission.drain(timeout if drain else 0.0)
        for sid in list(self._channels):
            self._drop_channel(sid)
        registry = getattr(self.service, "subscriptions", None)
        if registry is not None:
            for view in registry.stats()["views"]:
                registry.unsubscribe(view["subscription"])
        for session in list(self._sessions):
            await session.close()
        # Never block the event loop on worker threads: a drained pool is
        # already idle, and after a failed drain a stuck query must not
        # defeat the drain timeout we just honored.
        self._pool.shutdown(wait=False, cancel_futures=not drained)
        # Admission is closed and the pool is down: no more mutations can
        # start, so this is the moment acked-but-unfsynced WAL frames get
        # forced onto stable storage (a no-op without a durability layer).
        flush = getattr(self.service, "flush_durability", None)
        if flush is not None:
            await asyncio.get_running_loop().run_in_executor(None, flush)
        return drained

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch_line(
        self, line: bytes, client_id: str, subscriber=None
    ) -> Dict[str, Any]:
        """Decode one wire line and dispatch it (sessions' entry point)."""
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            self._count(self._errors, exc.code)
            return error_response(None, exc)
        return await self.dispatch(frame, client_id, subscriber=subscriber)

    async def dispatch(
        self,
        frame: Dict[str, Any],
        client_id: str = "in-process",
        *,
        subscriber=None,
    ) -> Dict[str, Any]:
        """Handle one request frame; always returns a response frame.

        The in-process entry point — :class:`AsyncGatewayClient` in
        in-process mode calls this directly, bypassing TCP but exercising
        the identical parse → admit → single-flight → respond path.
        """
        request_id = frame.get("id")
        try:
            request = parse_request(frame, self.service.schema)
        except GatewayError as exc:
            self._count(self._errors, exc.code)
            return error_response(request_id, exc)
        self._count(self._requests, request.op)
        if self._read_only and (request.op in MUTATION_OPS or request.op == "rules"):
            # A replica's store changes only through the replication
            # feed; direct writes must go to the primary (the router
            # forwards them there automatically).
            error = ReadOnlyError(
                f"this gateway is a read-only replica; send {request.op!r} "
                "to the primary"
            )
            self._count(self._errors, error.code)
            return error_response(request_id, error)
        if request.op == "stats":
            # Served inline and never queued: an overloaded or draining
            # gateway must still be observable.
            try:
                payload = self.stats_payload()
            except Exception as exc:
                self._count(self._errors, "internal")
                return error_response(request_id, exc)
            self._responses += 1
            return ok_response(request_id, payload)
        if request.op == "replica_status":
            # Inline like stats: the router polls this on every pinned
            # read, so it must stay answerable under load and drain.
            try:
                payload = self.replica_status_payload()
            except Exception as exc:
                self._count(self._errors, "internal")
                return error_response(request_id, exc)
            self._responses += 1
            return ok_response(request_id, payload)
        if request.op == "subscribe_wal":
            try:
                payload = self._subscribe_wal_payload()
            except GatewayError as exc:
                self._count(self._errors, exc.code)
                return error_response(request_id, exc)
            self._responses += 1
            return ok_response(request_id, payload)
        timeout = self._timeout_for(request)
        try:
            # The budget covers the whole request: admission wait included.
            # Timing out while queued cancels only this waiter (the
            # controller reclaims the queue entry); timing out while
            # holding a slot abandons the wait on the shared flight, which
            # keeps running for everyone else.
            payload = await asyncio.wait_for(
                self._admitted(request, client_id, timeout, subscriber), timeout
            )
        except asyncio.TimeoutError:
            error = RequestTimeout(f"request did not complete within {timeout:g}s")
            self._count(self._errors, error.code)
            return error_response(request_id, error)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            code = exc.code if isinstance(exc, GatewayError) else "internal"
            self._count(self._errors, code)
            return error_response(request_id, exc)
        self._responses += 1
        return ok_response(request_id, payload)

    def _timeout_for(self, request: Request) -> float:
        timeout = self.request_timeout
        option_timeout = request.options.get("timeout")
        if option_timeout is not None:
            timeout = min(timeout, float(option_timeout))
        return timeout

    async def _admitted(
        self, request: Request, client_id: str, timeout: float, subscriber=None
    ) -> Dict[str, Any]:
        async with self.admission.slot(client_id):
            return await self._handle(request, timeout, subscriber)

    async def _handle(
        self, request: Request, timeout: float, subscriber=None
    ) -> Dict[str, Any]:
        if request.op == "rules":
            payload = self._handle_rules(request)
            # Dynamic-rule churn invalidates every standing view touching
            # the rule set: flag them and pump so subscribers receive
            # their ``resync`` frames (re-optimized against the new
            # rules) before this RPC answers.  A pump failure self-heals
            # on the next write; it never fails the rules RPC itself.
            registry = getattr(self.service, "subscriptions", None)
            if registry is not None and registry.active:
                registry.note_rule_churn()
                try:
                    await self._run_in_pool(registry.pump, timeout)
                except GatewayError:
                    pass
            return payload
        if request.op == "subscribe":
            return await self._subscribe(request, subscriber, timeout)
        if request.op == "unsubscribe":
            return self._unsubscribe_payload(request)
        if request.op in MUTATION_OPS:
            # Writes are never coalesced — every mutation frame is distinct
            # work — but they run on the same bounded pool, under the same
            # admission slot and timeout as any other request.  A timeout
            # cancels the write if it has not started; once running it
            # commits (at-least-once semantics, see the protocol docs).
            return await self._run_in_pool(
                lambda: self._mutate_and_pump(request),
                timeout,
                cancel_on_timeout=True,
            )
        if request.op == "execute_batch":
            return await self._run_in_pool(
                lambda: batch_payload(self._execute_many(request)), timeout
            )
        if request.op == "backup":
            # An on-demand snapshot quiesces the store (write lock), so
            # it runs on the pool under the normal timeout budget.
            return await self._run_in_pool(lambda: self._backup_payload(), timeout)
        generation = (
            self.service.repository.generation
            if self.service.repository is not None
            else 0
        )
        if request.op == "optimize":
            key = (
                "rpc",
                "optimize",
                equivalence_key(request.query),
                generation,
                request.options_key(),
            )
            work = self._optimize_work(request)
        elif request.op == "execute":
            store = self.service.store
            key = (
                "rpc",
                "execute",
                equivalence_key(request.query),
                generation,
                getattr(store, "version", None),
                request.options_key(),
            )
            work = self._execute_work(request)
        else:
            # Unreachable while dispatch stays exhaustive over
            # protocol.OPS (parse_request rejects unknown ops); a new op
            # without a branch lands here instead of silently inheriting
            # the execute path.
            raise ProtocolError(f"no dispatch branch for op {request.op!r}")
        return await self._coalesced(key, work, timeout)

    def _handle_rules(self, request: Request) -> Dict[str, Any]:
        repository = self.service.repository
        if repository is None:
            raise GatewayError("service has no constraint repository")
        if request.action == "add":
            try:
                repository.add(request.rule)
            except Exception as exc:
                raise ProtocolError(f"cannot add rule: {exc}") from None
            name = request.rule.name
        else:
            try:
                repository.remove(request.rule_name)
            except Exception as exc:
                raise ProtocolError(f"cannot remove rule: {exc}") from None
            name = request.rule_name
        return {
            "action": request.action,
            "name": name,
            "generation": repository.generation,
            "constraints": len(repository.declared()),
        }

    def _mutate(self, request: Request):
        """Apply one mutation RPC through the service's write path."""
        service = self.service
        if service.store is None:
            raise MutationError("service has no object store attached")
        try:
            if request.op == "insert":
                return service.mutate(
                    "insert", request.class_name, values=request.values
                )
            if request.op == "insert_many":
                return service.mutate(
                    "insert_many", request.class_name, rows=request.rows
                )
            if request.op == "update":
                return service.mutate(
                    "update",
                    request.class_name,
                    oid=request.oid,
                    values=request.values,
                )
            return service.mutate("delete", request.class_name, oid=request.oid)
        except StorageError as exc:
            raise MutationError(str(exc)) from None

    def _mutate_and_pump(self, request: Request) -> Dict[str, Any]:
        """Apply one mutation, then advance standing views (worker thread).

        The pump runs strictly *after* ``service.mutate`` returns, and the
        WAL commit happens inside the mutation's write-lock span — so a
        diff frame is only ever emitted for a write that is already
        durable.  Pump problems never fail the mutation RPC: affected
        views self-heal with a resync on the next write.
        """
        payload = mutation_payload(self._mutate(request))
        self._pump_subscriptions()
        return payload

    def _pump_subscriptions(self) -> None:
        registry = getattr(self.service, "subscriptions", None)
        if registry is not None and registry.active:
            registry.pump()

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    async def _subscribe(
        self, request: Request, subscriber, timeout: float
    ) -> Dict[str, Any]:
        """Serve ``subscribe``: bind a standing view pushing to ``subscriber``.

        The initial optimize + execute runs on the worker pool; the
        resulting diff frames flow through a bounded :class:`PushChannel`
        whose overflow handler unsubscribes and disconnects the consumer
        (the replication feed's slow-subscriber discipline).
        """
        if subscriber is None:
            raise ProtocolError(
                "subscribe requires a connection that can receive push frames"
            )
        if len(self._channels) >= self._max_subscriptions:
            raise SubscriptionLimit(
                f"gateway already holds {len(self._channels)} standing "
                f"views (--max-subscriptions {self._max_subscriptions})"
            )
        registry = self.service.subscription_registry()
        loop = asyncio.get_running_loop()
        channel = PushChannel(
            loop, subscriber.push_frame, limit=self._subscription_queue_limit
        )
        # The subscription id is only known once the registry binds the
        # view, so the overflow handler resolves it through this cell.
        cell: Dict[str, Any] = {"sid": None}

        async def on_overflow() -> None:
            self._subscription_overflows += 1
            sid = cell["sid"]
            if sid is not None:
                self._drop_channel(sid)
            closer = getattr(subscriber, "close", None)
            if closer is not None:
                await closer()

        channel.on_overflow = on_overflow
        options = {
            name: value
            for name, value in request.options.items()
            if name != "timeout"
        }
        try:
            payload = await self._run_in_pool(
                lambda: registry.subscribe(
                    request.query,
                    options=options,
                    emit=channel.push,
                    owner=subscriber,
                ),
                timeout,
            )
        except ValueError as exc:
            channel.close()
            raise ProtocolError(str(exc)) from None
        except Exception:
            # A timed-out subscribe may still have registered the view on
            # the worker thread; it stays owned by ``subscriber`` and is
            # freed by release_subscriber() when the connection closes.
            channel.close()
            raise
        sid = payload["subscription"]
        cell["sid"] = sid
        self._channels[sid] = (channel, subscriber)
        return payload

    def _unsubscribe_payload(self, request: Request) -> Dict[str, Any]:
        """Serve ``unsubscribe``: drop one standing view by id."""
        registry = getattr(self.service, "subscriptions", None)
        sid = request.subscription
        self._drop_channel(sid)
        if registry is None or not registry.unsubscribe(sid):
            raise SubscriptionUnknown(
                f"this gateway is not serving subscription {sid!r}"
            )
        return {"subscription": sid, "active": registry.active}

    def release_subscriber(self, owner) -> int:
        """Free every standing view owned by a disconnecting consumer."""
        registry = getattr(self.service, "subscriptions", None)
        if registry is None:
            return 0
        sids = registry.release(owner)
        for sid in sids:
            self._drop_channel(sid)
        return len(sids)

    def _drop_channel(self, sid: str) -> None:
        entry = self._channels.pop(sid, None)
        if entry is not None:
            entry[0].close()

    def _optimize_work(self, request: Request):
        service, query = self.service, request.query
        use_cache = request.options.get("use_cache", True)

        def work():
            return optimization_payload(service.optimize(query, use_cache=use_cache))

        return work

    def _execute_work(self, request: Request):
        service, query = self.service, request.query
        options = {
            name: value
            for name, value in request.options.items()
            if name != "timeout"
        }

        def work():
            return execution_payload(service.execute(query, **options))

        return work

    def _backup_payload(self) -> Dict[str, Any]:
        """Serve the ``backup`` RPC: an on-demand durability snapshot."""
        backup = getattr(self.service, "backup", None)
        if backup is None:
            raise BackupUnavailable("service does not support backups")
        try:
            return backup()
        except ValueError as exc:
            raise BackupUnavailable(str(exc)) from None

    def replica_status_payload(self) -> Dict[str, Any]:
        """Serve ``replica_status``: role, versions, and peer progress."""
        version = getattr(self.service.store, "version", 0) or 0
        payload: Dict[str, Any] = {
            "read_only": self._read_only,
            "store_version": version,
            "applied_version": version,
        }
        if self._replication is not None:
            payload["role"] = "primary"
            payload.update(self._replication.status())
        elif self._follower is not None:
            payload["role"] = "replica"
            status = self._follower.status()
            payload.update(status)
            # The follower's applied version is authoritative for the
            # read-your-writes pin (it advances only after the record is
            # visible to readers).
            payload["applied_version"] = status.get("applied_version", version)
        else:
            payload["role"] = "standalone"
        return payload

    def _subscribe_wal_payload(self) -> Dict[str, Any]:
        """Serve ``subscribe_wal``: where a replica should connect."""
        if self._replication is None:
            raise ReplicationUnavailable(
                "this gateway does not stream WAL frames; start the "
                "server with --replicate-on"
            )
        return self._replication.describe()

    def _execute_many(self, request: Request):
        options = {
            name: value
            for name, value in request.options.items()
            if name != "timeout"
        }
        return self.service.execute_many(request.queries, **options)

    # ------------------------------------------------------------------
    # Single-flight plumbing
    # ------------------------------------------------------------------
    async def _coalesced(self, key, work, timeout: float) -> Dict[str, Any]:
        """Run ``work`` once per key; identical concurrent requests share it.

        The worker thread resolves the flight by handing the payload back
        to the event loop, so the flight's lifetime is tied to the *work*,
        not to any single waiter: abandoned waits (timeout, disconnect)
        leave the map untouched and the entry retires when the work
        finishes — it can never be poisoned into swallowing later requests.
        """
        flight = self.service.single_flight
        future, leader = flight.begin(key)
        if leader:
            loop = asyncio.get_running_loop()

            def run():
                try:
                    payload = work()
                except BaseException as exc:  # propagate to every waiter
                    loop.call_soon_threadsafe(flight.fail, key, exc)
                else:
                    loop.call_soon_threadsafe(flight.resolve, key, payload)

            try:
                self._pool.submit(run)
            except RuntimeError:  # pool already shut down
                flight.fail(key, GatewayDraining("gateway worker pool is closed"))
        payload = await self._wait_shared(future, timeout)
        if not leader:
            # Shallow copy: the payload object is shared by every waiter.
            payload = dict(payload, coalesced=True)
        return payload

    async def _run_in_pool(
        self, work, timeout: float, cancel_on_timeout: bool = False
    ):
        """Run uncoalesced work on the pool under the request timeout.

        ``cancel_on_timeout`` (mutations) cancels the pool task when the
        budget expires *before it started running* — a queued write whose
        caller already received a timeout error then never applies.  Work
        that is already running is never interrupted mid-write.
        """
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(self._pool, work)
        except RuntimeError:
            raise GatewayDraining("gateway worker pool is closed") from None
        try:
            return await self._bounded_wait(future, timeout)
        except RequestTimeout:
            if cancel_on_timeout:
                future.cancel()
            raise

    async def _wait_shared(self, future, timeout: float):
        """Await a shared concurrent future without ever cancelling it."""
        return await self._bounded_wait(asyncio.wrap_future(future), timeout)

    async def _bounded_wait(self, future: "asyncio.Future", timeout: float):
        """Await ``future`` for at most ``timeout``s, never cancelling it.

        The shield keeps a timeout or a cancelled waiter from propagating
        into the future (a cancelled ``wrap_future`` would cancel the
        *shared* single-flight future for every other waiter); the
        ``_consume`` callback keeps an abandoned future's outcome from
        warning when it eventually lands.
        """
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            future.add_done_callback(_consume)
            raise RequestTimeout(
                f"request did not complete within {timeout:g}s"
            ) from None
        except asyncio.CancelledError:
            future.add_done_callback(_consume)
            raise

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _count(self, counters: Dict[str, int], key: str) -> None:
        counters[key] = counters.get(key, 0) + 1

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` RPC payload: service + gateway counters, one view."""
        admission = self.admission.snapshot()
        registry = getattr(self.service, "subscriptions", None)
        subscriptions: Dict[str, Any] = {
            "active": 0,
            "created": 0,
            "closed": 0,
            "diffs": 0,
            "resyncs": 0,
            "errors": 0,
            "views": [],
        }
        if registry is not None:
            subscriptions.update(registry.stats())
        subscriptions["channels"] = len(self._channels)
        subscriptions["overflows"] = self._subscription_overflows
        return {
            "protocol_version": PROTOCOL_VERSION,
            "service": self.service.stats().as_dict(),
            "subscriptions": subscriptions,
            "gateway": {
                "requests": dict(self._requests),
                "responses": self._responses,
                "errors": dict(self._errors),
                "sessions": len(self._sessions),
                "uptime": time.monotonic() - self._started,
                "admission": {
                    "admitted": admission.admitted,
                    "active": admission.active,
                    "peak_active": admission.peak_active,
                    "waiting": admission.waiting,
                    "rejected_capacity": admission.rejected_capacity,
                    "rejected_client_limit": admission.rejected_client_limit,
                    "rejected_draining": admission.rejected_draining,
                    "rejected": admission.rejected,
                    "draining": admission.draining,
                },
            },
        }
