"""One client connection to the gateway.

:class:`ClientSession` owns a connected ``(reader, writer)`` pair: it reads
line-delimited JSON frames, dispatches each through the gateway (requests
of one connection are **pipelined** — each frame becomes its own task, so a
slow query never blocks the frames behind it and responses may return out
of order, correlated by ``id``), and writes responses back.

Failure containment:

* a malformed frame gets an error response and the session keeps reading —
  one bad frame never takes down the connection;
* a client disconnect mid-request cancels that client's *waits* only; any
  single-flight work its requests started keeps running for the other
  clients waiting on it (see :meth:`QueryGateway._coalesced`);
* write failures (peer reset) discard the response and close the session.
"""

from __future__ import annotations

import asyncio
import itertools

from .protocol import encode_frame

#: Monotonic fallback ids for sessions whose peername is unavailable.
_session_ids = itertools.count(1)


class ClientSession:
    """Reads frames from one connection and answers them, pipelined."""

    def __init__(
        self,
        gateway,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        peer = writer.get_extra_info("peername")
        self.client_id = (
            f"{peer[0]}:{peer[1]}"
            if isinstance(peer, tuple) and len(peer) >= 2
            else f"session-{next(_session_ids)}"
        )
        self._tasks: set = set()
        self._closed = False

    async def run(self) -> None:
        """Read frames until EOF/disconnect, answering each concurrently.

        EOF is a *half-close*, not an abort: the client may have finished
        sending and still be reading, so pending responses are flushed
        before the transport closes.  Only transport errors (peer reset)
        abandon in-flight responses.
        """
        clean_eof = False
        try:
            while True:
                try:
                    line = await self.reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Frame longer than the stream limit: the line is
                    # unrecoverable, so report and drop the connection.
                    from .errors import ProtocolError

                    await self._send(
                        {
                            "id": None,
                            "ok": False,
                            "error": {
                                "code": ProtocolError.code,
                                "message": "request frame too long",
                            },
                        }
                    )
                    break
                if not line:  # EOF — the client finished sending
                    clean_eof = True
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(self._respond(line))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self.close(flush=clean_eof)

    async def _respond(self, line: bytes) -> None:
        response = await self.gateway.dispatch_line(
            line, self.client_id, subscriber=self
        )
        await self._send(response)

    async def push_frame(self, payload: dict) -> None:
        """Write one server-initiated push frame (subscription diffs)."""
        await self._send(payload)

    async def _send(self, response: dict) -> None:
        if self._closed:
            return
        try:
            self.writer.write(encode_frame(response))
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            # Peer vanished between computing and writing; drop quietly.
            pass

    async def close(self, flush: bool = False) -> None:
        """Finish (``flush=True``) or cancel pending waits, then close.

        With ``flush`` the session lets in-flight requests complete and
        writes their responses first (each is bounded by the gateway's
        request timeout, so this cannot hang).  Without it, the
        per-request *waiting* tasks are cancelled; either way, shared
        single-flight work started on the worker pool is resolved by its
        worker thread regardless, so other sessions' identical requests
        still complete.
        """
        if self._closed:
            return
        if flush and self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._closed = True
        # A disconnect frees every standing subscription this connection
        # owned — the server must not keep maintaining views nobody reads.
        self.gateway.release_subscriber(self)
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
