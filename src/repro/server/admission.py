"""Admission control for the async query gateway.

The gateway accepts requests from many connections but runs them on a
bounded worker pool; :class:`AdmissionController` is the valve between the
two.  It enforces three limits:

* **max in-flight** — at most ``max_in_flight`` requests hold an execution
  slot at once; later arrivals wait in a queue.
* **per-client fairness** — waiters are queued *per client* and slots are
  granted round-robin across clients, so a client flooding requests cannot
  starve the others; each client is additionally bounded to
  ``max_pending_per_client`` outstanding requests (admitted + waiting) and
  rejected with :class:`~repro.server.errors.ClientQueueFull` beyond it.
  A "client" is whatever identity the session layer hands in: the peer
  address for TCP connections (so the fairness unit is the connection),
  the caller-chosen id for in-process clients.
* **bounded waiting** — at most ``max_waiting`` requests wait overall;
  beyond that the gateway sheds load with
  :class:`~repro.server.errors.AdmissionError` instead of queueing without
  bound.

Draining (:meth:`AdmissionController.drain`) flips the controller into
shutdown mode: new arrivals are rejected with
:class:`~repro.server.errors.GatewayDraining` while everything already
admitted or queued runs to completion; ``drain`` returns once the
controller is idle.  All state is touched from the event loop only, so no
locks are needed.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Deque, Dict

from .errors import AdmissionError, ClientQueueFull, GatewayDraining


@dataclass(frozen=True)
class AdmissionStats:
    """Point-in-time admission counters (immutable snapshot)."""

    admitted: int = 0
    active: int = 0
    peak_active: int = 0
    waiting: int = 0
    rejected_capacity: int = 0
    rejected_client_limit: int = 0
    rejected_draining: int = 0
    draining: bool = False

    @property
    def rejected(self) -> int:
        """Total requests turned away, for any reason."""
        return (
            self.rejected_capacity
            + self.rejected_client_limit
            + self.rejected_draining
        )


class AdmissionController:
    """Bounded, per-client-fair admission to the gateway's worker pool."""

    def __init__(
        self,
        max_in_flight: int = 64,
        max_waiting: int = 256,
        max_pending_per_client: int = 64,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_in_flight = max_in_flight
        self.max_waiting = max(0, max_waiting)
        self.max_pending_per_client = max(1, max_pending_per_client)
        self._active = 0
        self._waiting = 0
        # client id -> FIFO of waiter futures; OrderedDict doubles as the
        # round-robin rotation (pop the first client, re-append if it still
        # has waiters).
        self._queues: "OrderedDict[str, Deque[asyncio.Future]]" = OrderedDict()
        self._pending: Dict[str, int] = {}
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._admitted = 0
        self._peak_active = 0
        self._rejected_capacity = 0
        self._rejected_client_limit = 0
        self._rejected_draining = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @asynccontextmanager
    async def slot(self, client_id: str):
        """Hold one execution slot for the duration of the ``with`` body.

        Raises an :class:`AdmissionError` subclass when the request cannot
        be admitted.  Cancelling a waiting request (timeout, disconnect)
        removes it from the queue without consuming a slot.
        """
        await self._acquire(client_id)
        try:
            yield
        finally:
            self._release(client_id)

    async def _acquire(self, client_id: str) -> None:
        if self._draining:
            self._rejected_draining += 1
            raise GatewayDraining("gateway is draining; not accepting new requests")
        if self._pending.get(client_id, 0) >= self.max_pending_per_client:
            self._rejected_client_limit += 1
            raise ClientQueueFull(
                f"client {client_id!r} already has "
                f"{self.max_pending_per_client} requests pending"
            )
        if self._active < self.max_in_flight and not self._queues:
            self._admit(client_id)
            return
        if self._waiting >= self.max_waiting:
            self._rejected_capacity += 1
            raise AdmissionError(
                f"gateway overloaded: {self._active} in flight, "
                f"{self._waiting} waiting"
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(client_id)
        if queue is None:
            queue = deque()
            self._queues[client_id] = queue
        queue.append(waiter)
        self._waiting += 1
        self._pending[client_id] = self._pending.get(client_id, 0) + 1
        self._idle.clear()
        try:
            await waiter
        except asyncio.CancelledError:
            # Abandoned while waiting (timeout / disconnect).
            self._pending[client_id] = self._pending.get(client_id, 1) - 1
            if waiter.done() and not waiter.cancelled():
                # The slot was granted in the same instant; hand it on.
                self._active -= 1
                self._dispatch()
            else:
                waiter.cancel()
                try:
                    queue.remove(waiter)
                    self._waiting -= 1
                except ValueError:  # already dropped by _dispatch
                    pass
            self._cleanup_client(client_id)
            self._check_idle()
            raise
        # Granted: _dispatch already moved the waiter out of the queue and
        # incremented the active count; just account the admission.
        self._admitted += 1
        self._peak_active = max(self._peak_active, self._active)

    def _admit(self, client_id: str) -> None:
        self._active += 1
        self._admitted += 1
        self._peak_active = max(self._peak_active, self._active)
        self._pending[client_id] = self._pending.get(client_id, 0) + 1
        self._idle.clear()

    def _release(self, client_id: str) -> None:
        self._active -= 1
        self._pending[client_id] = self._pending.get(client_id, 1) - 1
        self._cleanup_client(client_id)
        self._dispatch()
        self._check_idle()

    def _dispatch(self) -> None:
        """Grant freed slots to waiters, round-robin across clients."""
        while self._active < self.max_in_flight and self._queues:
            client_id, queue = next(iter(self._queues.items()))
            self._queues.pop(client_id)
            while queue and queue[0].done():  # cancelled waiters
                queue.popleft()
                self._waiting -= 1
            if not queue:
                continue
            waiter = queue.popleft()
            self._waiting -= 1
            if queue:  # rotate: this client goes to the back of the ring
                self._queues[client_id] = queue
            self._active += 1
            waiter.set_result(None)

    def _cleanup_client(self, client_id: str) -> None:
        if self._pending.get(client_id) == 0:
            del self._pending[client_id]
        queue = self._queues.get(client_id)
        if queue is not None and not any(not w.done() for w in queue):
            self._queues.pop(client_id)

    def _check_idle(self) -> None:
        if self._active == 0 and self._waiting == 0:
            self._idle.set()

    # ------------------------------------------------------------------
    # Drain and stats
    # ------------------------------------------------------------------
    async def drain(self, timeout: "float | None" = None) -> bool:
        """Stop admitting new requests and wait for the backlog to finish.

        Everything already admitted or queued completes normally; only new
        arrivals are rejected.  Returns ``True`` when the controller went
        idle within ``timeout`` seconds (``None`` = wait forever).
        """
        self._draining = True
        self._check_idle()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def snapshot(self) -> AdmissionStats:
        """All counters as one immutable snapshot."""
        return AdmissionStats(
            admitted=self._admitted,
            active=self._active,
            peak_active=self._peak_active,
            waiting=self._waiting,
            rejected_capacity=self._rejected_capacity,
            rejected_client_limit=self._rejected_client_limit,
            rejected_draining=self._rejected_draining,
            draining=self._draining,
        )
