"""The gateway's line-delimited JSON wire protocol.

One request or response per line (NDJSON), UTF-8 encoded.  A request frame
is a JSON object::

    {"id": 7, "op": "execute", "query": "(SELECT ...)",
     "options": {"execution_mode": "vectorized", "optimize": true}}

``id`` is an opaque client-chosen correlation value echoed back verbatim
(responses may arrive out of order — the gateway pipelines requests of one
connection).  ``op`` selects the RPC:

``optimize``
    ``query`` (paper five-part notation) → optimization payload.
``execute``
    ``query`` → execution payload (rows, metrics, timings, provenance).
``execute_batch``
    ``queries`` (list of query texts) → per-query execution payloads plus
    batch statistics.
``stats``
    → one immutable snapshot of service + gateway counters.
``rules``
    ``action`` (``"add"`` / ``"remove"``) — add takes ``rule`` (a
    constraint spec, see :func:`parse_rule`), remove takes ``name``.
``insert`` / ``insert_many`` / ``update`` / ``delete``
    The live write path.  ``insert`` takes ``class`` and ``values`` (an
    attribute → value object); ``insert_many`` takes ``class`` and
    ``rows`` (a non-empty list of value objects, at most
    :data:`MAX_MUTATION_ROWS`); ``update`` takes ``class``, ``oid`` and
    ``values``; ``delete`` takes ``class`` and ``oid``.  Class and
    attribute names are validated against the schema up front
    (``protocol_error``); storage-level failures such as an unknown OID
    report the ``mutation_error`` code.  An ``insert_many`` batch is
    applied atomically with respect to concurrent queries but is not
    transactional: a mid-batch failure leaves the earlier rows applied
    (the error message says how many).  Mutations honor the ``timeout``
    option with **at-least-once** semantics: a timeout cancels a write
    that has not started, but a write already running commits even though
    the caller received the ``timeout`` error — retry only with values
    that are safe to re-apply.
``subscribe_wal``
    → the replication feed endpoint of this primary: ``host``/``port``
    to connect a replica to, the feed ``epoch``, and the current store
    ``version``/``shard_count``.  Servers started without
    ``--replicate-on`` answer ``replication_unavailable``.
``replica_status``
    → this server's replication role and progress: ``role``
    (``primary``/``replica``/``standalone``), ``store_version`` and
    ``applied_version``, plus per-replica acked versions and lag on a
    primary, or the followed primary endpoint and connection state on a
    replica.  Served inline (never queued) so the router can poll it for
    read-your-writes even under load.  On a read-only replica, mutation
    and ``rules`` frames are rejected with the ``read_only`` code.
``backup``
    → write an on-demand atomic snapshot through the durability
    manager; returns its ``path`` and store ``version``.  Servers
    without ``--data-dir`` answer ``backup_unavailable``.
``subscribe``
    ``query`` (+ ``options``) → register a standing live view of the
    query: the result payload carries the ``subscription`` id, the
    initial ``rows`` snapshot and the store ``version`` it reflects.
    From then on the server pushes diff frames (below) on this
    connection after every write that affects the view.  Works on
    read-only replicas too (views are fed by applied WAL frames).
    Gateways cap live views (``--max-subscriptions``); beyond the cap
    the request answers ``subscription_limit``.
``unsubscribe``
    ``subscription`` (the id) → drop the standing view; an unknown id
    answers ``subscription_unknown``.  Disconnecting frees every view
    of the connection implicitly.

Response frames are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}`` with
codes from :mod:`repro.server.errors`.

**Push frames** are the one server-initiated frame kind: they carry a
``push`` field (a :data:`PUSH_KINDS` value) instead of an ``id``, so a
pipelining client demultiplexes them before correlation-id matching.
``{"push": "diff", "subscription": ..., "version": ..., "changes":
[...]}`` updates a view's rows — each change is ``{"kind": "added" |
"removed" | "changed", "index": ..., "row": ...}``, applied
sequentially (see :func:`repro.subscriptions.diff.apply_changes`) —
and ``{"push": "resync", "subscription": ..., "version": ...,
"rows": [...], "reason": ...}`` replaces them wholesale (rule churn
re-optimized the standing query, or the view lagged past the bounded
journal).  ``version`` is the store version the frame reflects; frames
of one subscription arrive in strictly increasing version order, and a
frame is only emitted after its mutation's WAL commit is durable.

Option values accepted by ``optimize``/``execute``/``execute_batch``:
``optimize`` (bool), ``use_cache`` (bool), ``execution_mode``
(``rowwise``/``vectorized``/``parallel``), ``join_strategy``
(``hash``/``nested_loop``), ``workers`` (int ≥ 1) and ``timeout``
(seconds, capped by the server's own request timeout).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..query.parser import parse_predicate, parse_query
from ..query.query import Query
from ..schema.schema import Schema
from ..service.envelope import ExecutionEnvelope, ServiceResult
from .errors import GatewayError, ProtocolError

#: Bumped when a frame field changes meaning; echoed by the stats RPC.
PROTOCOL_VERSION = 1

#: The RPCs a request frame may name.
OPS = (
    "optimize",
    "execute",
    "execute_batch",
    "stats",
    "rules",
    "insert",
    "insert_many",
    "update",
    "delete",
    "subscribe_wal",
    "replica_status",
    "backup",
    "subscribe",
    "unsubscribe",
)

#: The subset of OPS that write to the store.
MUTATION_OPS = ("insert", "insert_many", "update", "delete")

#: Kinds of server-initiated push frames (the ``push`` field's values).
PUSH_KINDS = ("diff", "resync")

#: Upper bound on the rows of one ``insert_many`` frame.
MAX_MUTATION_ROWS = 10_000

#: Recognized keys of the ``options`` object.
OPTION_KEYS = (
    "optimize",
    "use_cache",
    "execution_mode",
    "join_strategy",
    "workers",
    "timeout",
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame to a newline-terminated JSON line."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    >>> decode_frame(b'{"id": 1, "op": "stats"}')
    {'id': 1, 'op': 'stats'}
    >>> decode_frame(b'not json')  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    repro.server.errors.ProtocolError: request is not valid JSON
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"request frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass
class Request:
    """One parsed, validated request frame.

    ``queries`` holds the parsed ASTs (one for ``optimize``/``execute``,
    N for ``execute_batch``); parsing and schema validation happen up
    front in :func:`parse_request`, so by the time a request reaches the
    worker pool it can no longer fail on malformed input.
    """

    op: str
    id: Any = None
    queries: List[Query] = field(default_factory=list)
    options: Dict[str, Any] = field(default_factory=dict)
    action: str = ""
    rule: Optional[SemanticConstraint] = None
    rule_name: str = ""
    class_name: str = ""
    oid: int = 0
    values: Dict[str, Any] = field(default_factory=dict)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    subscription: str = ""

    @property
    def query(self) -> Query:
        """The single query of an ``optimize``/``execute`` request."""
        return self.queries[0]

    def options_key(self) -> Tuple:
        """Canonical hashable form of the options (single-flight key part).

        ``timeout`` is excluded: it bounds this caller's *wait*, not the
        computation, so two requests differing only in timeout may share
        one flight.
        """
        return tuple(
            sorted(
                (name, value)
                for name, value in self.options.items()
                if name != "timeout"
            )
        )


def _parse_query_text(value: Any, schema: Schema, label: str) -> Query:
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"{label} must be a non-empty query string")
    try:
        query = parse_query(value, name="gateway")
        query.validate(schema)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"invalid {label}: {exc}") from None
    return query


def _parse_options(raw: Any) -> Dict[str, Any]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError("options must be a JSON object")
    unknown = sorted(set(raw) - set(OPTION_KEYS))
    if unknown:
        raise ProtocolError(
            f"unknown option(s) {', '.join(unknown)} "
            f"(recognized: {', '.join(OPTION_KEYS)})"
        )
    options = dict(raw)
    for flag in ("optimize", "use_cache"):
        if flag in options and not isinstance(options[flag], bool):
            raise ProtocolError(f"option {flag!r} must be a boolean")
    if "execution_mode" in options:
        from ..engine.modes import ExecutionMode

        try:
            options["execution_mode"] = ExecutionMode.parse(
                options["execution_mode"]
            ).value
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
    if "join_strategy" in options:
        if options["join_strategy"] not in ("hash", "nested_loop"):
            raise ProtocolError(
                "option 'join_strategy' must be 'hash' or 'nested_loop'"
            )
    if "workers" in options:
        if not isinstance(options["workers"], int) or options["workers"] < 1:
            raise ProtocolError("option 'workers' must be an integer >= 1")
    if "timeout" in options:
        if (
            not isinstance(options["timeout"], (int, float))
            or isinstance(options["timeout"], bool)
            or options["timeout"] <= 0
        ):
            raise ProtocolError("option 'timeout' must be a positive number")
    return options


def parse_rule(spec: Any, schema: Schema) -> SemanticConstraint:
    """Build a :class:`SemanticConstraint` from its wire spec.

    The spec is a JSON object: ``name`` (required), ``consequent``
    (required, a predicate in the paper's notation, e.g.
    ``"cargo.quantity <= 500"``), ``antecedents`` (list of predicates,
    default empty), ``classes`` / ``relationships`` (anchor lists) and
    ``description``.  The constraint is validated against the schema by
    the repository when added.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("rule must be a JSON object")
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("rule.name must be a non-empty string")
    if not isinstance(spec.get("consequent"), str):
        raise ProtocolError("rule.consequent must be a predicate string")
    antecedents_raw = spec.get("antecedents", [])
    if not isinstance(antecedents_raw, list):
        raise ProtocolError("rule.antecedents must be a list of predicate strings")
    for key in ("classes", "relationships"):
        value = spec.get(key, [])
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ProtocolError(f"rule.{key} must be a list of names")
    try:
        antecedents = [parse_predicate(text) for text in antecedents_raw]
        consequent = parse_predicate(spec["consequent"])
    except Exception as exc:
        raise ProtocolError(f"invalid rule predicate: {exc}") from None
    return SemanticConstraint.build(
        name=name,
        antecedents=antecedents,
        consequent=consequent,
        anchor_classes=spec.get("classes", []),
        anchor_relationships=spec.get("relationships", []),
        description=spec.get("description", ""),
    )


def _parse_class_name(frame: Dict[str, Any], schema: Schema) -> str:
    class_name = frame.get("class")
    if not isinstance(class_name, str) or not class_name:
        raise ProtocolError("mutation requires a non-empty 'class' string")
    if not schema.has_class(class_name):
        raise ProtocolError(f"unknown object class {class_name!r}")
    return class_name


def _parse_values(raw: Any, class_name: str, schema: Schema, label: str) -> Dict[str, Any]:
    """Validate one attribute-values object against the schema.

    Attribute existence is checked here — before the request ever reaches
    the worker pool — so a malformed write is a ``protocol_error``, never a
    half-applied mutation.
    """
    if not isinstance(raw, dict):
        raise ProtocolError(f"{label} must be a JSON object of attribute values")
    cls = schema.object_class(class_name)
    for attribute_name in raw:
        if not isinstance(attribute_name, str) or not cls.has_attribute(
            attribute_name
        ):
            raise ProtocolError(
                f"class {class_name!r} has no attribute {attribute_name!r}"
            )
    return dict(raw)


def _parse_oid(frame: Dict[str, Any]) -> int:
    oid = frame.get("oid")
    if not isinstance(oid, int) or isinstance(oid, bool) or oid < 1:
        raise ProtocolError("mutation requires an integer 'oid' >= 1")
    return oid


def parse_request(frame: Dict[str, Any], schema: Schema) -> Request:
    """Validate a frame and parse its queries into the existing query AST."""
    op = frame.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (choose from: {', '.join(OPS)})"
        )
    request = Request(op=op, id=frame.get("id"))
    if op in MUTATION_OPS:
        # Options are validated for mutation frames too: 'timeout' is
        # honored (bounding the caller's wait); the rest are rejected or
        # ignored exactly as on the read ops.
        request.options = _parse_options(frame.get("options"))
        request.class_name = _parse_class_name(frame, schema)
        if op in ("update", "delete"):
            request.oid = _parse_oid(frame)
        if op in ("insert", "update"):
            request.values = _parse_values(
                frame.get("values"), request.class_name, schema, "values"
            )
        if op == "insert_many":
            rows = frame.get("rows")
            if not isinstance(rows, list) or not rows:
                raise ProtocolError("rows must be a non-empty list of value objects")
            if len(rows) > MAX_MUTATION_ROWS:
                raise ProtocolError(
                    f"rows exceeds the per-frame bound of {MAX_MUTATION_ROWS}"
                )
            request.rows = [
                _parse_values(row, request.class_name, schema, f"rows[{index}]")
                for index, row in enumerate(rows)
            ]
        return request
    if op in ("optimize", "execute", "subscribe"):
        request.queries = [_parse_query_text(frame.get("query"), schema, "query")]
        request.options = _parse_options(frame.get("options"))
    elif op == "unsubscribe":
        subscription = frame.get("subscription")
        if not isinstance(subscription, str) or not subscription:
            raise ProtocolError(
                "unsubscribe requires a non-empty 'subscription' id"
            )
        request.subscription = subscription
    elif op == "execute_batch":
        queries = frame.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ProtocolError("queries must be a non-empty list of query strings")
        request.queries = [
            _parse_query_text(text, schema, f"queries[{index}]")
            for index, text in enumerate(queries)
        ]
        request.options = _parse_options(frame.get("options"))
    elif op == "rules":
        action = frame.get("action")
        if action not in ("add", "remove"):
            raise ProtocolError("rules.action must be 'add' or 'remove'")
        request.action = action
        if action == "add":
            request.rule = parse_rule(frame.get("rule"), schema)
        else:
            name = frame.get("name")
            if not isinstance(name, str) or not name:
                raise ProtocolError("rules remove requires a non-empty 'name'")
            request.rule_name = name
    return request


# ----------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------
def optimization_payload(envelope: ServiceResult) -> Dict[str, Any]:
    """The ``result`` object of an ``optimize`` response."""
    from ..query.formatter import format_query

    result = envelope.result
    return {
        "optimized_query": format_query(result.optimized),
        "eliminated_classes": sorted(result.eliminated_classes),
        "transformations": len(result.trace.records),
        "source": envelope.source.value,
        "timings": {
            "service": envelope.service_time,
            "retrieval": result.timings.retrieval,
            "initialization": result.timings.initialization,
            "transformation": result.timings.transformation,
            "formulation": result.timings.formulation,
        },
    }


def execution_payload(envelope: ExecutionEnvelope) -> Dict[str, Any]:
    """The ``result`` object of an ``execute`` response.

    Carries the answer rows, the engine's cost counters, wall-clock
    timings, cache provenance of the optimization half, and per-shard
    reports when the parallel engine fanned out.
    """
    optimization = envelope.optimization
    shard_timings = envelope.shard_timings
    return {
        "rows": envelope.execution.rows,
        "row_count": envelope.execution.row_count,
        "metrics": envelope.metrics.as_dict(),
        "execution_mode": envelope.execution_mode,
        "coalesced": False,
        "timings": {
            "execute": envelope.execute_time,
            "service": optimization.service_time if optimization else 0.0,
        },
        "provenance": {
            "optimized": optimization is not None,
            "source": optimization.source.value if optimization else None,
        },
        "shard_timings": (
            {str(shard): elapsed for shard, elapsed in shard_timings.items()}
            if shard_timings is not None
            else None
        ),
    }


def mutation_payload(result) -> Dict[str, Any]:
    """The ``result`` object of a mutation response.

    Serializes the :class:`~repro.service.MutationResult` verbatim: the
    written OIDs, the shards whose version counters moved, the post-write
    store/shard versions, and whether any dynamic rules were re-derived.
    """
    return result.as_dict()


def batch_payload(batch) -> Dict[str, Any]:
    """The ``result`` object of an ``execute_batch`` response."""
    return {
        "results": [execution_payload(envelope) for envelope in batch.results],
        "stats": {
            "total": batch.stats.total,
            "wall_time": batch.stats.wall_time,
            "optimize_time": batch.stats.optimize_time,
            "execute_time": batch.stats.execute_time,
            "workers": batch.stats.workers,
            "execution_mode": batch.stats.execution_mode,
            "throughput": batch.stats.throughput,
        },
    }


def diff_frame(
    subscription: str, version: int, changes: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """A server-initiated ``diff`` push frame (ordered sequential edits)."""
    return {
        "push": "diff",
        "subscription": subscription,
        "version": version,
        "changes": changes,
    }


def resync_frame(
    subscription: str, version: int, rows: List[Dict[str, Any]], reason: str
) -> Dict[str, Any]:
    """A server-initiated ``resync`` push frame (full row replacement)."""
    return {
        "push": "resync",
        "subscription": subscription,
        "version": version,
        "rows": rows,
        "reason": reason,
    }


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success frame echoing the request's correlation id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, error: Exception) -> Dict[str, Any]:
    """An error frame for any exception (stable codes for gateway errors)."""
    code = error.code if isinstance(error, GatewayError) else "internal"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": str(error) or type(error).__name__},
    }
