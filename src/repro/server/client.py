"""Async client for the query gateway.

:class:`AsyncGatewayClient` speaks the line-delimited JSON protocol in two
transports behind one API:

* **TCP** (:meth:`AsyncGatewayClient.connect`) — a real socket to a served
  gateway.  Requests are pipelined: any number of coroutines may issue
  requests on one connection concurrently; a background reader task
  demultiplexes responses back to their callers by correlation id.
* **in-process** (:meth:`AsyncGatewayClient.in_process`) — no socket; each
  request is dispatched straight into a :class:`QueryGateway` living in
  the same event loop.  The full parse → admission → single-flight path
  still runs, which is what the gateway's tests and the dedup benchmark
  drive.

Successful responses return the ``result`` payload dict; error responses
raise :class:`~repro.server.errors.GatewayRequestError` carrying the wire
code (``protocol_error``, ``overloaded``, ``timeout``, ...).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional

from .errors import GatewayError, GatewayRequestError
from .protocol import decode_frame, encode_frame


class AsyncGatewayClient:
    """One logical client of the gateway (TCP or in-process).

    Construct via :meth:`connect` or :meth:`in_process`, then call the RPC
    helpers; every helper is safe to call from many coroutines at once.
    """

    def __init__(
        self,
        *,
        reader: Optional[asyncio.StreamReader] = None,
        writer: Optional[asyncio.StreamWriter] = None,
        gateway=None,
        client_id: str = "client",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._gateway = gateway
        self.client_id = client_id
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False
        if reader is not None:
            self._reader_task = asyncio.ensure_future(self._read_loop())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls, host: str, port: int, client_id: str = "client"
    ) -> "AsyncGatewayClient":
        """Open a TCP connection to a served gateway.

        ``client_id`` is a local label only — it is not transmitted.  On
        the TCP path the gateway identifies clients by peer address, so
        admission fairness and pending caps are **per connection**; only
        the in-process path (:meth:`in_process`) honors the id directly.
        """
        reader, writer = await asyncio.open_connection(host, port, limit=1 << 26)
        return cls(reader=reader, writer=writer, client_id=client_id)

    @classmethod
    def in_process(cls, gateway, client_id: str = "in-process") -> "AsyncGatewayClient":
        """A client that dispatches straight into ``gateway`` (no socket)."""
        return cls(gateway=gateway, client_id=client_id)

    # ------------------------------------------------------------------
    # RPC helpers
    # ------------------------------------------------------------------
    async def optimize(self, query: str, **options: Any) -> Dict[str, Any]:
        """Optimize one query text; returns the optimization payload."""
        return await self.request({"op": "optimize", "query": query, "options": options})

    async def execute(self, query: str, **options: Any) -> Dict[str, Any]:
        """Optimize (by default) and execute one query text."""
        return await self.request({"op": "execute", "query": query, "options": options})

    async def execute_batch(
        self, queries: List[str], **options: Any
    ) -> Dict[str, Any]:
        """Execute a batch of query texts in one round trip."""
        return await self.request(
            {"op": "execute_batch", "queries": list(queries), "options": options}
        )

    async def stats(self) -> Dict[str, Any]:
        """One immutable snapshot of service + gateway counters."""
        return await self.request({"op": "stats"})

    async def insert(self, class_name: str, values: Dict[str, Any]) -> Dict[str, Any]:
        """Insert one instance; returns the mutation payload (new OID included)."""
        return await self.request(
            {"op": "insert", "class": class_name, "values": values}
        )

    async def insert_many(
        self, class_name: str, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Insert a batch of instances in one round trip."""
        return await self.request(
            {"op": "insert_many", "class": class_name, "rows": list(rows)}
        )

    async def update(
        self, class_name: str, oid: int, values: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Update attribute values of one stored instance."""
        return await self.request(
            {"op": "update", "class": class_name, "oid": oid, "values": values}
        )

    async def delete(self, class_name: str, oid: int) -> Dict[str, Any]:
        """Delete one stored instance."""
        return await self.request({"op": "delete", "class": class_name, "oid": oid})

    async def add_rule(self, rule: Dict[str, Any]) -> Dict[str, Any]:
        """Declare a semantic constraint (see :func:`protocol.parse_rule`)."""
        return await self.request({"op": "rules", "action": "add", "rule": rule})

    async def remove_rule(self, name: str) -> Dict[str, Any]:
        """Remove a declared constraint by name."""
        return await self.request({"op": "rules", "action": "remove", "name": name})

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request frame and await its ``result`` payload."""
        if self._closed:
            raise GatewayError("client is closed")
        frame = dict(frame, id=next(self._ids))
        if self._gateway is not None:
            response = await self._gateway.dispatch(frame, self.client_id)
        else:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[frame["id"]] = future
            try:
                self._writer.write(encode_frame(frame))
                await self._writer.drain()
                response = await future
            finally:
                self._pending.pop(frame["id"], None)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise GatewayRequestError(
                error.get("code", "internal"), error.get("message", "unknown error")
            )
        return response["result"]

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    response = decode_frame(line)
                except GatewayError:
                    continue  # server never sends malformed frames; skip
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        GatewayError("connection closed before response")
                    )

    async def close(self) -> None:
        """Close the connection (no-op beyond bookkeeping when in-process)."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()
