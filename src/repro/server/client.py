"""Async client for the query gateway.

:class:`AsyncGatewayClient` speaks the line-delimited JSON protocol in two
transports behind one API:

* **TCP** (:meth:`AsyncGatewayClient.connect`) — a real socket to a served
  gateway.  Requests are pipelined: any number of coroutines may issue
  requests on one connection concurrently; a background reader task
  demultiplexes responses back to their callers by correlation id.
* **in-process** (:meth:`AsyncGatewayClient.in_process`) — no socket; each
  request is dispatched straight into a :class:`QueryGateway` living in
  the same event loop.  The full parse → admission → single-flight path
  still runs, which is what the gateway's tests and the dedup benchmark
  drive.

Successful responses return the ``result`` payload dict; error responses
raise :class:`~repro.server.errors.GatewayRequestError` carrying the wire
code (``protocol_error``, ``overloaded``, ``timeout``, ...).

TCP clients opened with ``retry_reads=N`` additionally survive dropped
connections for **idempotent read ops** (:data:`IDEMPOTENT_OPS`): a
transport failure triggers a bounded reconnect-and-retry instead of an
error, which is how the query router rides out a replica restart.
Mutations and rule changes are never retried — the gateway's
at-least-once timeout semantics already make blind write retries unsafe.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional

from .errors import GatewayError, GatewayRequestError
from .protocol import decode_frame, encode_frame

#: Ops a reconnecting client may safely retry on a transport failure:
#: pure reads with no server-side effect beyond caching.
IDEMPOTENT_OPS = (
    "optimize",
    "execute",
    "execute_batch",
    "stats",
    "replica_status",
    "subscribe_wal",
)


class AsyncGatewayClient:
    """One logical client of the gateway (TCP or in-process).

    Construct via :meth:`connect` or :meth:`in_process`, then call the RPC
    helpers; every helper is safe to call from many coroutines at once.
    """

    def __init__(
        self,
        *,
        reader: Optional[asyncio.StreamReader] = None,
        writer: Optional[asyncio.StreamWriter] = None,
        gateway=None,
        client_id: str = "client",
        host: Optional[str] = None,
        port: Optional[int] = None,
        retry_reads: int = 0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._gateway = gateway
        self.client_id = client_id
        self._host = host
        self._port = port
        self._retry_reads = retry_reads
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        # Server-initiated push frames (subscriptions), demultiplexed by
        # subscription id into per-subscription queues.  Queues are
        # created on first touch from either side, so a diff frame that
        # races ahead of the subscribe() caller is never dropped.
        self._pushes: Dict[str, asyncio.Queue] = {}
        self.push_frames = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False
        # Connection generation: bumped on every reconnect so a dying old
        # read loop can never fail futures registered on the new
        # connection, and so concurrent retries reconnect at most once.
        self._conn_generation = 1
        self._reconnect_lock: Optional[asyncio.Lock] = None
        if reader is not None:
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader, self._conn_generation)
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls, host: str, port: int, client_id: str = "client", retry_reads: int = 0
    ) -> "AsyncGatewayClient":
        """Open a TCP connection to a served gateway.

        ``client_id`` is a local label only — it is not transmitted.  On
        the TCP path the gateway identifies clients by peer address, so
        admission fairness and pending caps are **per connection**; only
        the in-process path (:meth:`in_process`) honors the id directly.

        ``retry_reads`` bounds reconnect-and-retry attempts for
        idempotent read ops after a transport failure (``0`` preserves
        the fail-fast behaviour).
        """
        reader, writer = await asyncio.open_connection(host, port, limit=1 << 26)
        return cls(
            reader=reader,
            writer=writer,
            client_id=client_id,
            host=host,
            port=port,
            retry_reads=retry_reads,
        )

    @classmethod
    def in_process(cls, gateway, client_id: str = "in-process") -> "AsyncGatewayClient":
        """A client that dispatches straight into ``gateway`` (no socket)."""
        return cls(gateway=gateway, client_id=client_id)

    # ------------------------------------------------------------------
    # RPC helpers
    # ------------------------------------------------------------------
    async def optimize(self, query: str, **options: Any) -> Dict[str, Any]:
        """Optimize one query text; returns the optimization payload."""
        return await self.request({"op": "optimize", "query": query, "options": options})

    async def execute(self, query: str, **options: Any) -> Dict[str, Any]:
        """Optimize (by default) and execute one query text."""
        return await self.request({"op": "execute", "query": query, "options": options})

    async def execute_batch(
        self, queries: List[str], **options: Any
    ) -> Dict[str, Any]:
        """Execute a batch of query texts in one round trip."""
        return await self.request(
            {"op": "execute_batch", "queries": list(queries), "options": options}
        )

    async def stats(self) -> Dict[str, Any]:
        """One immutable snapshot of service + gateway counters."""
        return await self.request({"op": "stats"})

    async def insert(self, class_name: str, values: Dict[str, Any]) -> Dict[str, Any]:
        """Insert one instance; returns the mutation payload (new OID included)."""
        return await self.request(
            {"op": "insert", "class": class_name, "values": values}
        )

    async def insert_many(
        self, class_name: str, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Insert a batch of instances in one round trip."""
        return await self.request(
            {"op": "insert_many", "class": class_name, "rows": list(rows)}
        )

    async def update(
        self, class_name: str, oid: int, values: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Update attribute values of one stored instance."""
        return await self.request(
            {"op": "update", "class": class_name, "oid": oid, "values": values}
        )

    async def delete(self, class_name: str, oid: int) -> Dict[str, Any]:
        """Delete one stored instance."""
        return await self.request({"op": "delete", "class": class_name, "oid": oid})

    async def add_rule(self, rule: Dict[str, Any]) -> Dict[str, Any]:
        """Declare a semantic constraint (see :func:`protocol.parse_rule`)."""
        return await self.request({"op": "rules", "action": "add", "rule": rule})

    async def remove_rule(self, name: str) -> Dict[str, Any]:
        """Remove a declared constraint by name."""
        return await self.request({"op": "rules", "action": "remove", "name": name})

    async def subscribe(self, query: str, **options: Any) -> Dict[str, Any]:
        """Open a live view of ``query``; returns the initial snapshot.

        The payload carries the ``subscription`` id and the initial
        ``rows``; from then on the server pushes diff frames, consumed
        with :meth:`next_push` and folded client-side with
        :func:`repro.subscriptions.apply_changes`.
        """
        return await self.request(
            {"op": "subscribe", "query": query, "options": options}
        )

    async def unsubscribe(self, subscription: str) -> Dict[str, Any]:
        """Drop a live view previously opened with :meth:`subscribe`."""
        return await self.request(
            {"op": "unsubscribe", "subscription": subscription}
        )

    async def next_push(
        self, subscription: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Await the next push frame of one subscription (FIFO order)."""
        queue = self._pushes.setdefault(subscription, asyncio.Queue())
        if timeout is None:
            return await queue.get()
        return await asyncio.wait_for(queue.get(), timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request frame and await its ``result`` payload.

        On the TCP path, a transport failure (dropped connection, reset)
        is retried up to ``retry_reads`` times for idempotent read ops,
        reconnecting between attempts.  Error *responses* — the gateway
        answered — always raise immediately, and non-idempotent frames
        (mutations, rules) are never resent.
        """
        if self._closed:
            raise GatewayError("client is closed")
        retries = (
            self._retry_reads
            if self._writer is not None
            and self._host is not None
            and frame.get("op") in IDEMPOTENT_OPS
            else 0
        )
        delay = 0.05
        for attempt in range(retries + 1):
            generation = self._conn_generation
            try:
                return await self._request_once(frame)
            except GatewayRequestError:
                raise
            except (GatewayError, ConnectionError, OSError):
                if self._closed or attempt >= retries:
                    raise
                # Give a restarting backend a moment, then reconnect (or
                # join a reconnect another coroutine already performed).
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, 0.5)
                try:
                    await self._reconnect(generation)
                except (ConnectionError, OSError):
                    continue  # next attempt retries the reconnect
        raise GatewayError("retry budget exhausted")  # pragma: no cover

    async def _request_once(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        # A connection whose read loop has exited can never answer: a
        # write might land in the dead transport's buffer without an
        # error and the response future would hang forever.  Fail fast
        # instead (retry-eligible callers reconnect and re-issue).
        if self._reader_task is not None and self._reader_task.done():
            raise GatewayError("connection closed")
        frame = dict(frame, id=next(self._ids))
        if self._gateway is not None:
            response = await self._gateway.dispatch(
                frame, self.client_id, subscriber=self
            )
        else:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[frame["id"]] = future
            try:
                self._writer.write(encode_frame(frame))
                await self._writer.drain()
                response = await future
            finally:
                self._pending.pop(frame["id"], None)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise GatewayRequestError(
                error.get("code", "internal"), error.get("message", "unknown error")
            )
        return response["result"]

    async def _reconnect(self, observed_generation: int) -> None:
        """Replace the dead connection (at most once per generation)."""
        if self._reconnect_lock is None:
            self._reconnect_lock = asyncio.Lock()
        async with self._reconnect_lock:
            if self._closed:
                raise GatewayError("client is closed")
            if self._conn_generation != observed_generation:
                return  # another coroutine already reconnected
            reader, writer = await asyncio.open_connection(
                self._host, self._port, limit=1 << 26
            )
            # Bump the generation *before* touching the old connection so
            # its read loop's cleanup (below) recognizes itself as stale.
            self._conn_generation += 1
            old_task, old_writer = self._reader_task, self._writer
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader, self._conn_generation)
            )
            # Requests still parked on the dead connection can never be
            # answered; fail them so retry-eligible callers re-issue on
            # the new connection.
            for future in list(self._pending.values()):
                if not future.done():
                    future.set_exception(
                        GatewayError("connection reset during reconnect")
                    )
            if old_task is not None:
                old_task.cancel()
                try:
                    await old_task
                except asyncio.CancelledError:
                    pass
            if old_writer is not None:
                old_writer.close()

    async def _read_loop(
        self, reader: asyncio.StreamReader, generation: int
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    response = decode_frame(line)
                except GatewayError:
                    continue  # server never sends malformed frames; skip
                if "push" in response:
                    # Server-initiated frames carry no correlation id;
                    # route them by subscription before id demux.
                    self._route_push(response)
                    continue
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # Only the *current* connection's loop may fail the pending
            # map: a stale loop dying mid-reconnect must not kill futures
            # already registered against the replacement connection.
            if generation == self._conn_generation:
                for future in self._pending.values():
                    if not future.done():
                        future.set_exception(
                            GatewayError("connection closed before response")
                        )

    def _route_push(self, frame: Dict[str, Any]) -> None:
        subscription = frame.get("subscription")
        if not isinstance(subscription, str):
            return
        self.push_frames += 1
        self._pushes.setdefault(subscription, asyncio.Queue()).put_nowait(frame)

    async def push_frame(self, payload: Dict[str, Any]) -> None:
        """Receive one push frame (the in-process gateway calls this)."""
        self._route_push(payload)

    async def close(self) -> None:
        """Close the connection (no-op beyond bookkeeping when in-process)."""
        if self._closed:
            return
        self._closed = True
        if self._gateway is not None:
            # The in-process path has no session close to free standing
            # views; release them here like a TCP disconnect would.
            release = getattr(self._gateway, "release_subscriber", None)
            if release is not None:
                release(self)
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()
