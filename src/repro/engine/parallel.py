"""Partition-parallel plan execution over a shard set.

This is the third execution path of the engine
(:data:`~repro.engine.modes.ExecutionMode.PARALLEL`).  It executes the same
plans as the other engines, against the same (optionally sharded)
:class:`~repro.engine.storage.ObjectStore`, and returns the same rows and
the same :class:`~repro.engine.executor.ExecutionMetrics` — the
differential-oracle and metrics-parity suites pin both — but it splits the
work across a pool of forked worker processes:

1. the **driver scan** runs once in the parent, exactly like the vectorized
   engine (same index selection, same compiled filter cascade, charged
   once);
2. the surviving driver rows are **hash-partitioned by OID** — one
   partition per store shard when the store is sharded, else one virtual
   partition per worker — and each partition is shipped to a worker as a
   list of OIDs plus the rows' positions in the global scan output;
3. every worker runs the **remaining plan nodes as a per-shard vectorized
   pipeline** (:class:`~repro.engine.vectorized.VectorizedExecutor` over
   the forked store snapshot, with shard-local pointer/fragment caches that
   stay warm across plans), and sends back per-class **OID columns** — not
   materialized rows, which would dominate transport cost — plus its
   metrics and a ledger of once-per-plan charges;
4. the parent **merges deterministically**: per-shard row batches are
   rebuilt from the OID columns, materialized with the parent's fragment
   cache, and interleaved by driver position (positions never collide
   across partitions, so the merge reproduces the sequential row order
   bit for bit); worker counters are summed, and ledgered one-off charges
   (hash-join builds) are counted exactly once across all shards.

Workers inherit the store by ``fork`` — nothing is copied eagerly.  Each
worker is its own single-process pool, so it can be addressed directly:
when the store's version counter moves between executions, the parent
ships the store's **mutation journal delta**
(:meth:`~repro.engine.storage.ShardedObjectStore.journal_since`) to each
live worker, which replays it into its forked snapshot
(:meth:`~repro.engine.storage.ShardedObjectStore.apply_journal`) instead
of being torn down and re-forked.  Replay bumps the replica's shard
versions exactly like the original writes did, so the worker's own
shard-granular caches invalidate only for the shards that actually moved.
A worker is re-forked only when the journal cannot bridge the gap (bounded
retention overflow, or an index rebuild after un-journaled in-place
repairs).  When forking is unavailable, the pool width is 1, the plan has
no partition contract
(:meth:`~repro.engine.plan.QueryPlan.partition_leaf`), or the driver set
is too small to pay for transport, execution falls back to the identical
in-process pipeline, so correctness never depends on the pool.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from heapq import merge as _heap_merge
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..query.query import Query
from ..schema.schema import Schema
from .executor import ExecutionMetrics, ExecutionResult, ShardReport
from .modes import ExecutionMode, resolve_worker_count
from .plan import ProjectNode, QueryPlan, ScanNode
from .statistics import DatabaseStatistics, StatisticsCache
from .storage import ObjectStore
from .vectorized import BindingBatch, VectorizedExecutor, _PlanContext

#: Default minimum number of driver rows before fan-out pays for itself;
#: below it the executor stays in-process (transport costs more than the
#: pipeline).  Tests force the pool path by passing ``min_partition_rows=1``.
DEFAULT_MIN_PARTITION_ROWS = 128

#: How many plans one batch-mode worker task carries.  Larger chunks
#: amortize the per-task submit/collect round trip; smaller chunks let the
#: parent start merging earlier.  Four is a good middle on the Table 4.2
#: style workloads (tens of plans, tens of microseconds of per-task IPC).
DEFAULT_PLANS_PER_TASK = 4


@dataclass
class _ShardOutcome:
    """Wire-format result of one shard task (compact: OIDs, not rows)."""

    shard_id: int
    columns: Dict[str, List[int]]
    positions: List[int]
    metrics: ExecutionMetrics
    ledger: Dict[Tuple, Tuple[int, int, int]]
    projections: Tuple[str, ...]
    driver_rows: int
    elapsed: float


class _WorkerState:
    """Per-process state of one pool worker (built once at fork time)."""

    #: Upper bound on cached unpickled plans per worker.  The cache only
    #: needs to bridge the shard tasks of plans currently in flight, so a
    #: small FIFO suffices; without a bound, a long-lived pool serving a
    #: stream of distinct queries would grow worker memory indefinitely.
    PLAN_CACHE_SIZE = 64

    def __init__(self, schema: Schema, store: ObjectStore, join_strategy: str) -> None:
        self.schema = schema
        self.store = store
        self.executor = VectorizedExecutor(schema, store, join_strategy=join_strategy)
        self.plans: Dict[str, QueryPlan] = {}

    def plan_for(self, digest: str, blob: bytes) -> QueryPlan:
        """The unpickled plan for ``digest``, cached across shard tasks."""
        plan = self.plans.get(digest)
        if plan is None:
            plan = pickle.loads(blob)
            while len(self.plans) >= self.PLAN_CACHE_SIZE:
                self.plans.pop(next(iter(self.plans)))
            self.plans[digest] = plan
        return plan


_WORKER_STATE: Optional[_WorkerState] = None


def _init_worker(schema: Schema, store: ObjectStore, join_strategy: str) -> None:
    """Pool initializer (runs in the child; arguments arrive via fork)."""
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(schema, store, join_strategy)


def _apply_worker_journal(records) -> int:
    """Replay a journal delta into this worker's forked store snapshot."""
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    return state.store.apply_journal(records)


def _worker_pid() -> int:
    """This worker process's PID (test/debug introspection)."""
    import os

    return os.getpid()


class _WorkerHandle:
    """Parent-side record of one live worker: its pool and sync point."""

    __slots__ = ("pool", "synced_version", "finalizer")

    def __init__(
        self,
        pool: ProcessPoolExecutor,
        synced_version: int,
        finalizer: "weakref.finalize",
    ) -> None:
        self.pool = pool
        self.synced_version = synced_version
        self.finalizer = finalizer


#: Wire format of one shard task: (plan blob, plan digest, driver class,
#: driver OIDs, driver positions, shard id).
_ShardTask = Tuple[bytes, str, str, List[int], List[int], int]


def _execute_shard_chunk(tasks: List[_ShardTask]) -> List[_ShardOutcome]:
    """Run several plans' post-scan pipelines over their driver partitions.

    One chunk per worker round trip: the per-task submit/collect overhead
    is paid once for the whole chunk, and the worker's plan cache means a
    plan arriving for several shards is unpickled once per process.
    """
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    executor = state.executor
    executor._sync_caches()
    outcomes: List[_ShardOutcome] = []
    for plan_blob, plan_digest, driver_class, driver_oids, positions, shard_id in tasks:
        start = time.perf_counter()
        plan = state.plan_for(plan_digest, plan_blob)
        metrics = ExecutionMetrics()
        ledger: Dict[Tuple, Tuple[int, int, int]] = {}
        context = _PlanContext(metrics, one_off_ledger=ledger)
        oid_index = state.store.oid_index(driver_class)
        batch = BindingBatch(
            {driver_class: [oid_index[oid] for oid in driver_oids]},
            positions=list(positions),
        )
        batch, projections = executor._run(plan.root, context, scan_override=batch)
        columns = {
            name: [instance.oid for instance in column]
            for name, column in batch.columns.items()
        }
        outcomes.append(
            _ShardOutcome(
                shard_id=shard_id,
                columns=columns,
                positions=list(batch.positions or []),
                metrics=metrics,
                ledger=ledger,
                projections=projections,
                driver_rows=len(driver_oids),
                elapsed=time.perf_counter() - start,
            )
        )
    return outcomes


@dataclass
class _PreparedExecution:
    """Parent-side bookkeeping for one plan between submit and merge."""

    plan: QueryPlan
    context: _PlanContext
    projections: Tuple[str, ...]
    #: ``(chunk future, index into its outcome list)`` per non-empty shard.
    shard_futures: List[Tuple[Any, int]] = field(default_factory=list)
    #: shard id -> (driver OIDs, driver positions); ``None`` = inline path.
    partitions: Optional[Dict[int, Tuple[List[int], List[int]]]] = None
    leaf: Optional[ScanNode] = None
    driver: Optional[List[Any]] = None
    inline_result: Optional[ExecutionResult] = None


class ParallelExecutor:
    """Executes query plans with per-shard pipelines on a worker pool.

    Parameters mirror the other executors; additionally ``workers`` sets
    the pool width (``None`` = ``REPRO_WORKERS`` env var, else the core
    count capped at 4) and ``min_partition_rows`` the driver-set size below
    which execution stays in-process.  With ``workers=1`` the executor is
    an in-process engine with exactly the vectorized engine's behaviour.
    """

    #: The mode this executor implements (introspection/factory symmetry).
    mode = ExecutionMode.PARALLEL

    def __init__(
        self,
        schema: Schema,
        store: ObjectStore,
        join_strategy: str = "hash",
        workers: Optional[int] = None,
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        statistics_cache: Optional[StatisticsCache] = None,
    ) -> None:
        if join_strategy not in ("hash", "nested_loop"):
            raise ValueError("join_strategy must be 'hash' or 'nested_loop'")
        self.schema = schema
        self.store = store
        self.join_strategy = join_strategy
        self.workers = resolve_worker_count(workers)
        self.min_partition_rows = min_partition_rows
        # Version-keyed statistics, shared with the in-process half (and
        # with the owning service when it passes its own cache).
        self.statistics_cache = statistics_cache or StatisticsCache(
            schema, store
        )
        # The in-process half: runs the driver scan, the fallback path and
        # the final materialization, sharing its version-keyed caches.
        self._local = VectorizedExecutor(
            schema,
            store,
            join_strategy=join_strategy,
            statistics_cache=self.statistics_cache,
        )
        # One single-process pool per worker slot (partition ``p`` is owned
        # by slot ``p % workers``).  Addressing each worker through its own
        # pool is what makes targeted journal catch-up possible: a store
        # mutation is shipped to live workers as a replayable delta, and a
        # worker is only re-forked when the journal cannot bridge its gap.
        self._handles: Dict[int, _WorkerHandle] = {}
        self._pool_broken = False
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    def _pool_possible(self) -> bool:
        """Whether fan-out is even an option (without forking anything)."""
        return (
            self.workers > 1 and not self._pool_broken and self._fork_available()
        )

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        """Any live worker pool (``None`` when no worker has been forked)."""
        for handle in self._handles.values():
            return handle.pool
        return None

    def _worker_pool(self, slot: int) -> Optional[ProcessPoolExecutor]:
        """The up-to-date pool of worker ``slot`` (forked/synced on demand).

        Workers hold a forked snapshot of the store.  When the store's
        version moved since the worker last synced, the journal delta is
        submitted to the worker's (FIFO, single-process) pool ahead of any
        shard task, so the worker replays exactly the mutations it missed;
        only an unbridgeable gap tears the worker down and re-forks it.
        Returns ``None`` when forking fails (the executor then stays
        in-process).
        """
        if not self._pool_possible():
            return None
        with self._pool_lock:
            version = self.store.version
            handle = self._handles.get(slot)
            if handle is not None:
                if handle.synced_version == version:
                    return handle.pool
                records = None
                journal_since = getattr(self.store, "journal_since", None)
                if journal_since is not None:
                    # None covers every unbridgeable state: the journal
                    # evicted past the worker's version, an index rebuild
                    # truncated it, or the worker is *ahead* of the store
                    # (a recovery rolled the store back) — in each case
                    # replaying records could not reconcile the replica,
                    # so the worker is torn down and re-forked fresh.
                    records = journal_since(handle.synced_version)
                if records is not None:
                    # Await the replay's outcome before trusting the worker
                    # with shard tasks: a worker whose catch-up failed
                    # (unpicklable value, pool death, replay error) must be
                    # re-forked, never marked synced on hope.  The delta is
                    # bounded by the journal limit, so the wait is short.
                    try:
                        handle.pool.submit(_apply_worker_journal, records).result()
                    except Exception:
                        self._close_handle(slot)
                    else:
                        handle.synced_version = version
                        return handle.pool
                else:
                    self._close_handle(slot)
            import multiprocessing

            try:
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_worker,
                    initargs=(self.schema, self.store, self.join_strategy),
                )
            except OSError:
                self._pool_broken = True
                return None
            finalizer = weakref.finalize(self, pool.shutdown, wait=False)
            self._handles[slot] = _WorkerHandle(pool, version, finalizer)
            return pool

    def _close_handle(self, slot: int) -> None:
        handle = self._handles.pop(slot, None)
        if handle is not None:
            handle.finalizer.detach()
            handle.pool.shutdown(wait=False)

    def worker_pids(self) -> Dict[int, int]:
        """PID of each live worker, by slot (test/debug introspection)."""
        with self._pool_lock:
            pools = {slot: handle.pool for slot, handle in self._handles.items()}
        return {slot: pool.submit(_worker_pid).result() for slot, pool in pools.items()}

    def close(self) -> None:
        """Shut every worker pool down (re-forked lazily on the next use)."""
        with self._pool_lock:
            slots = list(self._handles)
            for slot in slots:
                self._close_handle(slot)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_plan(self, plan: QueryPlan) -> ExecutionResult:
        """Execute ``plan`` and return rows plus (deterministic) metrics."""
        return self.execute_plans([plan])[0]

    def execute_plans(
        self,
        plans: Sequence[QueryPlan],
        plans_per_task: int = DEFAULT_PLANS_PER_TASK,
    ) -> List[ExecutionResult]:
        """Execute a batch of plans with cross-plan pipelining.

        All shard tasks of every plan are submitted up-front — chunked
        ``plans_per_task`` plans to a worker round trip — and results are
        merged (and rows materialized) in plan order while later plans are
        still being computed by the workers, so the parent's serial half
        overlaps the pool's parallel half instead of alternating with it.
        """
        possible = self._pool_possible()
        prepared = [self._prepare(plan, possible) for plan in plans]
        if any(item.partitions is not None for item in prepared):
            self._dispatch(prepared, max(1, plans_per_task))
        return [self._merge(item) for item in prepared]

    def statistics(self) -> DatabaseStatistics:
        """Statistics current for the store's version (cached)."""
        return self.statistics_cache.get()

    def execute(self, query: Query) -> ExecutionResult:
        """Plan and execute ``query`` in one call."""
        from .planner import ConventionalPlanner

        planner = ConventionalPlanner(
            self.schema,
            self.statistics(),
            execution_mode=ExecutionMode.PARALLEL,
        )
        plan = planner.plan(query)
        return self.execute_plan(plan)

    # ------------------------------------------------------------------
    # Submit / merge halves
    # ------------------------------------------------------------------
    def _prepare(
        self, plan: QueryPlan, pool_possible: bool
    ) -> _PreparedExecution:
        """Run the driver scan and decide inline vs fan-out per plan."""
        local = self._local
        local._sync_caches()
        context = _PlanContext(ExecutionMetrics())
        projections = next(
            (
                node.projections
                for node in plan.root.walk()
                if isinstance(node, ProjectNode)
            ),
            (),
        )
        prepared = _PreparedExecution(
            plan=plan, context=context, projections=projections
        )
        leaf = plan.partition_leaf()
        if leaf is None:
            prepared.inline_result = local.execute_plan(plan)
            return prepared

        driver = self._scan_driver(leaf, context)
        partitions = self._partition(driver)
        if (
            not pool_possible
            or len(driver) < max(2, self.min_partition_rows)
            or len(partitions) <= 1
        ):
            prepared.inline_result = self._run_inline(plan, leaf, driver, context)
            return prepared

        prepared.partitions = partitions
        prepared.leaf = leaf
        prepared.driver = driver
        return prepared

    def _dispatch(
        self,
        prepared: List[_PreparedExecution],
        plans_per_task: int,
    ) -> None:
        """Submit chunked per-shard tasks for every pool-eligible plan.

        Tasks are grouped by worker slot (``shard_id % workers``); each
        slot's pool is forked or journal-synced on first touch, so a store
        mutation between batches costs each live worker one replayed delta
        rather than a re-fork.
        """
        pending = [item for item in prepared if item.partitions is not None]
        for start in range(0, len(pending), plans_per_task):
            chunk = pending[start : start + plans_per_task]
            tasks_by_slot: Dict[int, List[_ShardTask]] = {}
            owners_by_slot: Dict[int, List[_PreparedExecution]] = {}
            for item in chunk:
                blob = pickle.dumps(item.plan, protocol=pickle.HIGHEST_PROTOCOL)
                digest = hashlib.sha1(blob).hexdigest()
                for shard_id, (oids, positions) in item.partitions.items():
                    slot = shard_id % self.workers
                    tasks_by_slot.setdefault(slot, []).append(
                        (blob, digest, item.leaf.class_name, oids, positions, shard_id)
                    )
                    owners_by_slot.setdefault(slot, []).append(item)
            try:
                for slot, tasks in tasks_by_slot.items():
                    pool = self._worker_pool(slot)
                    if pool is None:
                        raise RuntimeError("worker pool unavailable")
                    future = pool.submit(_execute_shard_chunk, tasks)
                    for index, item in enumerate(owners_by_slot[slot]):
                        item.shard_futures.append((future, index))
            except RuntimeError:
                # A pool shut down under us (interpreter teardown, close
                # race) or could not be forked: the in-process path is
                # always available.  Nothing later in the batch can be
                # submitted either, so inline every not-yet-merged pending
                # plan (already-submitted shard futures are simply ignored).
                for item in pending[start:]:
                    item.shard_futures = []
                    item.inline_result = self._run_inline(
                        item.plan, item.leaf, item.driver, item.context
                    )
                return

    def _scan_driver(self, leaf: ScanNode, context: _PlanContext):
        """The driver scan, charged once — identical to the vectorized scan."""
        predicates = list(leaf.predicates)
        if leaf.index_predicate is not None:
            predicates = [leaf.index_predicate] + predicates
        instances, deltas = self._local._derive_candidates(
            leaf.class_name, predicates, leaf.index_predicate, context
        )
        context.charge(deltas)
        return instances

    def _partition(self, driver) -> Dict[int, Tuple[List[int], List[int]]]:
        """Hash-partition driver rows by OID, remembering global positions."""
        shard_count = self.store.shard_count
        partitions = shard_count if shard_count > 1 else self.workers
        shard_of = self.store.shard_of if shard_count > 1 else (
            lambda oid: oid % partitions
        )
        result: Dict[int, Tuple[List[int], List[int]]] = {}
        for position, instance in enumerate(driver):
            bucket = result.setdefault(shard_of(instance.oid), ([], []))
            bucket[0].append(instance.oid)
            bucket[1].append(position)
        return result

    def _run_inline(
        self, plan: QueryPlan, leaf: ScanNode, driver, context: _PlanContext
    ) -> ExecutionResult:
        """The fallback: finish the plan in-process on the already-run scan."""
        local = self._local
        batch = BindingBatch({leaf.class_name: list(driver)})
        batch, projections = local._run(plan.root, context, scan_override=batch)
        rows = local._materialize(batch)
        metrics = context.metrics
        metrics.rows_output = len(rows)
        return ExecutionResult(
            rows=rows, metrics=metrics, projections=projections, plan=plan
        )

    def _merge(self, prepared: _PreparedExecution) -> ExecutionResult:
        """Deterministically merge shard outcomes into one result."""
        if prepared.inline_result is not None:
            return prepared.inline_result
        if not prepared.shard_futures:
            return self._run_inline(
                prepared.plan, prepared.leaf, prepared.driver, prepared.context
            )
        try:
            outcomes = [
                future.result()[index] for future, index in prepared.shard_futures
            ]
        except (BrokenExecutor, OSError):
            # The pool itself died (worker OOM-killed, fork refused…), as
            # opposed to a task raising — that still propagates.  Mark the
            # pool broken so future executions stay in-process, and redo
            # this plan inline from scratch.
            self._pool_broken = True
            self.close()
            return self._local.execute_plan(prepared.plan)
        outcomes.sort(key=lambda outcome: outcome.shard_id)

        metrics = prepared.context.metrics
        charged: set = set()
        for outcome in outcomes:
            other = outcome.metrics
            metrics.instances_retrieved += other.instances_retrieved
            metrics.predicate_evaluations += other.predicate_evaluations
            metrics.pointer_traversals += other.pointer_traversals
            metrics.index_lookups += other.index_lookups
            for key, deltas in outcome.ledger.items():
                if key not in charged:
                    charged.add(key)
                    prepared.context.charge(deltas)

        local = self._local
        merged: List[Tuple[int, Dict[str, Any]]] = []
        streams = []
        reports: List[ShardReport] = []
        for outcome in outcomes:
            columns = {
                name: [self.store.oid_index(name)[oid] for oid in oids]
                for name, oids in outcome.columns.items()
            }
            rows = local._materialize(BindingBatch(columns))
            streams.append(zip(outcome.positions, rows))
            reports.append(
                ShardReport(
                    shard_id=outcome.shard_id,
                    row_count=len(rows),
                    elapsed=outcome.elapsed,
                    driver_rows=outcome.driver_rows,
                )
            )
        # Positions are disjoint across shards and non-decreasing within
        # one, so a k-way merge restores the sequential row order exactly.
        merged_rows = [
            row for _position, row in _heap_merge(*streams, key=lambda item: item[0])
        ]
        metrics.rows_output = len(merged_rows)
        projections = prepared.projections
        for outcome in outcomes:
            if outcome.projections:
                projections = outcome.projections
                break
        return ExecutionResult(
            rows=merged_rows,
            metrics=metrics,
            projections=projections,
            plan=prepared.plan,
            shard_reports=reports,
        )
