"""The vectorized batch executor.

This is the second execution path of the engine
(:data:`~repro.engine.modes.ExecutionMode.VECTORIZED`).  Where the row-wise
:class:`~repro.engine.executor.QueryExecutor` walks plans binding by binding
and re-interprets every predicate per row, this executor:

* pulls instances through the plan in **column-oriented batches**
  (:class:`BindingBatch`: one parallel column of instances per bound class,
  so extending a join appends columns instead of copying per-row dicts);
* evaluates predicates as **compiled closures** — each predicate is lowered
  once per plan by :mod:`repro.engine.compiled` and then applied to whole
  columns in tight loops;
* performs pointer traversals via **batched index/pointer lookups** over the
  hash-join build side, and memoizes per-instance row fragments when
  materializing results.

The executor is a drop-in replacement for the row-wise path: it accepts the
same plans, returns the same :class:`~repro.engine.executor.ExecutionResult`
rows (in the same order), and — deliberately — reports byte-identical
:class:`~repro.engine.executor.ExecutionMetrics` counters.  Counter parity
is achieved by preserving the row-wise evaluation *order*: predicates are
applied as a filter cascade (predicate ``j`` is only charged for rows that
survived predicates ``1..j-1``, exactly like the row-wise short-circuit)
and join matches are collected with the same forward-then-backward,
deduplicated-by-OID discipline.  The metrics-parity and differential-oracle
tests pin both properties, which keeps the Table 4.2 / Figure 4.1 numbers
engine-independent.

Candidate derivations (the instances of a class passing its local
predicates) are *derived at most once per plan* and memoized together with
the metric deltas the derivation logically costs; every call-site then
charges those deltas per use.  That reproduces the row-wise accounting
exactly — a hash-join build charges once, the nested-loop strategy charges
once per probing row — while the physical work happens once.  The split
between deriving and charging is also what the parallel executor
(:mod:`repro.engine.parallel`) builds on: its per-shard workers run these
same plan nodes, route one-off charges into a ledger that the merge step
counts exactly once, and charge per-row deltas locally so that summed
worker metrics plus the deduplicated ledger equal a single-shard run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema
from .compiled import (
    BindingKernel,
    ColumnKernel,
    compile_for_binding,
    compile_for_class,
)
from .executor import ExecutionMetrics, ExecutionResult
from .instance import ObjectInstance
from .modes import ExecutionMode
from .plan import FilterNode, PlanNode, ProjectNode, QueryPlan, ScanNode, TraverseNode
from .statistics import DatabaseStatistics, StatisticsCache
from .storage import ObjectStore


class BindingBatch:
    """A batch of partial results in columnar form.

    ``columns`` maps each bound class name to a column (list) of instances;
    all columns have equal length and row ``i`` across the columns is one
    binding.  Column insertion order matches the order classes were bound,
    which is what keeps materialized rows identical to the row-wise path.

    ``positions`` is an optional parallel column of global row positions.
    A single-shard execution never needs it; the parallel executor seeds it
    with each driver row's index in the global scan output and lets it flow
    through filters and join fan-out, so per-shard results can be merged
    back into the exact single-shard row order.
    """

    __slots__ = ("columns", "positions")

    def __init__(
        self,
        columns: Dict[str, List[ObjectInstance]],
        positions: Optional[List[int]] = None,
    ) -> None:
        self.columns = columns
        self.positions = positions

    @property
    def length(self) -> int:
        """Number of bindings in the batch."""
        for column in self.columns.values():
            return len(column)
        return 0

    def take(self, indices: Sequence[int]) -> "BindingBatch":
        """A new batch keeping only the rows at ``indices`` (in that order)."""
        return BindingBatch(
            {
                name: [column[i] for i in indices]
                for name, column in self.columns.items()
            },
            positions=(
                [self.positions[i] for i in indices]
                if self.positions is not None
                else None
            ),
        )

    def value_columns(self) -> Dict[str, List[Mapping[str, Any]]]:
        """Per-class columns of attribute-value mappings (for kernels)."""
        return {
            name: [instance.values for instance in column]
            for name, column in self.columns.items()
        }


#: Metric deltas of one candidate derivation, in counter order:
#: (instances_retrieved, predicate_evaluations, index_lookups).
CandidateDeltas = Tuple[int, int, int]

#: A memoized candidate derivation: the surviving instances plus the metric
#: deltas the derivation logically costs, charged on every use.
_CandidateEntry = Tuple[List[ObjectInstance], CandidateDeltas]


class _PlanContext:
    """Per-execution state: metrics plus the plan's compiled-kernel cache.

    Kernels are compiled at most once per (class, predicate) pair per plan
    execution — the "pre-lowered once per plan" contract — and shared by
    every batch that flows through the node, including the per-row candidate
    re-derivations of the nested-loop strategy.  The context also memoizes
    candidate derivations: the store cannot change mid-plan, so a repeated
    derivation (the nested-loop strategy re-derives the same candidate set
    once per source row) returns the memoized instances while each use
    *charges the metric deltas* of the original derivation — the counters
    keep modelling the logical operations the row-wise engine performs,
    which is what keeps the Table 4.2 cost ratios engine-independent, while
    the physical work happens once.

    ``one_off_ledger`` switches the context into parallel-worker mode: plan
    nodes whose derivation is charged *once per plan* (hash-join builds)
    record their deltas under a deterministic node key instead of charging
    the local metrics, and the parallel merge charges each key exactly once
    across all shards.  Per-row charges (nested-loop probes, filter
    cascades, pointer traversals) stay local because they sum correctly.
    """

    __slots__ = (
        "metrics",
        "one_off_ledger",
        "node_seq",
        "_class_kernels",
        "_binding_kernels",
        "_candidates",
    )

    def __init__(
        self,
        metrics: ExecutionMetrics,
        one_off_ledger: Optional[Dict[Tuple, CandidateDeltas]] = None,
    ) -> None:
        self.metrics = metrics
        self.one_off_ledger = one_off_ledger
        #: Deterministic plan-node counter: bumped once per node visited by
        #: ``_run``, in recursion order, so every shard of a parallel run
        #: assigns the same sequence numbers to the same nodes.
        self.node_seq = 0
        self._class_kernels: Dict[Tuple[str, Predicate], ColumnKernel] = {}
        self._binding_kernels: Dict[Predicate, BindingKernel] = {}
        self._candidates: Dict[Tuple, _CandidateEntry] = {}

    def charge(self, deltas: CandidateDeltas) -> None:
        """Add one use of a derivation to the local counters."""
        retrieved, evaluations, lookups = deltas
        metrics = self.metrics
        metrics.instances_retrieved += retrieved
        metrics.predicate_evaluations += evaluations
        metrics.index_lookups += lookups

    def charge_one_off(self, key: Tuple, deltas: CandidateDeltas) -> None:
        """Charge a once-per-plan derivation (ledgered in worker mode)."""
        if self.one_off_ledger is not None:
            self.one_off_ledger[key] = deltas
        else:
            self.charge(deltas)

    def candidate_entry(self, key: Tuple) -> Optional[_CandidateEntry]:
        """The memoized derivation for ``key``, if any (never charges)."""
        return self._candidates.get(key)

    def store_candidates(
        self, key: Tuple, instances: List[ObjectInstance], deltas: CandidateDeltas
    ) -> None:
        self._candidates[key] = (instances, deltas)

    def class_kernel(self, class_name: str, predicate: Predicate) -> ColumnKernel:
        key = (class_name, predicate)
        kernel = self._class_kernels.get(key)
        if kernel is None:
            kernel = compile_for_class(predicate, class_name)
            self._class_kernels[key] = kernel
        return kernel

    def binding_kernel(self, predicate: Predicate) -> BindingKernel:
        kernel = self._binding_kernels.get(predicate)
        if kernel is None:
            kernel = compile_for_binding(predicate)
            self._binding_kernels[predicate] = kernel
        return kernel


class VectorizedExecutor:
    """Executes query plans in column-oriented batches.

    Parameters mirror :class:`~repro.engine.executor.QueryExecutor`:
    ``join_strategy`` is ``"hash"`` (build the traversed class's candidate
    set once per traverse node) or ``"nested_loop"`` (re-derive it per
    binding, modelling the paper's relational cost measurements).  The
    nested-loop variant still profits from compiled predicates: the kernels
    are compiled once per plan and reused across every re-derivation.
    """

    #: The mode this executor implements (introspection/factory symmetry).
    mode = ExecutionMode.VECTORIZED

    def __init__(
        self,
        schema: Schema,
        store: ObjectStore,
        join_strategy: str = "hash",
        statistics_cache: Optional[StatisticsCache] = None,
    ) -> None:
        if join_strategy not in ("hash", "nested_loop"):
            raise ValueError("join_strategy must be 'hash' or 'nested_loop'")
        self.schema = schema
        self.store = store
        self.join_strategy = join_strategy
        # Version-keyed statistics shared with the service when provided
        # (one collect per store version across every consumer).
        self.statistics_cache = statistics_cache or StatisticsCache(
            schema, store
        )
        # Store-derived caches: normalized pointer lists per (instance,
        # attribute) and qualified row fragments per instance.  Both are
        # pure functions of stored state, so reuse across executions cannot
        # change results.  Entries are bucketed by the owning instance's
        # shard and invalidated *per shard*: a write to shard ``s`` bumps
        # only ``s``'s version counter, so only bucket ``s`` is dropped and
        # every other shard's warm entries survive the write.
        self._cache_shard_versions: Tuple[int, ...] = ()
        self._shard_count = getattr(store, "shard_count", 1)
        self._pointer_cache: Dict[int, Dict[Tuple[int, str], List[int]]] = {}
        self._fragment_cache: Dict[int, Dict[int, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_plan(self, plan: QueryPlan) -> ExecutionResult:
        """Execute ``plan`` and return rows plus metrics."""
        self._sync_caches()
        metrics = ExecutionMetrics()
        context = _PlanContext(metrics)
        batch, projections = self._run(plan.root, context)
        rows = self._materialize(batch)
        metrics.rows_output = len(rows)
        return ExecutionResult(
            rows=rows, metrics=metrics, projections=projections, plan=plan
        )

    def _sync_caches(self) -> None:
        """Drop cached state of exactly the shards whose version moved."""
        versions = self.store.shard_versions()
        previous = self._cache_shard_versions
        if versions == previous:
            return
        if len(versions) != len(previous):
            self._pointer_cache.clear()
            self._fragment_cache.clear()
        else:
            for shard_id, (before, after) in enumerate(zip(previous, versions)):
                if before != after:
                    self._pointer_cache.pop(shard_id, None)
                    self._fragment_cache.pop(shard_id, None)
        self._cache_shard_versions = versions
        self._shard_count = len(versions)

    def _pointers(self, instance: ObjectInstance, attribute: str) -> List[int]:
        """Cached normalized pointer OIDs of one instance attribute."""
        shard = self._pointer_cache.setdefault(
            instance.oid % self._shard_count, {}
        )
        key = (id(instance), attribute)
        oids = shard.get(key)
        if oids is None:
            oids = instance.pointer_oids(attribute)
            shard[key] = oids
        return oids

    def statistics(self) -> DatabaseStatistics:
        """Statistics current for the store's version (cached)."""
        return self.statistics_cache.get()

    def execute(self, query: Query) -> ExecutionResult:
        """Plan and execute ``query`` in one call."""
        from .planner import ConventionalPlanner

        planner = ConventionalPlanner(
            self.schema,
            self.statistics(),
            execution_mode=ExecutionMode.VECTORIZED,
        )
        plan = planner.plan(query)
        return self.execute_plan(plan)

    def apply_delta(
        self, query: Query, records: Sequence[Any]
    ) -> Tuple[ExecutionResult, Tuple[int, ...]]:
        """Re-evaluate ``query`` after a journal batch; shard-granular cost.

        The incremental-view-maintenance entry point: ``records`` is the
        journal slice since the caller's last known version.  Row output
        is identical to :meth:`execute` — the plan is re-derived from
        *current* statistics, because physical plan choice (and therefore
        row order) is stats-dependent and a retained stale plan could
        order rows differently from a fresh execution.  The incremental
        win is in the caches: ``_sync_caches`` drops pointer/fragment
        state only for the shards the batch actually touched, so the
        re-probe pays per *touched shard*, not per store.  Returns the
        result plus the touched shard ids (sorted), which the standing-
        view layer surfaces for observability and tests pin.
        """
        touched = sorted({self.store.shard_of(record.oid) for record in records})
        return self.execute(query), tuple(touched)

    # ------------------------------------------------------------------
    # Node evaluation
    # ------------------------------------------------------------------
    def _run(
        self,
        node: PlanNode,
        context: _PlanContext,
        scan_override: Optional[BindingBatch] = None,
    ) -> Tuple[BindingBatch, Tuple[str, ...]]:
        context.node_seq += 1
        node_seq = context.node_seq
        if isinstance(node, ScanNode):
            if scan_override is not None:
                return scan_override, ()
            return self._run_scan(node, context), ()
        if isinstance(node, TraverseNode):
            batch, projections = self._run(node.child, context, scan_override)
            return self._run_traverse(node, batch, context, node_seq), projections
        if isinstance(node, FilterNode):
            batch, projections = self._run(node.child, context, scan_override)
            return self._run_filter(node, batch, context), projections
        if isinstance(node, ProjectNode):
            batch, _ = self._run(node.child, context, scan_override)
            return batch, node.projections
        raise TypeError(f"unknown plan node type {type(node).__name__}")

    def _derive_candidates(
        self,
        class_name: str,
        predicates: Sequence[Predicate],
        index_predicate: Optional[Predicate],
        context: _PlanContext,
    ) -> _CandidateEntry:
        """Instances of ``class_name`` passing ``predicates``, with deltas.

        Derivation is memoized per plan execution (the store cannot change
        mid-plan) and **never charges metrics itself** — it returns the
        logical metric deltas and leaves the charging policy to the
        call-site: once per plan for scans and hash-join builds, once per
        probing row for the nested-loop strategy.  Index selection and the
        compiled filter cascade mirror the row-wise
        ``QueryExecutor._candidate_instances`` exactly, so the deltas equal
        the row-wise charges for one derivation.
        """
        memo_key = (class_name, tuple(predicates), index_predicate)
        entry = context.candidate_entry(memo_key)
        if entry is not None:
            return entry
        retrieved = 0
        evaluations = 0
        lookups = 0
        remaining = list(predicates)
        instances: List[ObjectInstance]
        chosen = index_predicate
        if chosen is None:
            for predicate in remaining:
                if self.store.indexes.can_answer(predicate):
                    chosen = predicate
                    break
        if chosen is not None:
            oids = self.store.indexes.lookup(chosen)
            if oids is None:
                chosen = None
            else:
                lookups += 1
                oid_index = self.store.oid_index(class_name)
                instances = [
                    instance
                    for instance in (oid_index.get(oid) for oid in oids)
                    if instance is not None
                ]
                retrieved += len(instances)
                remaining = [p for p in remaining if p is not chosen]
        if chosen is None:
            instances = self.store.instances(class_name)
            retrieved += len(instances)

        survivors = instances
        if remaining:
            values = [instance.values for instance in instances]
            for predicate in remaining:
                if not survivors:
                    break
                kernel = context.class_kernel(class_name, predicate)
                evaluations += len(survivors)
                mask = kernel(values)
                survivors = [
                    instance for instance, keep in zip(survivors, mask) if keep
                ]
                values = [row for row, keep in zip(values, mask) if keep]
        deltas = (retrieved, evaluations, lookups)
        context.store_candidates(memo_key, survivors, deltas)
        return survivors, deltas

    def _run_scan(self, node: ScanNode, context: _PlanContext) -> BindingBatch:
        predicates = list(node.predicates)
        if node.index_predicate is not None:
            predicates = [node.index_predicate] + predicates
        instances, deltas = self._derive_candidates(
            node.class_name, predicates, node.index_predicate, context
        )
        context.charge(deltas)
        return BindingBatch({node.class_name: instances})

    def _run_traverse(
        self,
        node: TraverseNode,
        batch: BindingBatch,
        context: _PlanContext,
        node_seq: int,
    ) -> BindingBatch:
        relationship = self.schema.relationship(node.relationship)
        source_attribute = relationship.attribute_for(node.source_class)
        target_attribute = relationship.attribute_for(node.target_class)

        if self.join_strategy == "nested_loop":
            return self._run_traverse_nested_loop(
                node, batch, context, source_attribute, target_attribute
            )

        # Hash-join style: build the target candidate set once, with the
        # target's local predicates applied through compiled kernels, then
        # probe it with the whole source column.  The build is a
        # once-per-plan charge, so in parallel-worker mode it goes to the
        # one-off ledger — keyed by the node's deterministic sequence
        # number (assigned at descent, identical in every shard) —
        # instead of the shard-local counters.
        candidates, deltas = self._derive_candidates(
            node.target_class, node.predicates, None, context
        )
        context.charge_one_off((node_seq, "build"), deltas)
        pointers = self._pointers
        by_oid: Dict[int, ObjectInstance] = {c.oid: c for c in candidates}
        by_back_pointer: Dict[int, List[ObjectInstance]] = defaultdict(list)
        for candidate in candidates:
            for back in pointers(candidate, target_attribute):
                by_back_pointer[back].append(candidate)

        source_column = batch.columns.get(node.source_class)
        if source_column is None:
            return self._extend(batch, [], node.target_class, [])

        metrics = context.metrics
        row_indices: List[int] = []
        target_column: List[ObjectInstance] = []
        for i, source_instance in enumerate(source_column):
            metrics.pointer_traversals += 1
            matches: Dict[int, ObjectInstance] = {}
            for forward_oid in pointers(source_instance, source_attribute):
                if forward_oid in by_oid:
                    matches[forward_oid] = by_oid[forward_oid]
            for candidate in by_back_pointer.get(source_instance.oid, ()):
                matches[candidate.oid] = candidate
            for candidate in matches.values():
                row_indices.append(i)
                target_column.append(candidate)
        return self._extend(batch, row_indices, node.target_class, target_column)

    def _run_traverse_nested_loop(
        self,
        node: TraverseNode,
        batch: BindingBatch,
        context: _PlanContext,
        source_attribute: str,
        target_attribute: str,
    ) -> BindingBatch:
        """Nested-loop variant: re-derive the candidate set per binding.

        The candidate derivation is charged per source row, exactly like
        the row-wise nested loop (the physical derivation happens once and
        its deltas are replayed); the compiled predicate kernels are shared
        across the re-derivations via the plan context.  Per-row charges
        sum correctly across shards, so this path needs no ledger.
        """
        source_column = batch.columns.get(node.source_class)
        if source_column is None:
            return self._extend(batch, [], node.target_class, [])
        metrics = context.metrics
        pointers = self._pointers
        row_indices: List[int] = []
        target_column: List[ObjectInstance] = []
        # The candidate derivation is charged once per source row, as
        # row-wise does; the probe structures over the (memoized, hence
        # identical) candidate list are built once.  Candidate OIDs are
        # unique within an extent, so emitting matched candidate indices in
        # ascending order reproduces the row-wise "iterate candidates, keep
        # the linked ones" output exactly.
        probe_for: Optional[List[ObjectInstance]] = None
        oid_to_index: Dict[int, int] = {}
        back_index: Dict[int, List[int]] = {}
        for i, source_instance in enumerate(source_column):
            metrics.pointer_traversals += 1
            candidates, deltas = self._derive_candidates(
                node.target_class, node.predicates, None, context
            )
            context.charge(deltas)
            if candidates is not probe_for:
                probe_for = candidates
                oid_to_index = {c.oid: idx for idx, c in enumerate(candidates)}
                back_index = {}
                for idx, candidate in enumerate(candidates):
                    for back in pointers(candidate, target_attribute):
                        back_index.setdefault(back, []).append(idx)
            matched = {
                oid_to_index[oid]
                for oid in pointers(source_instance, source_attribute)
                if oid in oid_to_index
            }
            matched.update(back_index.get(source_instance.oid, ()))
            for idx in sorted(matched):
                row_indices.append(i)
                target_column.append(candidates[idx])
        return self._extend(batch, row_indices, node.target_class, target_column)

    @staticmethod
    def _extend(
        batch: BindingBatch,
        row_indices: Sequence[int],
        target_class: str,
        target_column: List[ObjectInstance],
    ) -> BindingBatch:
        """Replicate batch rows per join match and append the new column."""
        columns = {
            name: [column[i] for i in row_indices]
            for name, column in batch.columns.items()
        }
        columns[target_class] = target_column
        positions = (
            [batch.positions[i] for i in row_indices]
            if batch.positions is not None
            else None
        )
        return BindingBatch(columns, positions=positions)

    def _run_filter(
        self, node: FilterNode, batch: BindingBatch, context: _PlanContext
    ) -> BindingBatch:
        if not node.predicates or batch.length == 0:
            return batch
        metrics = context.metrics
        value_columns = batch.value_columns()
        indices = list(range(batch.length))
        for predicate in node.predicates:
            if not indices:
                break
            kernel = context.binding_kernel(predicate)
            metrics.predicate_evaluations += len(indices)
            sub_columns = {
                name: [column[i] for i in indices]
                for name, column in value_columns.items()
            }
            mask = kernel(sub_columns, len(indices))
            indices = [i for i, keep in zip(indices, mask) if keep]
        if len(indices) == batch.length:
            return batch
        return batch.take(indices)

    # ------------------------------------------------------------------
    # Row construction
    # ------------------------------------------------------------------
    def _materialize(self, batch: BindingBatch) -> List[Dict[str, Any]]:
        """Rows in qualified ``class.attribute`` form, fragment-memoized.

        Join fan-out repeats the same instance across many rows (and across
        the queries of a workload); its qualified-values dict is built once
        per *shard* version and merged per row, instead of re-deriving the
        qualified keys for every row as the row-wise path does.
        """
        caches = self._fragment_cache
        shard_count = self._shard_count
        columns = list(batch.columns.values())
        rows: List[Dict[str, Any]] = []
        for i in range(batch.length):
            row: Dict[str, Any] = {}
            for column in columns:
                instance = column[i]
                fragments = caches.setdefault(instance.oid % shard_count, {})
                fragment = fragments.get(id(instance))
                if fragment is None:
                    fragment = instance.qualified_values()
                    fragments[id(instance)] = fragment
                row.update(fragment)
            rows.append(row)
        return rows
