"""Database statistics for cardinality and selectivity estimation.

The conventional query optimizer of the paper relies on "a reasonably
accurate cost model" to estimate the profitability of optional predicates
and of class elimination.  That cost model in turn needs statistics about
the stored data; :class:`DatabaseStatistics` collects the usual ones —
extent cardinalities, per-attribute distinct-value counts and numeric
min/max — straight from an :class:`~repro.engine.storage.ObjectStore`, and
offers textbook selectivity estimates for predicates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..constraints.predicate import ComparisonOperator, Predicate
from ..schema.schema import Schema
from .storage import ObjectStore

#: Fallback selectivities when no statistics are available, in the spirit of
#: the classic System R defaults.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_INEQUALITY_SELECTIVITY = 0.9


@dataclass
class AttributeStatistics:
    """Statistics about a single attribute of a class extent."""

    distinct_values: int = 0
    null_count: int = 0
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    is_numeric: bool = False


@dataclass
class DatabaseStatistics:
    """Statistics for one database instance."""

    cardinalities: Dict[str, int] = field(default_factory=dict)
    attributes: Dict[Tuple[str, str], AttributeStatistics] = field(
        default_factory=dict
    )
    #: The ``(class, attribute)`` pairs that carried a *live* secondary
    #: index when these statistics were collected.  ``None`` means the
    #: statistics were built without a store (tests constructing them by
    #: hand), in which case consumers fall back to the static schema.
    #: Runtime index creation/drops (the tuning advisor) are only visible
    #: through this set — the schema's ``indexed`` flags never change.
    indexed: Optional[FrozenSet[Tuple[str, str]]] = None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    @staticmethod
    def collect(
        schema: Schema,
        store: ObjectStore,
        class_names: Optional[Iterable[str]] = None,
    ) -> "DatabaseStatistics":
        """Gather statistics from the current contents of ``store``.

        ``class_names`` restricts collection to a subset of classes (the
        :class:`StatisticsCache` recollects only journal-touched classes);
        per-class statistics are independent, so a restricted collect is
        byte-identical to the matching slice of a full collect.
        """
        stats = DatabaseStatistics()
        stats.indexed = frozenset(store.indexes.indexed_attributes())
        if class_names is None:
            names: List[str] = list(schema.class_names())
        else:
            wanted = set(class_names)
            names = [name for name in schema.class_names() if name in wanted]
        for class_name in names:
            extent = store.instances(class_name)
            stats.cardinalities[class_name] = len(extent)
            cls = schema.object_class(class_name)
            for attribute in cls.value_attributes:
                values = [instance.values.get(attribute.name) for instance in extent]
                non_null = [v for v in values if v is not None]
                numeric = attribute.domain.is_numeric
                attr_stats = AttributeStatistics(
                    distinct_values=len(set(non_null)),
                    null_count=len(values) - len(non_null),
                    is_numeric=numeric,
                )
                if non_null and numeric:
                    attr_stats.minimum = min(non_null)
                    attr_stats.maximum = max(non_null)
                stats.attributes[(class_name, attribute.name)] = attr_stats
        return stats

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cardinality(self, class_name: str) -> int:
        """Extent cardinality (0 when unknown)."""
        return self.cardinalities.get(class_name, 0)

    def attribute_statistics(
        self, class_name: str, attribute_name: str
    ) -> Optional[AttributeStatistics]:
        """Statistics for ``class_name.attribute_name`` if collected."""
        return self.attributes.get((class_name, attribute_name))

    def distinct(self, class_name: str, attribute_name: str) -> Optional[int]:
        """Distinct-value count for an attribute, when known."""
        stats = self.attribute_statistics(class_name, attribute_name)
        if stats is None or stats.distinct_values == 0:
            return None
        return stats.distinct_values

    def is_indexed(
        self, class_name: str, attribute_name: str
    ) -> Optional[bool]:
        """Whether the attribute carried a live index at collect time.

        ``None`` when these statistics were built without a store — the
        caller should then fall back to the schema's static flags.
        """
        if self.indexed is None:
            return None
        return (class_name, attribute_name) in self.indexed

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def selectivity(self, predicate: Predicate) -> float:
        """Estimate the fraction of instances satisfying ``predicate``.

        Join predicates get the usual ``1 / max(distinct_left,
        distinct_right)`` estimate; selective predicates use distinct-value
        counts for equality and min/max interpolation for ranges, falling
        back to the textbook defaults when statistics are missing.
        """
        if not predicate.is_selection:
            left = self.distinct(
                predicate.left.class_name, predicate.left.attribute_name
            )
            right_operand = predicate.right
            right = None
            if hasattr(right_operand, "class_name"):
                right = self.distinct(
                    right_operand.class_name, right_operand.attribute_name
                )
            denominator = max(left or 0, right or 0)
            if denominator <= 0:
                return DEFAULT_RANGE_SELECTIVITY
            return min(1.0, 1.0 / denominator)

        class_name = predicate.left.class_name
        attribute_name = predicate.left.attribute_name
        stats = self.attribute_statistics(class_name, attribute_name)
        operator = predicate.operator

        if operator is ComparisonOperator.EQ:
            if stats and stats.distinct_values > 0:
                return min(1.0, 1.0 / stats.distinct_values)
            return DEFAULT_EQUALITY_SELECTIVITY
        if operator is ComparisonOperator.NE:
            if stats and stats.distinct_values > 0:
                return max(0.0, 1.0 - 1.0 / stats.distinct_values)
            return DEFAULT_INEQUALITY_SELECTIVITY

        # Range operators.
        value = predicate.constant
        if (
            stats
            and stats.is_numeric
            and isinstance(value, (int, float))
            and stats.minimum is not None
            and stats.maximum is not None
            and stats.maximum > stats.minimum
        ):
            span = float(stats.maximum - stats.minimum)
            position = (float(value) - float(stats.minimum)) / span
            position = min(1.0, max(0.0, position))
            if operator in (ComparisonOperator.LT, ComparisonOperator.LE):
                return max(0.0, min(1.0, position))
            return max(0.0, min(1.0, 1.0 - position))
        return DEFAULT_RANGE_SELECTIVITY

    def combined_selectivity(self, predicates) -> float:
        """Independence-assumption product of individual selectivities."""
        result = 1.0
        for predicate in predicates:
            result *= self.selectivity(predicate)
        return result

    def estimated_matching(self, class_name: str, predicates) -> float:
        """Estimated number of instances of ``class_name`` passing ``predicates``.

        Only the predicates that reference ``class_name`` and no other class
        contribute; cross-class predicates are handled at join level.
        """
        local = [
            p
            for p in predicates
            if p.referenced_classes() == frozenset({class_name})
        ]
        return self.cardinality(class_name) * self.combined_selectivity(local)


class StatisticsCache:
    """Versioned statistics over one ``(schema, store)`` pair.

    Collecting :class:`DatabaseStatistics` walks every extent, which is the
    single most expensive per-request step once executors and plans are
    warm.  The cache keys one collected snapshot on the store's global
    mutation counter: while the version stands still, every consumer —
    executors planning queries, the service's batch path, the optimizer's
    cost model — reads the same object and **no collection runs at all**.

    When the version moves, the store's bounded mutation journal decides
    how much work the refresh costs:

    * the journal bridges the delta → only the journal-touched classes are
      recollected (per-class statistics are independent, so the merged
      snapshot is byte-identical to a full collect);
    * the delta contains only index lifecycle ops → data statistics are
      reused verbatim and just the live-index set is refreshed;
    * the journal cannot bridge (bounded retention, an index rebuild's
      floor) → a full collect runs.

    Snapshots are never mutated in place — consumers holding a reference
    (a plan under execution) keep a consistent view while later requests
    read the refreshed one.  ``get`` is thread-safe; collection runs at
    most once per observed store version (the regression contract pinned
    by ``tests/service/test_statistics_staleness.py``).
    """

    #: Journal ops that change data statistics (index lifecycle ops don't).
    _DATA_OPS = ("insert", "update", "delete")

    def __init__(self, schema: Schema, store: ObjectStore) -> None:
        self.schema = schema
        self.store = store
        self._lock = threading.Lock()
        self._stats: Optional[DatabaseStatistics] = None
        self._version: Optional[int] = None
        #: Full store walks performed (cache misses the journal couldn't
        #: soften).  Exposed for regression tests and tuning stats.
        self.full_collects = 0
        #: Journal-guided partial recollects (touched classes only).
        self.partial_collects = 0

    @property
    def collects(self) -> int:
        """Total collection passes, full or partial."""
        return self.full_collects + self.partial_collects

    def invalidate(self) -> None:
        """Drop the cached snapshot (the next ``get`` collects fresh)."""
        with self._lock:
            self._stats = None
            self._version = None

    def get(self) -> DatabaseStatistics:
        """Statistics current for the store's present version."""
        with self._lock:
            version = self.store.version
            if self._stats is not None and version == self._version:
                return self._stats
            previous = self._stats
            records = (
                self.store.journal_since(self._version)
                if previous is not None and self._version is not None
                else None
            )
            if records is None:
                stats = DatabaseStatistics.collect(self.schema, self.store)
                self.full_collects += 1
            else:
                touched = sorted(
                    {
                        record.class_name
                        for record in records
                        if record.op in self._DATA_OPS
                    }
                )
                if touched:
                    fresh = DatabaseStatistics.collect(
                        self.schema, self.store, class_names=touched
                    )
                    cardinalities = dict(previous.cardinalities)
                    cardinalities.update(fresh.cardinalities)
                    attributes = dict(previous.attributes)
                    attributes.update(fresh.attributes)
                    stats = DatabaseStatistics(
                        cardinalities=cardinalities,
                        attributes=attributes,
                        indexed=fresh.indexed,
                    )
                    self.partial_collects += 1
                else:
                    # Index-only delta: the data statistics are unchanged;
                    # refresh just the live-index set (no extent is walked,
                    # so this does not count as a collection pass).
                    stats = DatabaseStatistics(
                        cardinalities=previous.cardinalities,
                        attributes=previous.attributes,
                        indexed=frozenset(
                            self.store.indexes.indexed_attributes()
                        ),
                    )
            self._stats = stats
            self._version = version
            return stats
