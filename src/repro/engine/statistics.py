"""Database statistics for cardinality and selectivity estimation.

The conventional query optimizer of the paper relies on "a reasonably
accurate cost model" to estimate the profitability of optional predicates
and of class elimination.  That cost model in turn needs statistics about
the stored data; :class:`DatabaseStatistics` collects the usual ones —
extent cardinalities, per-attribute distinct-value counts and numeric
min/max — straight from an :class:`~repro.engine.storage.ObjectStore`, and
offers textbook selectivity estimates for predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..constraints.predicate import ComparisonOperator, Predicate
from ..schema.schema import Schema
from .storage import ObjectStore

#: Fallback selectivities when no statistics are available, in the spirit of
#: the classic System R defaults.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_INEQUALITY_SELECTIVITY = 0.9


@dataclass
class AttributeStatistics:
    """Statistics about a single attribute of a class extent."""

    distinct_values: int = 0
    null_count: int = 0
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    is_numeric: bool = False


@dataclass
class DatabaseStatistics:
    """Statistics for one database instance."""

    cardinalities: Dict[str, int] = field(default_factory=dict)
    attributes: Dict[Tuple[str, str], AttributeStatistics] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    @staticmethod
    def collect(schema: Schema, store: ObjectStore) -> "DatabaseStatistics":
        """Gather statistics from the current contents of ``store``."""
        stats = DatabaseStatistics()
        for class_name in schema.class_names():
            extent = store.instances(class_name)
            stats.cardinalities[class_name] = len(extent)
            cls = schema.object_class(class_name)
            for attribute in cls.value_attributes:
                values = [instance.values.get(attribute.name) for instance in extent]
                non_null = [v for v in values if v is not None]
                numeric = attribute.domain.is_numeric
                attr_stats = AttributeStatistics(
                    distinct_values=len(set(non_null)),
                    null_count=len(values) - len(non_null),
                    is_numeric=numeric,
                )
                if non_null and numeric:
                    attr_stats.minimum = min(non_null)
                    attr_stats.maximum = max(non_null)
                stats.attributes[(class_name, attribute.name)] = attr_stats
        return stats

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cardinality(self, class_name: str) -> int:
        """Extent cardinality (0 when unknown)."""
        return self.cardinalities.get(class_name, 0)

    def attribute_statistics(
        self, class_name: str, attribute_name: str
    ) -> Optional[AttributeStatistics]:
        """Statistics for ``class_name.attribute_name`` if collected."""
        return self.attributes.get((class_name, attribute_name))

    def distinct(self, class_name: str, attribute_name: str) -> Optional[int]:
        """Distinct-value count for an attribute, when known."""
        stats = self.attribute_statistics(class_name, attribute_name)
        if stats is None or stats.distinct_values == 0:
            return None
        return stats.distinct_values

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def selectivity(self, predicate: Predicate) -> float:
        """Estimate the fraction of instances satisfying ``predicate``.

        Join predicates get the usual ``1 / max(distinct_left,
        distinct_right)`` estimate; selective predicates use distinct-value
        counts for equality and min/max interpolation for ranges, falling
        back to the textbook defaults when statistics are missing.
        """
        if not predicate.is_selection:
            left = self.distinct(
                predicate.left.class_name, predicate.left.attribute_name
            )
            right_operand = predicate.right
            right = None
            if hasattr(right_operand, "class_name"):
                right = self.distinct(
                    right_operand.class_name, right_operand.attribute_name
                )
            denominator = max(left or 0, right or 0)
            if denominator <= 0:
                return DEFAULT_RANGE_SELECTIVITY
            return min(1.0, 1.0 / denominator)

        class_name = predicate.left.class_name
        attribute_name = predicate.left.attribute_name
        stats = self.attribute_statistics(class_name, attribute_name)
        operator = predicate.operator

        if operator is ComparisonOperator.EQ:
            if stats and stats.distinct_values > 0:
                return min(1.0, 1.0 / stats.distinct_values)
            return DEFAULT_EQUALITY_SELECTIVITY
        if operator is ComparisonOperator.NE:
            if stats and stats.distinct_values > 0:
                return max(0.0, 1.0 - 1.0 / stats.distinct_values)
            return DEFAULT_INEQUALITY_SELECTIVITY

        # Range operators.
        value = predicate.constant
        if (
            stats
            and stats.is_numeric
            and isinstance(value, (int, float))
            and stats.minimum is not None
            and stats.maximum is not None
            and stats.maximum > stats.minimum
        ):
            span = float(stats.maximum - stats.minimum)
            position = (float(value) - float(stats.minimum)) / span
            position = min(1.0, max(0.0, position))
            if operator in (ComparisonOperator.LT, ComparisonOperator.LE):
                return max(0.0, min(1.0, position))
            return max(0.0, min(1.0, 1.0 - position))
        return DEFAULT_RANGE_SELECTIVITY

    def combined_selectivity(self, predicates) -> float:
        """Independence-assumption product of individual selectivities."""
        result = 1.0
        for predicate in predicates:
            result *= self.selectivity(predicate)
        return result

    def estimated_matching(self, class_name: str, predicates) -> float:
        """Estimated number of instances of ``class_name`` passing ``predicates``.

        Only the predicates that reference ``class_name`` and no other class
        contribute; cross-class predicates are handled at join level.
        """
        local = [
            p
            for p in predicates
            if p.referenced_classes() == frozenset({class_name})
        ]
        return self.cardinality(class_name) * self.combined_selectivity(local)
