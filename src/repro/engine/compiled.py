"""Predicate compilation for the vectorized executor.

The row-wise executor calls :meth:`~repro.constraints.predicate.Predicate.evaluate`
once per (row, predicate): every call rebuilds a one-entry binding dict,
re-resolves both operands through mapping lookups and re-dispatches on the
operator enum.  The vectorized path instead *lowers* each predicate once per
plan into a closure specialized for its evaluation context:

* :func:`compile_for_class` — the predicate is evaluated against instances
  of one known class (scan and traverse filters).  Operand resolution,
  operator dispatch and the constant are all bound at compile time; the
  returned kernel maps a column of attribute-value mappings to a boolean
  mask in one tight loop.
* :func:`compile_for_binding` — the predicate spans the classes of a
  binding batch (cross-class :class:`~repro.engine.plan.FilterNode`
  predicates).  The kernel receives the batch's per-class columns and
  produces a mask over the rows.

The compiled kernels reproduce ``Predicate.evaluate`` semantics *exactly*:
a missing class or attribute evaluates to ``False``, and comparing values of
incompatible types under an ordering operator yields ``False`` instead of
raising.  The differential oracle (``tests/engine/test_differential_oracle``)
and the metrics-parity tests pin this equivalence.
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, List, Mapping, Sequence

from ..constraints.predicate import (
    AttributeOperand,
    ComparisonOperator,
    Predicate,
)

#: Sentinel distinguishing "attribute absent" from any stored value
#: (including ``None``); absent operands make the predicate false, exactly
#: as ``Predicate.evaluate`` treats missing attributes.
_MISSING = object()

_RAW_OPERATORS = {
    ComparisonOperator.EQ: _operator.eq,
    ComparisonOperator.NE: _operator.ne,
    ComparisonOperator.LT: _operator.lt,
    ComparisonOperator.LE: _operator.le,
    ComparisonOperator.GT: _operator.gt,
    ComparisonOperator.GE: _operator.ge,
}

#: A mask kernel over one column of attribute-value mappings.
ColumnKernel = Callable[[Sequence[Mapping[str, Any]]], List[bool]]

#: A mask kernel over the per-class columns of a binding batch.
BindingKernel = Callable[[Mapping[str, Sequence[Mapping[str, Any]]], int], List[bool]]


def _comparator(op: ComparisonOperator) -> Callable[[Any, Any], bool]:
    """An element comparator with ``Predicate.evaluate`` semantics.

    Missing operands are false; ``TypeError`` from an incompatible
    comparison is false (mirroring ``ComparisonOperator.apply``).
    """
    raw = _RAW_OPERATORS[op]

    def compare(left: Any, right: Any) -> bool:
        if left is _MISSING or right is _MISSING:
            return False
        try:
            return bool(raw(left, right))
        except TypeError:
            return False

    return compare


def _false_kernel(rows: Sequence[Mapping[str, Any]]) -> List[bool]:
    return [False] * len(rows)


def compile_for_class(predicate: Predicate, class_name: str) -> ColumnKernel:
    """Lower ``predicate`` for evaluation against instances of ``class_name``.

    Equivalent to ``predicate.evaluate({class_name: values})`` applied to
    every element of the column: a predicate mentioning any other class is
    constant-false in this context.
    """
    left = predicate.left
    if left.class_name != class_name:
        return _false_kernel
    attr = left.attribute_name
    right = predicate.right

    if isinstance(right, AttributeOperand):
        if right.class_name != class_name:
            return _false_kernel
        other = right.attribute_name
        compare = _comparator(predicate.operator)

        def attr_kernel(rows: Sequence[Mapping[str, Any]]) -> List[bool]:
            return [
                compare(r.get(attr, _MISSING), r.get(other, _MISSING))
                for r in rows
            ]

        return attr_kernel

    constant = right
    if predicate.operator is ComparisonOperator.EQ and isinstance(
        constant, (str, int, float, bool)
    ):
        # Hottest case: equality against a plain constant.  ``==`` on the
        # sentinel is identity (false) and never raises for the value types
        # the store holds, so the guard and the try/except both fold away.
        def eq_kernel(rows: Sequence[Mapping[str, Any]]) -> List[bool]:
            return [r.get(attr, _MISSING) == constant for r in rows]

        return eq_kernel

    compare = _comparator(predicate.operator)

    def const_kernel(rows: Sequence[Mapping[str, Any]]) -> List[bool]:
        return [compare(r.get(attr, _MISSING), constant) for r in rows]

    return const_kernel


def compile_for_binding(predicate: Predicate) -> BindingKernel:
    """Lower ``predicate`` for evaluation against a multi-class batch.

    The kernel receives ``columns`` mapping each bound class to a column of
    attribute-value mappings (all columns the same length ``n``) and returns
    the mask.  A class absent from the batch makes the predicate false for
    every row, as in ``Predicate.evaluate``.
    """
    left_class = predicate.left.class_name
    left_attr = predicate.left.attribute_name
    right = predicate.right
    compare = _comparator(predicate.operator)

    if isinstance(right, AttributeOperand):
        right_class = right.class_name
        right_attr = right.attribute_name

        def join_kernel(
            columns: Mapping[str, Sequence[Mapping[str, Any]]], n: int
        ) -> List[bool]:
            left_col = columns.get(left_class)
            right_col = columns.get(right_class)
            if left_col is None or right_col is None:
                return [False] * n
            return [
                compare(
                    left_col[i].get(left_attr, _MISSING),
                    right_col[i].get(right_attr, _MISSING),
                )
                for i in range(n)
            ]

        return join_kernel

    constant = right

    def selection_kernel(
        columns: Mapping[str, Sequence[Mapping[str, Any]]], n: int
    ) -> List[bool]:
        left_col = columns.get(left_class)
        if left_col is None:
            return [False] * n
        return [
            compare(left_col[i].get(left_attr, _MISSING), constant)
            for i in range(n)
        ]

    return selection_kernel
