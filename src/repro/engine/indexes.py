"""Secondary index structures over object extents.

The paper's transformation rules care about whether a predicate is an
*indexed predicate* (a predicate on an indexed attribute): index introduction
is worthwhile because it "might help in reducing the number of object
instances that need to be retrieved".  To make that saving real in our
substrate, the engine maintains actual secondary indexes over the attributes
the schema flags as indexed:

* :class:`HashIndex` — equality lookups in O(1) per matching OID.
* :class:`SortedIndex` — range lookups (<, <=, >, >=) via binary search.

:class:`IndexManager` owns one index pair per indexed attribute of a class
extent and answers lookups for predicates, reporting ``None`` when the
predicate cannot be answered from an index (not indexed, or an unsupported
operator) so the executor falls back to a scan.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from ..constraints.predicate import ComparisonOperator, Predicate
from ..schema.schema import Schema


class HashIndex:
    """Equality index: value -> list of OIDs (kept in ascending-OID order).

    Bucket order is part of the engine's determinism contract: executors
    iterate lookup results directly, and the sharded store's merged index
    view k-way-merges per-shard buckets by OID.  Keeping every bucket
    sorted makes the answer order a pure function of the stored data — an
    *update* (index delete + re-insert) cannot move an instance to the
    back of its bucket, so single-shard and sharded answers stay identical
    under the live write path.
    """

    def __init__(self) -> None:
        self._buckets: Dict[Any, List[int]] = defaultdict(list)
        self._entries = 0

    def insert(self, value: Any, oid: int) -> None:
        """Register ``oid`` under ``value`` (kept sorted by OID)."""
        insort(self._buckets[value], oid)
        self._entries += 1

    def remove(self, value: Any, oid: int) -> None:
        """Remove one registration of ``oid`` under ``value`` (if present)."""
        bucket = self._buckets.get(value)
        if bucket and oid in bucket:
            bucket.remove(oid)
            self._entries -= 1
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> List[int]:
        """OIDs of instances whose indexed attribute equals ``value``."""
        return list(self._buckets.get(value, ()))

    def distinct_values(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    def values(self) -> List[Any]:
        """The distinct indexed values themselves.

        Shard sets merge these across shards to answer global
        distinct-value questions (a value may appear in several shards).
        """
        return list(self._buckets)

    def __len__(self) -> int:
        return self._entries


class SortedIndex:
    """Ordered index supporting range lookups over comparable values."""

    def __init__(self) -> None:
        self._entries: List[Tuple[Any, int]] = []

    def insert(self, value: Any, oid: int) -> None:
        """Register ``oid`` under ``value`` keeping the entries sorted."""
        insort(self._entries, (value, oid))

    def remove(self, value: Any, oid: int) -> None:
        """Remove the entry ``(value, oid)`` if present."""
        index = bisect_left(self._entries, (value, oid))
        if index < len(self._entries) and self._entries[index] == (value, oid):
            self._entries.pop(index)

    def range_entries(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[Tuple[Any, int]]:
        """The ``(value, oid)`` entries within the requested bounds.

        Shard sets k-way-merge these per-shard slices by ``(value, oid)``
        to reproduce a single sorted index's answer order exactly.
        """
        if not self._entries:
            return []
        values = [entry[0] for entry in self._entries]
        start = 0
        end = len(self._entries)
        if low is not None:
            start = (
                bisect_left(values, low) if low_inclusive else bisect_right(values, low)
            )
        if high is not None:
            end = (
                bisect_right(values, high)
                if high_inclusive
                else bisect_left(values, high)
            )
        return self._entries[start:end]

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[int]:
        """OIDs whose value falls within the requested bounds."""
        return [
            oid
            for _value, oid in self.range_entries(
                low, high, low_inclusive, high_inclusive
            )
        ]

    def __len__(self) -> int:
        return len(self._entries)


class IndexManager:
    """All secondary indexes of one database instance.

    Indexes are created lazily for every attribute the schema marks as
    ``indexed``; only value attributes with hashable, mutually comparable
    values are supported, which covers the synthetic data generated for the
    experiments.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._hash: Dict[Tuple[str, str], HashIndex] = {}
        self._sorted: Dict[Tuple[str, str], SortedIndex] = {}
        for cls in schema.classes():
            for attribute in cls.attributes:
                if attribute.indexed and not attribute.is_pointer:
                    key = (cls.name, attribute.name)
                    self._hash[key] = HashIndex()
                    self._sorted[key] = SortedIndex()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def create(
        self, class_name: str, attribute_name: str, instances=()
    ) -> bool:
        """Create an index pair at runtime, backfilled from ``instances``.

        The runtime half of the schema's ``indexed`` flag: the tuning
        advisor creates indexes on attributes the schema never declared.
        Returns ``False`` (and changes nothing) when the pair already
        carries an index.  ``instances`` must be the current extent slice
        this manager covers, in ascending-OID order — backfilled buckets
        then satisfy the same determinism contract insert-maintained ones
        do.  Both indexes are built completely before either is installed,
        so a backfill failure (incomparable values) leaves the manager
        untouched.
        """
        key = (class_name, attribute_name)
        if key in self._hash:
            return False
        hash_index = HashIndex()
        sorted_index = SortedIndex()
        for instance in instances:
            value = instance.values.get(attribute_name)
            if value is None:
                continue
            hash_index.insert(value, instance.oid)
            sorted_index.insert(value, instance.oid)
        self._hash[key] = hash_index
        self._sorted[key] = sorted_index
        return True

    def drop(self, class_name: str, attribute_name: str) -> bool:
        """Drop the index pair for one attribute (``False`` if absent)."""
        key = (class_name, attribute_name)
        if key not in self._hash:
            return False
        del self._hash[key]
        del self._sorted[key]
        return True

    def indexed_attributes(self) -> List[Tuple[str, str]]:
        """All (class, attribute) pairs that carry an index."""
        return sorted(self._hash)

    def is_indexed(self, class_name: str, attribute_name: str) -> bool:
        """Whether an index exists for ``class_name.attribute_name``."""
        return (class_name, attribute_name) in self._hash

    def on_insert(self, class_name: str, oid: int, values: Dict[str, Any]) -> None:
        """Update indexes after an instance insert."""
        for (cls, attribute), hash_index in self._hash.items():
            if cls != class_name or attribute not in values:
                continue
            value = values[attribute]
            if value is None:
                continue
            hash_index.insert(value, oid)
            self._sorted[(cls, attribute)].insert(value, oid)

    def on_delete(self, class_name: str, oid: int, values: Dict[str, Any]) -> None:
        """Update indexes after an instance delete."""
        for (cls, attribute), hash_index in self._hash.items():
            if cls != class_name or attribute not in values:
                continue
            value = values[attribute]
            if value is None:
                continue
            hash_index.remove(value, oid)
            self._sorted[(cls, attribute)].remove(value, oid)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    #: Operators an index can answer (equality via the hash index, the
    #: others via the sorted index).
    _ANSWERABLE = (
        ComparisonOperator.EQ,
        ComparisonOperator.LT,
        ComparisonOperator.LE,
        ComparisonOperator.GT,
        ComparisonOperator.GE,
    )

    def can_answer(self, predicate: Predicate) -> bool:
        """Whether :meth:`lookup` would answer ``predicate`` (an O(1) probe).

        Executors choosing an index predicate should ask this instead of
        performing (and discarding) a full lookup per candidate predicate —
        a materialized lookup can be as large as the extent.
        """
        if not predicate.is_selection:
            return False
        key = (predicate.left.class_name, predicate.left.attribute_name)
        return key in self._hash and predicate.operator in self._ANSWERABLE

    def range_entries_for(
        self, predicate: Predicate
    ) -> Optional[List[Tuple[Any, int]]]:
        """The ``(value, oid)`` entries answering a *range* predicate.

        ``None`` for anything the sorted index does not serve (equality
        included — that is the hash index's job).  Shard sets merge these
        per-shard slices by ``(value, oid)`` so their global answer order
        matches a single sorted index's.
        """
        if not self.can_answer(predicate):
            return None
        key = (predicate.left.class_name, predicate.left.attribute_name)
        value = predicate.constant
        operator = predicate.operator
        if operator is ComparisonOperator.LT:
            return self._sorted[key].range_entries(high=value, high_inclusive=False)
        if operator is ComparisonOperator.LE:
            return self._sorted[key].range_entries(high=value, high_inclusive=True)
        if operator is ComparisonOperator.GT:
            return self._sorted[key].range_entries(low=value, low_inclusive=False)
        if operator is ComparisonOperator.GE:
            return self._sorted[key].range_entries(low=value, low_inclusive=True)
        return None

    def lookup(self, predicate: Predicate) -> Optional[List[int]]:
        """Answer a selective predicate from an index, if possible.

        Returns the list of candidate OIDs, or ``None`` when the predicate
        cannot be served by an index (join predicate, non-indexed attribute,
        or an operator the index cannot answer such as ``!=``).
        """
        if not self.can_answer(predicate):
            return None
        if predicate.operator is ComparisonOperator.EQ:
            key = (predicate.left.class_name, predicate.left.attribute_name)
            return self._hash[key].lookup(predicate.constant)
        entries = self.range_entries_for(predicate)
        return [oid for _value, oid in entries] if entries is not None else None

    def distinct_count(self, class_name: str, attribute_name: str) -> Optional[int]:
        """Distinct indexed values for an attribute, when indexed."""
        index = self._hash.get((class_name, attribute_name))
        if index is None:
            return None
        return index.distinct_values()

    def distinct_index_values(
        self, class_name: str, attribute_name: str
    ) -> Optional[List[Any]]:
        """The distinct indexed values of one attribute, when indexed.

        Sharded stores union these per-shard lists to compute a global
        distinct count, since the same value can be indexed in many shards.
        """
        index = self._hash.get((class_name, attribute_name))
        if index is None:
            return None
        return index.values()
