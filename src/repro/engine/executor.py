"""Plan execution against the object store.

The executor evaluates the plans produced by
:class:`~repro.engine.planner.ConventionalPlanner` and keeps counters of the
primitive operations performed (instances retrieved, predicates evaluated,
pointers traversed, index lookups).  Those counters are the measured cost of
a query in the Table 4.2 reproduction — the same role the relational DBMS
played in the paper's experiments, where it was used "to simulate the cost
ratios of the optimized and original queries".

Result rows carry *all* attributes of every bound class in qualified
``class.attribute`` form; the projection list is remembered on the result so
callers can view the projected answer, while the semantic-equivalence checks
can compare answers on whichever attribute set they need.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema
from .instance import ObjectInstance
from .modes import ExecutionMode
from .plan import FilterNode, PlanNode, ProjectNode, QueryPlan, ScanNode, TraverseNode
from .statistics import DatabaseStatistics, StatisticsCache
from .storage import ObjectStore


@dataclass
class ExecutionMetrics:
    """Counters of the primitive operations performed by one execution."""

    instances_retrieved: int = 0
    predicate_evaluations: int = 0
    pointer_traversals: int = 0
    index_lookups: int = 0
    rows_output: int = 0

    def merge(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        """Element-wise sum of two metric sets."""
        return ExecutionMetrics(
            instances_retrieved=self.instances_retrieved + other.instances_retrieved,
            predicate_evaluations=(
                self.predicate_evaluations + other.predicate_evaluations
            ),
            pointer_traversals=self.pointer_traversals + other.pointer_traversals,
            index_lookups=self.index_lookups + other.index_lookups,
            rows_output=self.rows_output + other.rows_output,
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, convenient for reports."""
        return {
            "instances_retrieved": self.instances_retrieved,
            "predicate_evaluations": self.predicate_evaluations,
            "pointer_traversals": self.pointer_traversals,
            "index_lookups": self.index_lookups,
            "rows_output": self.rows_output,
        }


@dataclass(frozen=True)
class ShardReport:
    """Per-shard accounting of one partition-parallel execution.

    ``elapsed`` is the wall-clock time the shard's pipeline spent inside
    its worker (excluding queueing and transport), so the spread across
    reports shows partition skew.
    """

    shard_id: int
    row_count: int
    elapsed: float
    driver_rows: int = 0


@dataclass
class ExecutionResult:
    """Rows plus metrics from executing one plan.

    ``shard_reports`` is only populated by the parallel engine when the
    plan actually fanned out (one report per non-empty shard); in-process
    executions leave it ``None``.
    """

    rows: List[Dict[str, Any]]
    metrics: ExecutionMetrics
    projections: Tuple[str, ...] = ()
    plan: Optional[QueryPlan] = None
    shard_reports: Optional[List[ShardReport]] = None

    @property
    def row_count(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def projected_rows(self) -> List[Dict[str, Any]]:
        """Rows restricted to the projection list (all attributes if empty)."""
        if not self.projections:
            return [dict(row) for row in self.rows]
        return [
            {attribute: row.get(attribute) for attribute in self.projections}
            for row in self.rows
        ]


#: A partial result during execution: class name -> bound instance.
Binding = Dict[str, ObjectInstance]


class QueryExecutor:
    """Executes query plans (or queries directly) against an object store.

    Parameters
    ----------
    schema, store:
        The database to execute against.
    join_strategy:
        ``"hash"`` (default) builds the candidate set of a traversed class
        once per traverse node, like a hash join.  ``"nested_loop"``
        re-scans (or re-probes the index of) the traversed class for every
        partial result, which models the behaviour of the simple relational
        executor the paper used to measure cost ratios — execution cost then
        grows super-linearly with database size, as it did in the paper's
        experiments, and the savings from introduced indexed predicates and
        eliminated classes are correspondingly larger.
    """

    #: The mode this executor implements (introspection/factory symmetry
    #: with :class:`~repro.engine.vectorized.VectorizedExecutor`).
    mode = ExecutionMode.ROWWISE

    def __init__(
        self,
        schema: Schema,
        store: ObjectStore,
        join_strategy: str = "hash",
        statistics_cache: Optional["StatisticsCache"] = None,
    ) -> None:
        if join_strategy not in ("hash", "nested_loop"):
            raise ValueError("join_strategy must be 'hash' or 'nested_loop'")
        self.schema = schema
        self.store = store
        self.join_strategy = join_strategy
        # Version-keyed statistics: planning reads current statistics
        # without walking the extents on every execute.  A service passes
        # its shared cache so all executors (and the batch path) reuse one
        # snapshot per store version.
        self.statistics_cache = statistics_cache or StatisticsCache(
            schema, store
        )

    def statistics(self) -> DatabaseStatistics:
        """Statistics current for the store's version (cached)."""
        return self.statistics_cache.get()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_plan(self, plan: QueryPlan) -> ExecutionResult:
        """Execute ``plan`` and return rows plus metrics."""
        metrics = ExecutionMetrics()
        bindings, projections = self._run(plan.root, metrics)
        rows = [self._binding_to_row(binding) for binding in bindings]
        metrics.rows_output = len(rows)
        return ExecutionResult(
            rows=rows, metrics=metrics, projections=projections, plan=plan
        )

    def execute(self, query: Query) -> ExecutionResult:
        """Plan and execute ``query`` in one call."""
        from .planner import ConventionalPlanner

        planner = ConventionalPlanner(self.schema, self.statistics())
        plan = planner.plan(query)
        return self.execute_plan(plan)

    # ------------------------------------------------------------------
    # Node evaluation
    # ------------------------------------------------------------------
    def _run(
        self, node: PlanNode, metrics: ExecutionMetrics
    ) -> Tuple[List[Binding], Tuple[str, ...]]:
        if isinstance(node, ScanNode):
            return self._run_scan(node, metrics), ()
        if isinstance(node, TraverseNode):
            bindings, projections = self._run(node.child, metrics)
            return self._run_traverse(node, bindings, metrics), projections
        if isinstance(node, FilterNode):
            bindings, projections = self._run(node.child, metrics)
            return self._run_filter(node, bindings, metrics), projections
        if isinstance(node, ProjectNode):
            bindings, _ = self._run(node.child, metrics)
            return bindings, node.projections
        raise TypeError(f"unknown plan node type {type(node).__name__}")

    def _candidate_instances(
        self,
        class_name: str,
        predicates: Sequence[Predicate],
        index_predicate: Optional[Predicate],
        metrics: ExecutionMetrics,
    ) -> List[ObjectInstance]:
        """Instances of ``class_name`` passing the given predicates.

        Uses the index for ``index_predicate`` when provided (or when one of
        the predicates is index-answerable) and applies the rest by
        evaluation.
        """
        remaining = list(predicates)
        instances: List[ObjectInstance]
        chosen = index_predicate
        if chosen is None:
            for predicate in remaining:
                if self.store.indexes.can_answer(predicate):
                    chosen = predicate
                    break
        if chosen is not None:
            oids = self.store.indexes.lookup(chosen)
            if oids is None:
                chosen = None
            else:
                metrics.index_lookups += 1
                instances = [
                    instance
                    for instance in (
                        self.store.get(class_name, oid) for oid in oids
                    )
                    if instance is not None
                ]
                metrics.instances_retrieved += len(instances)
                remaining = [p for p in remaining if p is not chosen]
        if chosen is None:
            instances = self.store.instances(class_name)
            metrics.instances_retrieved += len(instances)

        result = []
        for instance in instances:
            keep = True
            for predicate in remaining:
                metrics.predicate_evaluations += 1
                if not predicate.evaluate({class_name: instance.values}):
                    keep = False
                    break
            if keep:
                result.append(instance)
        return result

    def _run_scan(
        self, node: ScanNode, metrics: ExecutionMetrics
    ) -> List[Binding]:
        predicates = list(node.predicates)
        if node.index_predicate is not None:
            predicates = [node.index_predicate] + predicates
        instances = self._candidate_instances(
            node.class_name, predicates, node.index_predicate, metrics
        )
        return [{node.class_name: instance} for instance in instances]

    def _run_traverse(
        self,
        node: TraverseNode,
        bindings: List[Binding],
        metrics: ExecutionMetrics,
    ) -> List[Binding]:
        relationship = self.schema.relationship(node.relationship)
        source_class = node.source_class
        target_class = node.target_class
        source_attribute = relationship.attribute_for(source_class)
        target_attribute = relationship.attribute_for(target_class)

        if self.join_strategy == "nested_loop":
            return self._run_traverse_nested_loop(
                node, bindings, metrics, source_attribute, target_attribute
            )

        # Build the candidate set for the target class once (a hash-join
        # style build), applying the target's local predicates up front.
        candidates = self._candidate_instances(
            target_class, node.predicates, None, metrics
        )
        by_oid: Dict[int, ObjectInstance] = {c.oid: c for c in candidates}
        by_back_pointer: Dict[int, List[ObjectInstance]] = defaultdict(list)
        for candidate in candidates:
            for back in candidate.pointer_oids(target_attribute):
                by_back_pointer[back].append(candidate)

        results: List[Binding] = []
        for binding in bindings:
            source_instance = binding.get(source_class)
            if source_instance is None:
                continue
            metrics.pointer_traversals += 1
            matches: Dict[int, ObjectInstance] = {}
            for forward_oid in source_instance.pointer_oids(source_attribute):
                if forward_oid in by_oid:
                    matches[forward_oid] = by_oid[forward_oid]
            for candidate in by_back_pointer.get(source_instance.oid, ()):
                matches[candidate.oid] = candidate
            for candidate in matches.values():
                extended = dict(binding)
                extended[target_class] = candidate
                results.append(extended)
        return results

    def _run_traverse_nested_loop(
        self,
        node: TraverseNode,
        bindings: List[Binding],
        metrics: ExecutionMetrics,
        source_attribute: str,
        target_attribute: str,
    ) -> List[Binding]:
        """Nested-loop variant: re-derive the candidate set per partial result."""
        results: List[Binding] = []
        for binding in bindings:
            source_instance = binding.get(node.source_class)
            if source_instance is None:
                continue
            metrics.pointer_traversals += 1
            candidates = self._candidate_instances(
                node.target_class, node.predicates, None, metrics
            )
            forward = set(source_instance.pointer_oids(source_attribute))
            for candidate in candidates:
                linked = candidate.oid in forward or source_instance.oid in set(
                    candidate.pointer_oids(target_attribute)
                )
                if linked:
                    extended = dict(binding)
                    extended[node.target_class] = candidate
                    results.append(extended)
        return results

    def _run_filter(
        self,
        node: FilterNode,
        bindings: List[Binding],
        metrics: ExecutionMetrics,
    ) -> List[Binding]:
        results = []
        for binding in bindings:
            values = {name: instance.values for name, instance in binding.items()}
            keep = True
            for predicate in node.predicates:
                metrics.predicate_evaluations += 1
                if not predicate.evaluate(values):
                    keep = False
                    break
            if keep:
                results.append(binding)
        return results

    # ------------------------------------------------------------------
    # Row construction
    # ------------------------------------------------------------------
    @staticmethod
    def _binding_to_row(binding: Binding) -> Dict[str, Any]:
        row: Dict[str, Any] = {}
        for instance in binding.values():
            row.update(instance.qualified_values())
        return row
