"""Execution-engine substrate.

An in-memory object store with secondary indexes, database statistics, a
conventional cost model, a simple physical planner and an executor that
measures the primitive operations a query performs.  Together they play the
role the paper's relational DBMS played in its experiments: providing the
cost of executing the original and the semantically optimized query so the
two can be compared.
"""

from .instance import ObjectInstance
from .indexes import HashIndex, IndexManager, SortedIndex
from .storage import ObjectStore, ShardedObjectStore, StorageError, StoreShard
from .statistics import AttributeStatistics, DatabaseStatistics
from .modes import (
    ExecutionMode,
    create_executor,
    default_execution_mode,
    default_worker_count,
)
from .plan import (
    FilterNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    TraverseNode,
    plan_predicates,
)
from .cost_model import CostEstimate, CostModel, CostWeights
from .planner import ConventionalPlanner, PlanningError
from .executor import ExecutionMetrics, ExecutionResult, QueryExecutor, ShardReport
from .compiled import compile_for_binding, compile_for_class
from .vectorized import BindingBatch, VectorizedExecutor
from .parallel import ParallelExecutor

__all__ = [
    "AttributeStatistics",
    "BindingBatch",
    "ConventionalPlanner",
    "CostEstimate",
    "CostModel",
    "CostWeights",
    "DatabaseStatistics",
    "ExecutionMetrics",
    "ExecutionMode",
    "ExecutionResult",
    "FilterNode",
    "HashIndex",
    "IndexManager",
    "ObjectInstance",
    "ObjectStore",
    "ParallelExecutor",
    "PlanNode",
    "PlanningError",
    "ProjectNode",
    "QueryExecutor",
    "QueryPlan",
    "ScanNode",
    "ShardReport",
    "ShardedObjectStore",
    "SortedIndex",
    "StorageError",
    "StoreShard",
    "TraverseNode",
    "VectorizedExecutor",
    "compile_for_binding",
    "compile_for_class",
    "create_executor",
    "default_execution_mode",
    "default_worker_count",
    "plan_predicates",
]
