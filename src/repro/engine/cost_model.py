"""The conventional cost model.

The paper leans on "the cost model in the conventional query optimizer" in
two places: deciding whether an *optional* predicate is profitable to retain
(Section 3.4) and estimating the profitability of removing a class.  This
module provides that cost model for our substrate, plus the weights used to
convert the executor's measured counters into a single scalar cost so that
original and optimized executions can be compared as in Table 4.2.

Costs are expressed in abstract units: retrieving one instance from an
extent costs :data:`CostWeights.instance_retrieval`, evaluating one predicate
on one instance costs :data:`CostWeights.predicate_evaluation`, and so on.
The absolute values are unimportant — the Table 4.2 reproduction reports the
*ratio* of optimized to original cost — but the relative weighting (I/O two
orders of magnitude above CPU) mirrors the assumptions of the era's
optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..constraints.predicate import Predicate
from ..query.query import Query
from ..schema.schema import Schema
from .modes import ExecutionMode, resolve_execution_mode
from .statistics import DatabaseStatistics


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the primitive operations.

    The ``batch_*`` weights model the vectorized engine: a predicate lowered
    to a compiled closure costs far less per row than a re-interpreted one,
    but each predicate pays a one-off compilation charge per plan.  Measured
    counters are engine-independent (both executors perform the same
    primitive operations), so :meth:`CostModel.measured_cost` uses the
    row-wise weights regardless of mode; the batch weights only shape
    *estimates*, e.g. when a planner asks how much a plan would cost to run
    vectorized.
    """

    instance_retrieval: float = 1.0
    predicate_evaluation: float = 0.01
    pointer_traversal: float = 0.2
    index_lookup: float = 0.05
    result_construction: float = 0.05
    #: Per-row cost of one *compiled* predicate evaluation.
    batch_predicate_evaluation: float = 0.002
    #: One-off cost of lowering one predicate into a compiled closure.
    predicate_compilation: float = 0.05
    #: Per-column setup charge for batching (column extraction and masks).
    batch_column_setup: float = 0.02
    #: One-off dispatch cost per parallel worker per query (task pickling,
    #: queue round trip, driver-partition transport).
    worker_dispatch: float = 10.0
    #: Parent-side merge cost per output row of a parallel execution
    #: (rebuilding the row from shipped OID columns and position-merging).
    parallel_merge_per_row: float = 0.01


@dataclass
class CostEstimate:
    """Breakdown of an estimated query cost."""

    retrieval: float = 0.0
    cpu: float = 0.0
    traversal: float = 0.0

    @property
    def total(self) -> float:
        """Total estimated cost."""
        return self.retrieval + self.cpu + self.traversal


class CostModel:
    """Cardinality/selectivity-based cost estimation for five-part queries.

    Statistics can be **bound to a provider** (:meth:`bind_statistics`,
    typically a :class:`~repro.engine.statistics.StatisticsCache`'s ``get``)
    so every estimate reads statistics current for the store's version
    instead of whatever was collected at attach time.  Weights can be
    **swapped at runtime** (:meth:`set_weights`, the tuning calibrator's
    entry point); every swap bumps :attr:`weights_generation`, which cache
    keys fold in so results priced under old weights are not served as
    current.
    """

    def __init__(
        self,
        schema: Schema,
        statistics: DatabaseStatistics,
        weights: Optional[CostWeights] = None,
    ) -> None:
        self.schema = schema
        self._statistics = statistics
        self._statistics_provider = None
        self.weights = weights or CostWeights()
        #: Bumped by every :meth:`set_weights`; cache epochs embed it.
        self.weights_generation = 0

    @property
    def statistics(self) -> DatabaseStatistics:
        """The statistics estimates read (live when a provider is bound)."""
        if self._statistics_provider is not None:
            return self._statistics_provider()
        return self._statistics

    @statistics.setter
    def statistics(self, value: DatabaseStatistics) -> None:
        self._statistics = value
        self._statistics_provider = None

    def bind_statistics(self, provider) -> None:
        """Read statistics through ``provider()`` from now on.

        Pass a :class:`~repro.engine.statistics.StatisticsCache`'s ``get``
        so estimates always price against the store's current contents;
        pass ``None`` to fall back to the last explicitly set snapshot.
        """
        self._statistics_provider = provider

    def set_weights(self, weights: CostWeights) -> None:
        """Swap in new weights (calibration), bumping the generation."""
        self.weights = weights
        self.weights_generation += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _local_predicates(
        self, query: Query, class_name: str
    ) -> List[Predicate]:
        return [
            p
            for p in query.predicates()
            if p.referenced_classes() == frozenset({class_name})
        ]

    def _is_indexed(self, class_name: str, attribute_name: str) -> bool:
        """Whether an index scan is available for the attribute *now*.

        Prefers the statistics' live-index set (which tracks runtime index
        creation/drops) over the schema's static flags, so auto-managed
        indexes steer estimates the moment statistics refresh.
        """
        known = self.statistics.is_indexed(class_name, attribute_name)
        if known is not None:
            return known
        return self.schema.is_indexed(class_name, attribute_name)

    def _indexed_predicate(
        self, class_name: str, predicates: Sequence[Predicate]
    ) -> Optional[Predicate]:
        for predicate in predicates:
            if not predicate.is_selection:
                continue
            if self._is_indexed(class_name, predicate.left.attribute_name):
                return predicate
        return None

    def _resolve_mode(
        self, mode: Optional[Union[str, ExecutionMode]]
    ) -> ExecutionMode:
        # Estimates default to the row-wise baseline (not the process
        # default): callers compare modes explicitly, so an env var must
        # not silently change what an unqualified estimate means.
        return resolve_execution_mode(mode, default=ExecutionMode.ROWWISE)

    def _evaluation_weight(self, mode: ExecutionMode) -> float:
        """Per-row cost of one predicate evaluation under ``mode``."""
        if mode in (ExecutionMode.VECTORIZED, ExecutionMode.PARALLEL):
            return self.weights.batch_predicate_evaluation
        return self.weights.predicate_evaluation

    def _batch_setup(self, mode: ExecutionMode, predicate_count: int) -> float:
        """One-off lowering/column-extraction charge for a batched node."""
        if (
            mode not in (ExecutionMode.VECTORIZED, ExecutionMode.PARALLEL)
            or predicate_count == 0
        ):
            return 0.0
        return predicate_count * (
            self.weights.predicate_compilation + self.weights.batch_column_setup
        )

    def scan_estimate(
        self,
        class_name: str,
        predicates: Sequence[Predicate],
        mode: Optional[Union[str, ExecutionMode]] = None,
    ) -> CostEstimate:
        """Estimated cost of producing the matching instances of one class.

        When one of the predicates is on an indexed attribute, the scan is
        assumed to go through the index: only the matching fraction of the
        extent is retrieved, plus an index-lookup charge.  Otherwise a full
        extent scan retrieves every instance and evaluates every predicate
        on each.  Under the vectorized mode the per-row evaluation uses the
        (cheaper) compiled-predicate weight plus a one-off compilation and
        column-setup charge per predicate.
        """
        mode = self._resolve_mode(mode)
        cardinality = self.statistics.cardinality(class_name)
        weights = self.weights
        evaluation = self._evaluation_weight(mode)
        estimate = CostEstimate()
        indexed = self._indexed_predicate(class_name, predicates)
        if indexed is not None:
            selectivity = self.statistics.selectivity(indexed)
            matching = cardinality * selectivity
            estimate.retrieval = matching * weights.instance_retrieval
            estimate.cpu = (
                matching * max(0, len(predicates) - 1) * evaluation
                + weights.index_lookup
            )
        else:
            estimate.retrieval = cardinality * weights.instance_retrieval
            estimate.cpu = cardinality * len(predicates) * evaluation
        # The index predicate is answered by the index, never compiled, so
        # it carries no lowering charge (mirroring the executor, which
        # strips the chosen index predicate before compiling the rest).
        compiled = len(predicates) - (1 if indexed is not None else 0)
        estimate.cpu += self._batch_setup(mode, compiled)
        return estimate

    def matching_instances(
        self, class_name: str, predicates: Sequence[Predicate]
    ) -> float:
        """Estimated number of instances of ``class_name`` passing ``predicates``."""
        return self.statistics.estimated_matching(class_name, predicates)

    # ------------------------------------------------------------------
    # Query-level estimation
    # ------------------------------------------------------------------
    def driver_class(self, query: Query) -> str:
        """The class a conventional planner would scan first.

        The driver is the class with the fewest estimated matching instances
        after applying its local predicates, with indexed access breaking
        ties in its favour.
        """
        def sort_key(class_name: str) -> Tuple[float, float, str]:
            local = self._local_predicates(query, class_name)
            matching = self.matching_instances(class_name, local)
            indexed = self._indexed_predicate(class_name, local)
            return (matching, 0.0 if indexed is not None else 1.0, class_name)

        return min(query.classes, key=sort_key)

    def estimate_query(
        self,
        query: Query,
        mode: Optional[Union[str, ExecutionMode]] = None,
        workers: Optional[int] = None,
    ) -> CostEstimate:
        """Estimate the execution cost of ``query``.

        The estimate mimics the executor's strategy: scan the driver class,
        then traverse the query's relationships to bind the remaining
        classes, carrying forward the estimated number of partial results
        and charging retrieval for every instance touched along the way.
        ``mode`` selects the engine being estimated: the vectorized engine
        touches the same instances and pointers but pays the compiled
        (batch) rate per predicate evaluation, and the parallel engine
        additionally spreads everything past the driver scan over
        ``workers`` partitions (``None`` = the process default worker
        count) while paying dispatch and merge overheads — the estimate is
        *wall-clock-shaped*, so on small extents the overhead dominates and
        the model correctly predicts that fan-out is not worth it.
        """
        mode = self._resolve_mode(mode)
        weights = self.weights
        evaluation = self._evaluation_weight(mode)
        driver = self.driver_class(query)
        driver_predicates = self._local_predicates(query, driver)
        driver_scan = self.scan_estimate(driver, driver_predicates, mode)
        # Everything after the driver scan is accumulated separately: in
        # parallel mode those parts run partitioned across the workers.
        distributed = CostEstimate()

        bound = {driver}
        current_rows = max(
            1.0, self.matching_instances(driver, driver_predicates)
        )
        remaining = [name for name in query.classes if name != driver]
        relationships = [self.schema.relationship(r) for r in query.relationships]

        progress = True
        while remaining and progress:
            progress = False
            for class_name in list(remaining):
                connecting = [
                    rel
                    for rel in relationships
                    if rel.involves(class_name) and rel.other(class_name) in bound
                ]
                if not connecting:
                    continue
                local = self._local_predicates(query, class_name)
                selectivity = self.statistics.combined_selectivity(local)
                # The executor builds the candidate set of the traversed
                # class once (an index scan when one of its predicates is on
                # an indexed attribute, a full extent scan otherwise) and
                # then follows one pointer per partial result.
                scan = self.scan_estimate(class_name, local, mode)
                distributed.retrieval += scan.retrieval
                distributed.cpu += scan.cpu
                distributed.traversal += current_rows * weights.pointer_traversal
                current_rows = max(1.0, current_rows * selectivity)
                bound.add(class_name)
                remaining.remove(class_name)
                progress = True

        # Disconnected classes (should not occur for path queries): charge a
        # full scan and a cross filter.
        for class_name in remaining:
            local = self._local_predicates(query, class_name)
            scan = self.scan_estimate(class_name, local, mode)
            distributed.retrieval += scan.retrieval
            distributed.cpu += scan.cpu
            current_rows = max(
                1.0, current_rows * self.matching_instances(class_name, local)
            )

        # Cross-class predicates evaluated on the joined rows.
        cross = [
            p
            for p in query.predicates()
            if len(p.referenced_classes()) > 1
        ]
        distributed.cpu += current_rows * len(cross) * evaluation
        distributed.cpu += self._batch_setup(mode, len(cross))
        construction = current_rows * weights.result_construction

        estimate = CostEstimate()
        if mode is ExecutionMode.PARALLEL:
            from .modes import resolve_worker_count

            width = max(1, resolve_worker_count(workers))
            estimate.retrieval = (
                driver_scan.retrieval + distributed.retrieval / width
            )
            estimate.traversal = distributed.traversal / width
            # The driver scan, the final materialization and the merge all
            # run in the parent; dispatch is paid once per worker.
            estimate.cpu = (
                driver_scan.cpu
                + distributed.cpu / width
                + construction
                + current_rows * weights.parallel_merge_per_row
                + width * weights.worker_dispatch
            )
        else:
            estimate.retrieval = driver_scan.retrieval + distributed.retrieval
            estimate.traversal = distributed.traversal
            estimate.cpu = driver_scan.cpu + distributed.cpu + construction
        return estimate

    def estimate_query_cost(
        self,
        query: Query,
        mode: Optional[Union[str, ExecutionMode]] = None,
        workers: Optional[int] = None,
    ) -> float:
        """Scalar convenience wrapper around :meth:`estimate_query`."""
        return self.estimate_query(query, mode, workers=workers).total

    def vectorization_speedup(self, query: Query) -> float:
        """Estimated rowwise/vectorized cost ratio for ``query`` (>= 0)."""
        vectorized = self.estimate_query_cost(query, ExecutionMode.VECTORIZED)
        if vectorized <= 0:
            return 1.0
        return self.estimate_query_cost(query, ExecutionMode.ROWWISE) / vectorized

    def parallelization_speedup(
        self, query: Query, workers: Optional[int] = None
    ) -> float:
        """Estimated vectorized/parallel cost ratio at ``workers`` width.

        Values above 1 predict that fanning the query out pays for its
        dispatch and merge overheads; small extents land below 1, which is
        the model's way of telling the executor to stay in-process.
        """
        parallel = self.estimate_query_cost(
            query, ExecutionMode.PARALLEL, workers=workers
        )
        if parallel <= 0:
            return 1.0
        return (
            self.estimate_query_cost(query, ExecutionMode.VECTORIZED) / parallel
        )

    # ------------------------------------------------------------------
    # Measured cost
    # ------------------------------------------------------------------
    def measured_cost(self, metrics: "ExecutionMetrics") -> float:
        """Convert executor counters into a scalar cost.

        Defined here (rather than on the metrics object) so that both the
        estimated and measured costs share one set of weights.
        """
        weights = self.weights
        return (
            metrics.instances_retrieved * weights.instance_retrieval
            + metrics.predicate_evaluations * weights.predicate_evaluation
            + metrics.pointer_traversals * weights.pointer_traversal
            + metrics.index_lookups * weights.index_lookup
            + metrics.rows_output * weights.result_construction
        )
