"""The in-memory object store.

The store keeps one extent (list of instances) per object class and
maintains the secondary indexes declared by the schema.  It is the
"database" side of our substrate: the data generator fills it, the executor
reads from it, the validator checks it against the semantic constraints, and
the dynamic-rule deriver learns from it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..schema.schema import Schema
from .indexes import IndexManager
from .instance import ObjectInstance


class StorageError(Exception):
    """Raised on inconsistent store operations."""


class ObjectStore:
    """Extents of object instances plus their secondary indexes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._extents: Dict[str, List[ObjectInstance]] = {
            name: [] for name in schema.class_names()
        }
        self._by_oid: Dict[str, Dict[int, ObjectInstance]] = {
            name: {} for name in schema.class_names()
        }
        self._next_oid: Dict[str, int] = {name: 1 for name in schema.class_names()}
        self._version = 0
        self.indexes = IndexManager(schema)

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped by every insert/update/delete.

        Derived caches (e.g. the vectorized executor's pointer and
        row-fragment caches) key on this to invalidate when the store
        changes between executions.
        """
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, class_name: str, values: Mapping[str, Any]) -> ObjectInstance:
        """Insert a new instance of ``class_name`` and return it.

        Attribute names are validated against the schema; unknown attributes
        raise :class:`StorageError` so data-generation bugs surface early.
        """
        if class_name not in self._extents:
            raise StorageError(f"unknown object class {class_name!r}")
        cls = self.schema.object_class(class_name)
        for attribute_name in values:
            if not cls.has_attribute(attribute_name):
                raise StorageError(
                    f"class {class_name!r} has no attribute {attribute_name!r}"
                )
        oid = self._next_oid[class_name]
        self._next_oid[class_name] += 1
        self._version += 1
        instance = ObjectInstance(class_name, oid, dict(values))
        self._extents[class_name].append(instance)
        self._by_oid[class_name][oid] = instance
        self.indexes.on_insert(class_name, oid, instance.values)
        return instance

    def insert_many(
        self, class_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[ObjectInstance]:
        """Insert several instances of ``class_name``."""
        return [self.insert(class_name, row) for row in rows]

    def delete(self, class_name: str, oid: int) -> None:
        """Remove an instance (used by failure-injection tests)."""
        instance = self._by_oid.get(class_name, {}).pop(oid, None)
        if instance is None:
            raise StorageError(f"no instance {class_name}#{oid}")
        self._extents[class_name].remove(instance)
        self._version += 1
        self.indexes.on_delete(class_name, oid, instance.values)

    def update(
        self, class_name: str, oid: int, values: Mapping[str, Any]
    ) -> ObjectInstance:
        """Update attribute values of an existing instance."""
        instance = self.get(class_name, oid)
        if instance is None:
            raise StorageError(f"no instance {class_name}#{oid}")
        self.indexes.on_delete(class_name, oid, instance.values)
        instance.values.update(values)
        self._version += 1
        self.indexes.on_insert(class_name, oid, instance.values)
        return instance

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def has_class(self, class_name: str) -> bool:
        """Whether the store has an extent for ``class_name``."""
        return class_name in self._extents

    def instances(self, class_name: str) -> List[ObjectInstance]:
        """The full extent of ``class_name`` (a copy of the list)."""
        if class_name not in self._extents:
            raise StorageError(f"unknown object class {class_name!r}")
        return list(self._extents[class_name])

    def get(self, class_name: str, oid: int) -> Optional[ObjectInstance]:
        """The instance ``class_name#oid`` or ``None``."""
        return self._by_oid.get(class_name, {}).get(oid)

    def count(self, class_name: str) -> int:
        """Cardinality of the class extent."""
        if class_name not in self._extents:
            raise StorageError(f"unknown object class {class_name!r}")
        return len(self._extents[class_name])

    def counts(self) -> Dict[str, int]:
        """Cardinality of every class extent."""
        return {name: len(extent) for name, extent in self._extents.items()}

    def total_instances(self) -> int:
        """Total number of instances across all extents."""
        return sum(len(extent) for extent in self._extents.values())

    # ------------------------------------------------------------------
    # Relationship traversal
    # ------------------------------------------------------------------
    def dereference(
        self, instance: ObjectInstance, pointer_attribute: str, target_class: str
    ) -> Optional[ObjectInstance]:
        """Follow a pointer attribute to its target instance."""
        oid = instance.pointer(pointer_attribute)
        if oid is None:
            return None
        return self.get(target_class, oid)

    def referrers(
        self, target: ObjectInstance, source_class: str, pointer_attribute: str
    ) -> List[ObjectInstance]:
        """All instances of ``source_class`` whose pointer references ``target``.

        This is the reverse traversal of a relationship and requires a scan
        of the source extent; the executor accounts for that cost.
        """
        return [
            instance
            for instance in self._extents.get(source_class, [])
            if instance.values.get(pointer_attribute) == target.oid
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = ", ".join(
            f"{name}:{len(extent)}" for name, extent in self._extents.items()
        )
        return f"ObjectStore({summary})"
