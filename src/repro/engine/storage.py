"""The in-memory object store, hash-partitioned into shards.

The store keeps one extent (list of instances) per object class and
maintains the secondary indexes declared by the schema.  It is the
"database" side of our substrate: the data generator fills it, the executor
reads from it, the validator checks it against the semantic constraints, and
the dynamic-rule deriver learns from it.

Storage is organised as a *shard set*: a :class:`ShardedObjectStore` routes
every instance to one of ``shard_count`` :class:`StoreShard` partitions by
hashing its OID (``oid % shard_count``).  Each shard owns its slice of every
class extent plus its own :class:`~repro.engine.indexes.IndexManager` and
its own monotonic version counter, which is what lets the parallel executor
run per-shard pipelines with per-shard cache invalidation.  The store still
answers every global question (``instances``, ``get``, ``indexes.lookup``)
through a deterministic merged view — per-shard extents preserve global
insertion order restricted to the shard, and OIDs are assigned in one global
sequence, so merging shards by ascending OID reproduces a single extent
exactly.  :class:`ObjectStore` (the name the rest of the system grew up
with) is simply the ``shard_count=1`` case, where the merged view *is* the
only shard and no merging ever happens.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import merge as _heap_merge
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..constraints.predicate import ComparisonOperator, Predicate
from ..schema.attribute import DomainType
from ..schema.schema import Schema
from .indexes import IndexManager
from .instance import ObjectInstance

#: Default number of mutation records the store's journal retains.
DEFAULT_JOURNAL_LIMIT = 512

#: Journaled index lifecycle ops (``values`` carries the attribute name).
#: They ride the same journal/WAL/replication path as data mutations, so
#: forked parallel workers, replicas and crash recovery all converge on the
#: same live index set.  Consumers that only care about row changes (e.g.
#: subscription delta classification) skip them by op.
INDEX_OPS = ("create_index", "drop_index")

#: Row-changing journal ops (everything that is not index lifecycle).
DATA_OPS = ("insert", "update", "delete")


class StorageError(Exception):
    """Raised on inconsistent store operations."""


@dataclass(frozen=True)
class MutationRecord:
    """One journaled store mutation.

    ``seq`` is the store's global version *after* the mutation was applied,
    so a replica at version ``v`` catches up by applying every record with
    ``seq > v`` in order.  ``values`` carries the inserted attribute values
    (``op == "insert"``) or the applied update delta (``op == "update"``);
    deletes carry ``None``.  Index lifecycle ops (``create_index`` /
    ``drop_index``) carry ``oid == 0`` (no instance is involved) and
    ``values == {"attribute": name}``.
    """

    seq: int
    op: str
    class_name: str
    oid: int
    values: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the write-ahead log's frame payload).

        ``values`` is passed through as-is — its key order is preserved by
        JSON round-trips, which keeps replayed instances (and therefore
        result-row key order) byte-identical to the originals.
        """
        return {
            "seq": self.seq,
            "op": self.op,
            "class": self.class_name,
            "oid": self.oid,
            "values": self.values,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MutationRecord":
        """Rebuild a record from :meth:`as_dict` output (WAL replay).

        Raises :class:`StorageError` on a structurally invalid payload so a
        corrupted-but-parseable frame is reported, never half-applied.
        """
        seq = payload.get("seq")
        op = payload.get("op")
        class_name = payload.get("class")
        oid = payload.get("oid")
        values = payload.get("values")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            raise StorageError(f"mutation record has invalid seq {seq!r}")
        if op not in DATA_OPS + INDEX_OPS:
            raise StorageError(f"mutation record has unknown op {op!r}")
        if not isinstance(class_name, str) or not class_name:
            raise StorageError("mutation record has no class name")
        if op in INDEX_OPS:
            if oid != 0:
                raise StorageError(
                    f"index record must carry oid 0, got {oid!r}"
                )
            if not isinstance(values, dict) or not isinstance(
                values.get("attribute"), str
            ):
                raise StorageError(
                    "index record values must name an 'attribute'"
                )
            return cls(seq, op, class_name, oid, values)
        if not isinstance(oid, int) or isinstance(oid, bool) or oid < 1:
            raise StorageError(f"mutation record has invalid oid {oid!r}")
        if values is not None and not isinstance(values, dict):
            raise StorageError("mutation record values must be an object")
        return cls(seq, op, class_name, oid, values)


class StoreShard:
    """One partition of a sharded store.

    A shard is a miniature object store: per-class extent slices (in global
    insertion order restricted to this shard), an OID map, its own secondary
    :class:`~repro.engine.indexes.IndexManager` and its own version counter.
    Mutation routing and OID assignment live on the owning
    :class:`ShardedObjectStore`; the shard only maintains its local state.
    """

    __slots__ = ("shard_id", "schema", "extents", "by_oid", "indexes", "version")

    def __init__(self, schema: Schema, shard_id: int) -> None:
        self.shard_id = shard_id
        self.schema = schema
        self.extents: Dict[str, List[ObjectInstance]] = {
            name: [] for name in schema.class_names()
        }
        self.by_oid: Dict[str, Dict[int, ObjectInstance]] = {
            name: {} for name in schema.class_names()
        }
        self.indexes = IndexManager(schema)
        self.version = 0

    # ------------------------------------------------------------------
    # Local mutation (called by the owning store, which routes by OID)
    # ------------------------------------------------------------------
    def insert(self, instance: ObjectInstance) -> None:
        """Register a freshly created instance in this shard."""
        self.extents[instance.class_name].append(instance)
        self.by_oid[instance.class_name][instance.oid] = instance
        self.indexes.on_insert(instance.class_name, instance.oid, instance.values)
        self.version += 1

    def delete(self, class_name: str, oid: int) -> ObjectInstance:
        """Remove ``class_name#oid`` from this shard and return it."""
        instance = self.by_oid.get(class_name, {}).pop(oid, None)
        if instance is None:
            raise StorageError(f"no instance {class_name}#{oid}")
        self.extents[class_name].remove(instance)
        self.indexes.on_delete(class_name, oid, instance.values)
        self.version += 1
        return instance

    def update(
        self, class_name: str, oid: int, values: Mapping[str, Any]
    ) -> ObjectInstance:
        """Update attribute values of an instance living in this shard."""
        instance = self.by_oid.get(class_name, {}).get(oid)
        if instance is None:
            raise StorageError(f"no instance {class_name}#{oid}")
        self.indexes.on_delete(class_name, oid, instance.values)
        instance.values.update(values)
        self.indexes.on_insert(class_name, oid, instance.values)
        self.version += 1
        return instance

    def rebuild_indexes(self, index_overrides: Optional[Dict] = None) -> None:
        """Rebuild this shard's secondary indexes from its extents.

        ``index_overrides`` maps ``(class, attribute)`` to ``True`` (a
        runtime-created index to re-create) or ``False`` (a dropped
        schema index to leave absent), so a rebuild preserves the store's
        live index set instead of resetting it to the schema baseline.
        """
        self.indexes = IndexManager(self.schema)
        for (class_name, attribute_name), present in sorted(
            (index_overrides or {}).items()
        ):
            if present:
                self.indexes.create(class_name, attribute_name)
            else:
                self.indexes.drop(class_name, attribute_name)
        for class_name, extent in self.extents.items():
            for instance in extent:
                self.indexes.on_insert(class_name, instance.oid, instance.values)
        self.version += 1

    def count(self, class_name: str) -> int:
        """Number of instances of ``class_name`` stored in this shard."""
        return len(self.extents.get(class_name, ()))


class _ShardedIndexView:
    """Read-only index facade merging per-shard secondary indexes.

    Exposes the :class:`~repro.engine.indexes.IndexManager` query surface
    over a shard set.  Equality and range lookups fan out to every shard and
    merge the per-shard OID lists into one deterministic global order:
    ascending OID for hash lookups, ``(value, oid)`` order for range
    lookups — the same orders a single-shard index produces for data that
    entered the store through inserts (per-shard buckets are then already
    sorted, so the merge is a cheap k-way heap merge).
    """

    def __init__(self, store: "ShardedObjectStore") -> None:
        self._store = store

    def indexed_attributes(self) -> List[Tuple[str, str]]:
        """All (class, attribute) pairs that carry an index."""
        return self._store.shards[0].indexes.indexed_attributes()

    def is_indexed(self, class_name: str, attribute_name: str) -> bool:
        """Whether an index exists for ``class_name.attribute_name``."""
        return self._store.shards[0].indexes.is_indexed(class_name, attribute_name)

    def can_answer(self, predicate: Predicate) -> bool:
        """Whether :meth:`lookup` would answer ``predicate`` (an O(1) probe)."""
        return self._store.shards[0].indexes.can_answer(predicate)

    def lookup(self, predicate: Predicate) -> Optional[List[int]]:
        """Merged candidate OIDs for ``predicate`` (``None`` if unanswerable).

        Equality lookups merge the per-shard hash buckets in ascending-OID
        order (the order an insert-populated single bucket has); range
        lookups merge the per-shard ``(value, oid)`` slices by that pair,
        which *is* the single sorted index's answer order — so candidate
        (and therefore row) ordering is identical for every shard count.
        """
        if not self.can_answer(predicate):
            return None
        shards = self._store.shards
        if predicate.operator is ComparisonOperator.EQ:
            # Hash buckets are maintained in ascending-OID order (the
            # HashIndex determinism contract), so the per-shard answers
            # feed the k-way merge directly.
            return list(
                _heap_merge(*(shard.indexes.lookup(predicate) for shard in shards))
            )
        merged = _heap_merge(
            *(shard.indexes.range_entries_for(predicate) for shard in shards)
        )
        return [oid for _value, oid in merged]

    def distinct_count(self, class_name: str, attribute_name: str) -> Optional[int]:
        """Distinct indexed values for an attribute across all shards."""
        distinct: set = set()
        for shard in self._store.shards:
            values = shard.indexes.distinct_index_values(class_name, attribute_name)
            if values is None:
                return None
            distinct.update(values)
        return len(distinct)


class ShardedObjectStore:
    """Extents of object instances, hash-partitioned across shards.

    ``shard_count=1`` (the :class:`ObjectStore` default) keeps the single
    extent-per-class layout every earlier layer assumed; larger counts route
    each instance to shard ``oid % shard_count`` while preserving the exact
    global semantics through merged views.  OIDs are assigned from one
    global per-class sequence regardless of the shard count, so the same
    insertion stream produces the same instances — and the same global
    ordering — for any sharding:

    >>> from repro.schema import build_example_schema
    >>> store = ShardedObjectStore(build_example_schema(), shard_count=3)
    >>> oids = [store.insert("supplier", {"name": f"S{i}"}).oid for i in range(5)]
    >>> [store.shard_of(oid) for oid in oids]
    [1, 2, 0, 1, 2]
    >>> [i.oid for i in store.instances("supplier")]  # merged view, OID order
    [1, 2, 3, 4, 5]
    >>> store.count("supplier"), store.shard_count
    (5, 3)
    >>> before = store.version
    >>> _ = store.insert("supplier", {"name": "S5"})
    >>> store.version > before  # mutation counter feeds derived caches
    True
    """

    def __init__(
        self,
        schema: Schema,
        shard_count: int = 1,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> None:
        if shard_count < 1:
            raise StorageError(f"shard_count must be >= 1, got {shard_count}")
        self.schema = schema
        self.shards: List[StoreShard] = [
            StoreShard(schema, shard_id) for shard_id in range(shard_count)
        ]
        self._next_oid: Dict[str, int] = {name: 1 for name in schema.class_names()}
        # Domains of the indexed value attributes per class: writes validate
        # these value *types* up front, so a malformed value can never blow
        # up inside index maintenance after extent state already changed.
        self._indexed_domains: Dict[str, Dict[str, DomainType]] = {
            cls.name: {
                attribute.name: attribute.domain
                for attribute in cls.attributes
                if attribute.indexed and not attribute.is_pointer
            }
            for cls in schema.classes()
        }
        # Merged per-class views (extent list, OID map), rebuilt lazily when
        # any shard's version moves; for one shard they alias shard state.
        self._merged_version = -1
        self._merged_extents: Dict[str, List[ObjectInstance]] = {}
        self._merged_oid_maps: Dict[str, Dict[int, ObjectInstance]] = {}
        self._index_view = _ShardedIndexView(self) if shard_count > 1 else None
        # Runtime index lifecycle (the tuning advisor's lever), applied on
        # top of the schema baseline: (class, attribute) -> True means a
        # runtime-created index, False a dropped schema-declared one.
        # Rebuilds, snapshots and restores preserve these overrides.
        self._index_overrides: Dict[Tuple[str, str], bool] = {}
        # Bounded mutation journal: lets forked replicas (the parallel
        # engine's live workers) catch up by replaying the delta instead of
        # being re-forked wholesale.  ``_journal_floor`` is exclusive: the
        # journal can bridge a replica at any version >= the floor.  An
        # index rebuild (un-journaled in-place repairs) raises the floor
        # *above* the post-rebuild version, so even a replica whose version
        # numerically equals ours cannot claim to have observed the repairs.
        self.journal_limit = max(0, journal_limit)
        self._journal: Deque[MutationRecord] = deque()
        self._journal_floor = 0
        # Optional durability hook: every journaled mutation is also handed
        # to the sink (the write-ahead log).  Suppressed during journal
        # replay — a replica catching up replays mutations the primary
        # already logged, and forked workers inherit the sink but must
        # never append to the parent's log files.
        self._mutation_sink = None
        self._suppress_sink = False

    @property
    def indexes(self):
        """The global secondary-index surface.

        For a single shard this is that shard's
        :class:`~repro.engine.indexes.IndexManager` itself (resolved live,
        so index rebuilds are never observed through a stale alias); for a
        shard set it is the merging :class:`_ShardedIndexView`.
        """
        if self._index_view is not None:
            return self._index_view
        return self.shards[0].indexes

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of hash partitions."""
        return len(self.shards)

    def shard_of(self, oid: int) -> int:
        """The shard an instance with ``oid`` lives in (hash partitioning)."""
        return oid % len(self.shards)

    def shard_versions(self) -> Tuple[int, ...]:
        """Per-shard mutation counters (cache keys for per-shard state)."""
        return tuple(shard.version for shard in self.shards)

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped by every insert/update/delete.

        Derived caches (e.g. the vectorized executor's pointer and
        row-fragment caches, the parallel executor's forked worker pool)
        key on this to invalidate when the store changes between
        executions.  It is the sum of the per-shard counters, so any
        shard-local mutation moves it.
        """
        return sum(shard.version for shard in self.shards)

    def instances_in_shard(self, class_name: str, shard_id: int) -> List[ObjectInstance]:
        """The slice of a class extent stored in one shard (a copy)."""
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        return list(self.shards[shard_id].extents[class_name])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, class_name: str, values: Mapping[str, Any]) -> ObjectInstance:
        """Insert a new instance of ``class_name`` and return it.

        Attribute names are validated against the schema; unknown attributes
        raise :class:`StorageError` so data-generation bugs surface early.
        """
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        self._validate_values(class_name, values)
        oid = self._next_oid[class_name]
        self._next_oid[class_name] += 1
        instance = ObjectInstance(class_name, oid, dict(values))
        self.shards[self.shard_of(oid)].insert(instance)
        self._record("insert", class_name, oid, dict(values))
        return instance

    def _validate_values(self, class_name: str, values: Mapping[str, Any]) -> None:
        """Reject unknown attributes and wrong-typed indexed values up front.

        Index maintenance requires every value of one indexed attribute to
        be mutually comparable (sorted-index inserts compare values).  The
        check runs before *any* state changes, so a malformed write is a
        clean :class:`StorageError` — never a half-applied mutation that
        left the extent and the indexes disagreeing.
        """
        cls = self.schema.object_class(class_name)
        indexed = self._indexed_domains[class_name]
        for attribute_name, value in values.items():
            if not cls.has_attribute(attribute_name):
                raise StorageError(
                    f"class {class_name!r} has no attribute {attribute_name!r}"
                )
            domain = indexed.get(attribute_name)
            if domain is None or value is None:
                continue
            if domain is DomainType.STRING and not isinstance(value, str):
                raise StorageError(
                    f"indexed attribute {class_name}.{attribute_name} expects "
                    f"a string, got {type(value).__name__}"
                )
            if domain.is_numeric and not isinstance(value, (int, float)):
                raise StorageError(
                    f"indexed attribute {class_name}.{attribute_name} expects "
                    f"a number, got {type(value).__name__}"
                )

    def insert_many(
        self, class_name: str, rows: Iterable[Mapping[str, Any]]
    ) -> List[ObjectInstance]:
        """Insert several instances of ``class_name``."""
        return [self.insert(class_name, row) for row in rows]

    def delete(self, class_name: str, oid: int) -> None:
        """Remove an instance (reachable through the service's write path)."""
        if class_name not in self._next_oid:
            raise StorageError(f"no instance {class_name}#{oid}")
        self.shards[self.shard_of(oid)].delete(class_name, oid)
        self._record("delete", class_name, oid, None)

    def update(
        self, class_name: str, oid: int, values: Mapping[str, Any]
    ) -> ObjectInstance:
        """Update attribute values of an existing instance.

        Attribute names are validated against the schema (like
        :meth:`insert`) so a malformed write surfaces as a
        :class:`StorageError` before any state changes.
        """
        if class_name not in self._next_oid:
            raise StorageError(f"no instance {class_name}#{oid}")
        self._validate_values(class_name, values)
        instance = self.shards[self.shard_of(oid)].update(class_name, oid, values)
        self._record("update", class_name, oid, dict(values))
        return instance

    # ------------------------------------------------------------------
    # Index lifecycle (runtime create/drop, journaled)
    # ------------------------------------------------------------------
    def index_overrides(self) -> Dict[Tuple[str, str], bool]:
        """The live deviations from the schema's index baseline (a copy).

        ``True`` marks a runtime-created index, ``False`` a dropped
        schema-declared one.  Empty when the live index set equals the
        schema's.
        """
        return dict(self._index_overrides)

    def _index_attribute(self, class_name: str, attribute_name: str):
        """Resolve and validate the target attribute of an index op."""
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        cls = self.schema.object_class(class_name)
        attribute = next(
            (a for a in cls.attributes if a.name == attribute_name), None
        )
        if attribute is None:
            raise StorageError(
                f"class {class_name!r} has no attribute {attribute_name!r}"
            )
        if attribute.is_pointer:
            raise StorageError(
                f"cannot index pointer attribute {class_name}.{attribute_name}"
            )
        return attribute

    def _set_index_state(self, class_name: str, attribute, present: bool) -> None:
        """Apply one index create/drop to every shard plus the bookkeeping."""
        key = (class_name, attribute.name)
        for shard in self.shards:
            if present:
                # Per-shard extent slices are in ascending-OID order, so the
                # backfilled buckets satisfy the HashIndex determinism
                # contract exactly like insert-maintained ones.
                shard.indexes.create(
                    class_name, attribute.name, shard.extents[class_name]
                )
            else:
                shard.indexes.drop(class_name, attribute.name)
        if present:
            self._indexed_domains[class_name][attribute.name] = attribute.domain
        else:
            self._indexed_domains[class_name].pop(attribute.name, None)
        baseline = attribute.indexed and not attribute.is_pointer
        if present == baseline:
            self._index_overrides.pop(key, None)
        else:
            self._index_overrides[key] = present

    def create_index(self, class_name: str, attribute_name: str) -> bool:
        """Create a secondary index on a value attribute at runtime.

        Backfills from the stored extents, journals a ``create_index``
        record (so replicas, forked parallel workers and crash recovery
        converge on the same index set) and returns ``True``.  A no-op —
        the index already exists — returns ``False`` *without journaling*,
        so replayers never see a record whose application would not
        advance their version.

        The journal/WAL seq-density invariant: every journaled record must
        move the global version by exactly one (recovery replays only a
        contiguous seq prefix).  Index state changed on *every* shard, but
        only shard 0's counter is bumped — the global version is the shard
        sum, and a per-shard bump would open a seq gap.  That is safe
        because per-shard version keys only guard *data-derived* caches
        (pointer lists, row fragments), which an index change cannot
        invalidate; everything access-path-dependent keys on the global
        version, which does move.
        """
        attribute = self._index_attribute(class_name, attribute_name)
        if self.indexes.is_indexed(class_name, attribute_name):
            return False
        # Validate every stored value against the attribute's domain before
        # any shard changes: sorted-index backfill compares values, and a
        # mixed-type extent must surface as a clean StorageError, never a
        # half-installed index.
        domain = attribute.domain
        for shard in self.shards:
            for instance in shard.extents[class_name]:
                value = instance.values.get(attribute_name)
                if value is None:
                    continue
                if domain is DomainType.STRING and not isinstance(value, str):
                    raise StorageError(
                        f"cannot index {class_name}.{attribute_name}: stored "
                        f"value {value!r} is not a string"
                    )
                if domain.is_numeric and not isinstance(value, (int, float)):
                    raise StorageError(
                        f"cannot index {class_name}.{attribute_name}: stored "
                        f"value {value!r} is not a number"
                    )
        self._set_index_state(class_name, attribute, True)
        self.shards[0].version += 1
        self._record("create_index", class_name, 0, {"attribute": attribute_name})
        return True

    def drop_index(self, class_name: str, attribute_name: str) -> bool:
        """Drop a live secondary index (schema-declared or runtime-created).

        Journals a ``drop_index`` record with the same one-version-bump
        discipline as :meth:`create_index`; returns ``False`` without
        journaling when no index exists.
        """
        attribute = self._index_attribute(class_name, attribute_name)
        if not self.indexes.is_indexed(class_name, attribute_name):
            return False
        self._set_index_state(class_name, attribute, False)
        self.shards[0].version += 1
        self._record("drop_index", class_name, 0, {"attribute": attribute_name})
        return True

    def rebuild_indexes(self) -> None:
        """Rebuild every shard's secondary indexes from the stored extents.

        Used after bulk in-place value repairs that bypass :meth:`update`
        (the constraint-enforcing data generator does this).  Because the
        repaired values were never journaled, the journal cannot bridge a
        replica across a rebuild: it is truncated and its floor raised so
        :meth:`journal_since` reports the gap and replicas re-snapshot.

        The floor is raised to ``version + 1`` — *exclusive* of the
        post-rebuild version.  A replica whose version numerically equals
        ours may have reached it through a different history (it never saw
        the un-journaled repairs), so exactly-at-version catch-up requests
        must report the gap too, not an empty delta.
        """
        for shard in self.shards:
            shard.rebuild_indexes(self._index_overrides)
        self._journal.clear()
        self._journal_floor = self.version + 1

    # ------------------------------------------------------------------
    # Mutation journal
    # ------------------------------------------------------------------
    def set_mutation_sink(self, sink) -> None:
        """Install (or clear, with ``None``) the durability sink.

        The sink is called with every :class:`MutationRecord` produced by a
        direct mutation, in application order, while the mutation's caller
        still holds whatever lock serialized the write — the write-ahead
        log appends under the service's exclusive store lock.  Journal
        *replay* (:meth:`apply_journal`) never feeds the sink: replayed
        records were already logged by the store that produced them.
        """
        self._mutation_sink = sink

    @property
    def mutation_sink(self):
        """The installed sink, or ``None``.

        Exposed so a replicating server can tee an already-installed
        durability sink with a replication feed
        (:class:`~repro.durability.tee.SinkTee`) instead of silently
        replacing it.
        """
        return self._mutation_sink

    @property
    def journal_floor(self) -> int:
        """The lowest version :meth:`journal_since` can still bridge from.

        Applied-version accounting for replication: a follower whose
        acked version sits below this floor cannot tail and must take a
        full snapshot resync.
        """
        return self._journal_floor

    def _record(
        self, op: str, class_name: str, oid: int, values: Optional[Dict[str, Any]]
    ) -> None:
        record = MutationRecord(self.version, op, class_name, oid, values)
        if self._mutation_sink is not None and not self._suppress_sink:
            self._mutation_sink(record)
        if self.journal_limit == 0:
            self._journal_floor = self.version
            return
        self._journal.append(record)
        while len(self._journal) > self.journal_limit:
            self._journal_floor = self._journal.popleft().seq

    def journal_since(self, version: int) -> Optional[List[MutationRecord]]:
        """The mutations a replica at ``version`` must replay to catch up.

        Returns ``None`` when the journal cannot bridge the replica's
        version and it must re-snapshot instead:

        * ``version > self.version`` — the replica is *ahead* of this
          store.  After a crash that lost un-fsynced WAL tail frames, a
          recovered primary can be behind a replica that applied the lost
          writes; reporting ``[]`` here would let that replica silently
          keep rows the primary no longer has.
        * ``version`` below the journal floor — bounded retention dropped
          the records in between.
        * ``version`` below the (exclusive) floor an index rebuild raised
          after un-journaled in-place repairs — including a replica whose
          version numerically equals the post-rebuild version.
        """
        if version > self.version:
            return None
        if version < self._journal_floor:
            return None
        if version == self.version:
            return []
        return [record for record in self._journal if record.seq > version]

    def apply_journal(self, records: Sequence[MutationRecord]) -> int:
        """Replay journal ``records`` into this store (replica catch-up).

        Records at or below the current version are skipped, so replaying
        an overlapping batch is idempotent.  Version counters advance
        exactly as they did on the journaling store, which keeps every
        version-keyed cache invalidation equivalent on both sides.
        """
        applied = 0
        # Replayed records never reach the durability sink: the store that
        # produced them already logged them, and a forked worker replaying
        # its catch-up delta must not append to the parent's WAL files.
        self._suppress_sink = True
        try:
            for record in records:
                if record.seq <= self.version:
                    continue
                if record.op == "insert":
                    self._restore(
                        record.class_name, record.oid, dict(record.values or {})
                    )
                elif record.op == "update":
                    self.update(record.class_name, record.oid, record.values or {})
                elif record.op == "delete":
                    self.delete(record.class_name, record.oid)
                elif record.op in INDEX_OPS:
                    attribute = (record.values or {}).get("attribute", "")
                    changed = (
                        self.create_index(record.class_name, attribute)
                        if record.op == "create_index"
                        else self.drop_index(record.class_name, attribute)
                    )
                    if not changed:
                        # The op advanced the journaling store's version; a
                        # no-op here would leave this replica permanently
                        # one version behind — that is divergence, not a
                        # skippable duplicate (those were filtered by seq).
                        raise StorageError(
                            f"replayed {record.op} of "
                            f"{record.class_name}.{attribute} was a no-op; "
                            "index state diverged from the journaling store"
                        )
                else:  # pragma: no cover - future-proofing
                    raise StorageError(f"unknown journal op {record.op!r}")
                applied += 1
        finally:
            self._suppress_sink = False
        return applied

    def _restore(self, class_name: str, oid: int, values: Dict[str, Any]) -> None:
        """Insert an instance under a journal-dictated OID (replay only)."""
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        instance = ObjectInstance(class_name, oid, values)
        self.shards[self.shard_of(oid)].insert(instance)
        if oid >= self._next_oid[class_name]:
            self._next_oid[class_name] = oid + 1
        self._record("insert", class_name, oid, dict(values))

    # ------------------------------------------------------------------
    # Snapshot serialization (durability)
    # ------------------------------------------------------------------
    def snapshot_header(self) -> Dict[str, Any]:
        """The counters a snapshot must persist beside the rows.

        ``shard_versions`` and ``next_oid`` are what makes recovery *exact*:
        a store rebuilt by re-inserting rows would advance its version
        counters differently, and version-keyed caches (executors, forked
        worker pools) would diverge from an uninterrupted run.
        """
        header = {
            "shard_count": self.shard_count,
            "version": self.version,
            "shard_versions": list(self.shard_versions()),
            "next_oid": dict(self._next_oid),
        }
        if self._index_overrides:
            header["index_overrides"] = [
                [class_name, attribute_name, present]
                for (class_name, attribute_name), present in sorted(
                    self._index_overrides.items()
                )
            ]
        return header

    def snapshot_rows(self) -> Iterable[Tuple[str, int, Dict[str, Any]]]:
        """Every stored instance as ``(class_name, oid, values)``.

        Classes are emitted in sorted-name order and instances in global
        OID order, so two snapshots of equal stores are byte-identical.
        ``values`` is the live dict — callers serialize, they must not
        mutate.
        """
        for class_name in sorted(self._next_oid):
            for instance in self.instances(class_name):
                yield class_name, instance.oid, instance.values

    @classmethod
    def restore(
        cls,
        schema: Schema,
        header: Mapping[str, Any],
        rows: Iterable[Tuple[str, int, Mapping[str, Any]]],
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> "ShardedObjectStore":
        """Rebuild a store from :meth:`snapshot_header` + :meth:`snapshot_rows`.

        Restores extents, secondary indexes, OID allocation *and the exact
        per-shard version counters* of the snapshotted store.  The journal
        floor is set to the restored version: nothing before the snapshot
        is journaled, so only replicas at (or beyond, via
        :meth:`apply_journal`) the snapshot version can be bridged.
        """
        shard_count = header.get("shard_count")
        if not isinstance(shard_count, int) or shard_count < 1:
            raise StorageError(f"snapshot has invalid shard_count {shard_count!r}")
        store = cls(schema, shard_count=shard_count, journal_limit=journal_limit)
        # Apply index overrides before the rows land, so per-shard insert
        # maintenance covers runtime-created indexes (and skips dropped
        # ones) exactly as it did on the snapshotted store.
        for entry in header.get("index_overrides") or []:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 3
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], str)
                or not isinstance(entry[2], bool)
            ):
                raise StorageError(
                    f"snapshot has invalid index override {entry!r}"
                )
            class_name, attribute_name, present = entry
            attribute = store._index_attribute(class_name, attribute_name)
            store._set_index_state(class_name, attribute, present)
        for class_name, oid, values in rows:
            if class_name not in store._next_oid:
                raise StorageError(
                    f"snapshot row references unknown class {class_name!r}"
                )
            if not isinstance(oid, int) or isinstance(oid, bool) or oid < 1:
                raise StorageError(f"snapshot row has invalid oid {oid!r}")
            instance = ObjectInstance(class_name, oid, dict(values))
            store.shards[store.shard_of(oid)].insert(instance)
        shard_versions = header.get("shard_versions")
        if (
            not isinstance(shard_versions, (list, tuple))
            or len(shard_versions) != shard_count
            or not all(isinstance(v, int) and v >= 0 for v in shard_versions)
        ):
            raise StorageError("snapshot has invalid shard_versions")
        for shard, version in zip(store.shards, shard_versions):
            shard.version = version
        next_oid = header.get("next_oid") or {}
        for class_name, value in next_oid.items():
            if class_name in store._next_oid and isinstance(value, int):
                store._next_oid[class_name] = max(
                    store._next_oid[class_name], value
                )
        store._journal_floor = store.version
        return store

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    def _sync_merged(self) -> None:
        version = self.version
        if version == self._merged_version:
            return
        if len(self.shards) == 1:
            shard = self.shards[0]
            self._merged_extents = shard.extents
            self._merged_oid_maps = shard.by_oid
        else:
            # Each shard's extent slice is in ascending-OID order (OIDs are
            # assigned from one global ascending sequence and appended), so
            # a k-way merge by OID reproduces the global insertion order.
            self._merged_extents = {}
            self._merged_oid_maps = {}
            for class_name in self._next_oid:
                merged = list(
                    _heap_merge(
                        *(shard.extents[class_name] for shard in self.shards),
                        key=lambda instance: instance.oid,
                    )
                )
                self._merged_extents[class_name] = merged
                self._merged_oid_maps[class_name] = {
                    instance.oid: instance for instance in merged
                }
        self._merged_version = version

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def has_class(self, class_name: str) -> bool:
        """Whether the store has an extent for ``class_name``."""
        return class_name in self._next_oid

    def instances(self, class_name: str) -> List[ObjectInstance]:
        """The full extent of ``class_name`` (a copy, in global OID order)."""
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        self._sync_merged()
        return list(self._merged_extents[class_name])

    def oid_index(self, class_name: str) -> Mapping[int, ObjectInstance]:
        """A read-only OID -> instance mapping over the whole class extent.

        The mapping is shared and version-cached; callers must not mutate
        it.  Executors use it for bulk OID resolution (index scans, merging
        per-shard results) without paying a per-instance ``get`` call.
        """
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        self._sync_merged()
        return self._merged_oid_maps[class_name]

    def get(self, class_name: str, oid: int) -> Optional[ObjectInstance]:
        """The instance ``class_name#oid`` or ``None``."""
        if class_name not in self._next_oid:
            return None
        shard = self.shards[self.shard_of(oid)]
        return shard.by_oid[class_name].get(oid)

    def count(self, class_name: str) -> int:
        """Cardinality of the class extent."""
        if class_name not in self._next_oid:
            raise StorageError(f"unknown object class {class_name!r}")
        return sum(shard.count(class_name) for shard in self.shards)

    def counts(self) -> Dict[str, int]:
        """Cardinality of every class extent."""
        return {name: self.count(name) for name in self._next_oid}

    def total_instances(self) -> int:
        """Total number of instances across all extents."""
        return sum(self.count(name) for name in self._next_oid)

    # ------------------------------------------------------------------
    # Relationship traversal
    # ------------------------------------------------------------------
    def dereference(
        self, instance: ObjectInstance, pointer_attribute: str, target_class: str
    ) -> Optional[ObjectInstance]:
        """Follow a pointer attribute to its target instance."""
        oid = instance.pointer(pointer_attribute)
        if oid is None:
            return None
        return self.get(target_class, oid)

    def referrers(
        self, target: ObjectInstance, source_class: str, pointer_attribute: str
    ) -> List[ObjectInstance]:
        """All instances of ``source_class`` whose pointer references ``target``.

        This is the reverse traversal of a relationship and requires a scan
        of the source extent; the executor accounts for that cost.
        """
        if source_class not in self._next_oid:
            return []
        return [
            instance
            for instance in self.instances(source_class)
            if instance.values.get(pointer_attribute) == target.oid
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        summary = ", ".join(
            f"{name}:{count}" for name, count in self.counts().items()
        )
        return f"{type(self).__name__}({summary}, shards={self.shard_count})"


class ObjectStore(ShardedObjectStore):
    """The historical single-store entry point: a one-shard shard set.

    Kept as the default constructor the data generator, fixtures and most
    callers use; pass ``shard_count`` to get a partitioned store for the
    parallel execution path.
    """
