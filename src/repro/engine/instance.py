"""Object instances stored in the database.

An :class:`ObjectInstance` is one object of an object class: an OID plus a
mapping from attribute name to value.  Pointer attributes hold the OID of the
referenced instance (or ``None``), mirroring how the paper's OODB implements
relationships through pointer attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional


@dataclass
class ObjectInstance:
    """A single stored object.

    Parameters
    ----------
    class_name:
        The object class this instance belongs to.
    oid:
        Object identifier, unique within the class extent.
    values:
        Attribute name -> value.  Pointer attributes store the target OID.
    """

    class_name: str
    oid: int
    values: Dict[str, Any] = field(default_factory=dict)

    def get(self, attribute_name: str, default: Any = None) -> Any:
        """Value of ``attribute_name`` (or ``default`` when absent)."""
        return self.values.get(attribute_name, default)

    def pointer(self, attribute_name: str) -> Optional[int]:
        """The OID stored in a single-valued pointer attribute.

        Returns ``None`` when the pointer is unset; for multi-valued
        pointers the first OID is returned (use :meth:`pointer_oids` to get
        them all).
        """
        oids = self.pointer_oids(attribute_name)
        return oids[0] if oids else None

    def pointer_oids(self, attribute_name: str) -> List[int]:
        """All OIDs stored in a pointer attribute.

        Pointer attributes may hold a single OID (one-to-one links) or a
        list/tuple of OIDs (one-to-many links); both forms are normalized to
        a list here.
        """
        value = self.values.get(attribute_name)
        if value is None:
            return []
        if isinstance(value, int):
            return [value]
        if isinstance(value, (list, tuple)):
            result = []
            for item in value:
                if not isinstance(item, int):
                    raise TypeError(
                        f"pointer attribute {self.class_name}.{attribute_name} "
                        f"holds a non-OID value {item!r}"
                    )
                result.append(item)
            return result
        raise TypeError(
            f"pointer attribute {self.class_name}.{attribute_name} holds a "
            f"non-OID value {value!r}"
        )

    def matches(self, attribute_values: Mapping[str, Any]) -> bool:
        """Whether every (attribute, value) pair in the mapping is satisfied."""
        return all(
            self.values.get(name) == value for name, value in attribute_values.items()
        )

    def qualified_values(self) -> Dict[str, Any]:
        """Values keyed by ``class.attribute`` notation, used for result rows."""
        return {
            f"{self.class_name}.{name}": value for name, value in self.values.items()
        }

    def copy(self) -> "ObjectInstance":
        """A shallow copy with an independent values dictionary."""
        return ObjectInstance(self.class_name, self.oid, dict(self.values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.class_name}#{self.oid}"
