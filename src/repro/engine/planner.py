"""The conventional (physical) query planner.

The semantic optimizer of the paper sits *in front of* a conventional
optimizer: once the transformed query is formulated, a conventional planner
decides access methods and traversal order.  This module is that planner for
our substrate.  It is deliberately simple — the point of the reproduction is
the semantic optimizer, not a state-of-the-art physical optimizer — but it
makes the decisions that give semantic transformations their payoff:

* pick the *driver class* with the fewest estimated matching instances,
* use an index scan when a selective predicate falls on an indexed
  attribute (this is what makes *index introduction* profitable),
* bind the remaining classes by traversing the query's relationships from
  already-bound classes (pointer joins),
* evaluate single-class predicates as early as possible and cross-class
  predicates once both sides are bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..constraints.predicate import Predicate
from ..query.query import Query, QueryError
from ..schema.schema import Schema
from .cost_model import CostModel
from .modes import ExecutionMode, resolve_execution_mode
from .plan import FilterNode, PlanNode, ProjectNode, QueryPlan, ScanNode, TraverseNode
from .statistics import DatabaseStatistics


class PlanningError(QueryError):
    """Raised when no valid plan can be produced for a query."""


class ConventionalPlanner:
    """Builds a :class:`~repro.engine.plan.QueryPlan` for a five-part query.

    ``execution_mode`` selects which engine the emitted plans target
    (row-wise interpretation, vectorized batches, or partition-parallel
    batches).  The plan *shape* is deliberately identical in every mode —
    each executor accepts any plan, and metric parity between the engines
    depends on it — so the mode is purely recorded on the plan (and in its
    notes) for executor factories and traces.  The left-deep chains this
    planner emits always satisfy the partition contract
    (:meth:`~repro.engine.plan.QueryPlan.partition_leaf`), which is what
    lets the parallel engine split the driver scan without changing the
    plan shape.  The default is the process default (``REPRO_ENGINE`` env
    var, else rowwise).
    """

    def __init__(
        self,
        schema: Schema,
        statistics: DatabaseStatistics,
        cost_model: Optional[CostModel] = None,
        execution_mode: Optional[Union[str, ExecutionMode]] = None,
    ) -> None:
        self.schema = schema
        self.statistics = statistics
        self.cost_model = cost_model or CostModel(schema, statistics)
        self.execution_mode = resolve_execution_mode(execution_mode)

    # ------------------------------------------------------------------
    # Predicate partitioning
    # ------------------------------------------------------------------
    @staticmethod
    def _partition_predicates(
        query: Query,
    ) -> Tuple[Dict[str, List[Predicate]], List[Predicate]]:
        """Split predicates into per-class lists and cross-class leftovers."""
        local: Dict[str, List[Predicate]] = {name: [] for name in query.classes}
        cross: List[Predicate] = []
        for predicate in query.predicates():
            classes = predicate.referenced_classes()
            if len(classes) == 1:
                (class_name,) = classes
                if class_name in local:
                    local[class_name].append(predicate)
                else:
                    cross.append(predicate)
            else:
                cross.append(predicate)
        return local, cross

    def _is_indexed(self, class_name: str, attribute_name: str) -> bool:
        """Live index availability: statistics first, schema as fallback.

        Statistics collected from a store carry the store's *current*
        index set, so runtime-created indexes attract index scans (and
        dropped ones stop doing so) without any schema change.
        """
        known = self.statistics.is_indexed(class_name, attribute_name)
        if known is not None:
            return known
        return self.schema.is_indexed(class_name, attribute_name)

    def _index_predicate(
        self, class_name: str, predicates: Sequence[Predicate]
    ) -> Optional[Predicate]:
        """Pick the most selective indexed predicate for an index scan."""
        candidates = [
            p
            for p in predicates
            if p.is_selection
            and self._is_indexed(class_name, p.left.attribute_name)
        ]
        if not candidates:
            return None
        return min(candidates, key=self.statistics.selectivity)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> QueryPlan:
        """Produce a plan for ``query``.

        Raises
        ------
        PlanningError
            When the query's classes cannot all be connected through the
            query's relationships (the executor does not implement cartesian
            products because path queries never need them).
        """
        query.validate(self.schema)
        local, cross = self._partition_predicates(query)
        notes: List[str] = []

        driver = self.cost_model.driver_class(query)
        driver_predicates = list(local[driver])
        index_predicate = self._index_predicate(driver, driver_predicates)
        if index_predicate is not None:
            driver_predicates = [
                p for p in driver_predicates if p is not index_predicate
            ]
            notes.append(f"index scan on {driver} via {index_predicate}")

        node: PlanNode = ScanNode(
            class_name=driver,
            predicates=tuple(driver_predicates),
            index_predicate=index_predicate,
        )
        bound: Set[str] = {driver}
        order: List[str] = [driver]
        remaining = [name for name in query.classes if name != driver]
        relationships = [self.schema.relationship(r) for r in query.relationships]

        progress = True
        while remaining and progress:
            progress = False
            # Prefer the reachable class with the fewest matching instances so
            # intermediate results shrink as early as possible.
            reachable: List[Tuple[float, str]] = []
            for class_name in remaining:
                connecting = [
                    rel
                    for rel in relationships
                    if rel.involves(class_name) and rel.other(class_name) in bound
                ]
                if connecting:
                    estimate = self.cost_model.matching_instances(
                        class_name, local[class_name]
                    )
                    reachable.append((estimate, class_name))
            if not reachable:
                break
            reachable.sort()
            _, class_name = reachable[0]
            rel = next(
                rel
                for rel in relationships
                if rel.involves(class_name) and rel.other(class_name) in bound
            )
            source_class = rel.other(class_name)
            forward = rel.attribute_for(source_class) is not None
            node = TraverseNode(
                child=node,
                relationship=rel.name,
                source_class=source_class,
                target_class=class_name,
                pointer_attribute=rel.attribute_for(source_class),
                forward=True,
                predicates=tuple(local[class_name]),
            )
            bound.add(class_name)
            order.append(class_name)
            remaining.remove(class_name)
            progress = True

        if remaining:
            raise PlanningError(
                f"classes {remaining!r} cannot be reached through the query's "
                f"relationships {list(query.relationships)!r}"
            )

        if cross:
            node = FilterNode(child=node, predicates=tuple(cross))
        node = ProjectNode(child=node, projections=tuple(query.projections))
        if self.execution_mode is ExecutionMode.VECTORIZED:
            notes.append("vectorized batch execution")
        elif self.execution_mode is ExecutionMode.PARALLEL:
            notes.append(
                f"parallel partitioned execution (driver {driver} "
                "hash-partitioned by OID)"
            )
        return QueryPlan(
            root=node,
            class_order=tuple(order),
            notes=notes,
            execution_mode=self.execution_mode,
        )
