"""Execution-mode selection for the execution engine.

The engine has three execution paths over the same plans and the same
(sharded) :class:`~repro.engine.storage.ObjectStore`:

* ``rowwise`` — the original interpreting executor
  (:class:`~repro.engine.executor.QueryExecutor`): plans are walked binding
  by binding and every predicate is re-interpreted per row.
* ``vectorized`` — the batch executor
  (:class:`~repro.engine.vectorized.VectorizedExecutor`): instances move
  through the plan in column-oriented batches and every predicate is lowered
  once per plan into a compiled closure (:mod:`repro.engine.compiled`).
* ``parallel`` — the partition-parallel executor
  (:class:`~repro.engine.parallel.ParallelExecutor`): the driver scan is
  hash-partitioned by OID and per-shard vectorized pipelines run on a
  worker pool, with rows and metrics merged deterministically.

All paths report the *same* :class:`~repro.engine.executor.ExecutionMetrics`
counters for the same plan — the differential oracle and the metrics-parity
tests enforce this — so experiment tables are engine-independent and the
mode is purely a throughput choice.

The process-wide default mode can be set with the ``REPRO_ENGINE``
environment variable (``rowwise``, ``vectorized`` or ``parallel``), which is
how the CI matrix runs the whole suite under every engine.  The parallel
engine's worker-pool width defaults from ``REPRO_WORKERS`` (falling back to
the machine's core count, capped at :data:`MAX_DEFAULT_WORKERS`).
"""

from __future__ import annotations

import enum
import os
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schema.schema import Schema
    from .storage import ObjectStore

#: Environment variable consulted for the process-wide default mode.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Environment variable consulted for the parallel engine's worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Upper bound on the worker count chosen automatically from the core
#: count; explicit ``REPRO_WORKERS`` / ``workers=`` values may exceed it.
MAX_DEFAULT_WORKERS = 4


class ExecutionMode(enum.Enum):
    """Which execution path evaluates query plans."""

    ROWWISE = "rowwise"
    VECTORIZED = "vectorized"
    PARALLEL = "parallel"

    @classmethod
    def parse(cls, value: Union[str, "ExecutionMode"]) -> "ExecutionMode":
        """Coerce a mode name (CLI flag, env var) to an :class:`ExecutionMode`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            choices = ", ".join(mode.value for mode in cls)
            raise ValueError(
                f"unknown execution mode {value!r} (choose from: {choices})"
            ) from None


def default_execution_mode() -> ExecutionMode:
    """The process-wide default mode (``REPRO_ENGINE`` env var, else rowwise)."""
    value = os.environ.get(ENGINE_ENV_VAR)
    if not value:
        return ExecutionMode.ROWWISE
    return ExecutionMode.parse(value)


def resolve_execution_mode(
    value: Optional[Union[str, ExecutionMode]],
    default: Optional[ExecutionMode] = None,
) -> ExecutionMode:
    """Resolve a caller-supplied mode value to an :class:`ExecutionMode`.

    ``None`` falls back to ``default`` when given (e.g. the cost model's
    fixed row-wise baseline), else to the process default; anything else is
    parsed.  The single place mode-resolution policy lives — every layer
    (executor factory, planner, cost model, service) routes through it.
    """
    if value is None:
        return default if default is not None else default_execution_mode()
    return ExecutionMode.parse(value)


def default_worker_count() -> int:
    """The default parallel worker count.

    ``REPRO_WORKERS`` wins when set; otherwise the machine's core count,
    capped at :data:`MAX_DEFAULT_WORKERS`.  On a single-core machine this
    resolves to ``1``, which makes the parallel engine execute in-process —
    fan-out cannot help without cores to fan out to.
    """
    value = os.environ.get(WORKERS_ENV_VAR)
    if value:
        return resolve_worker_count(value)
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def resolve_worker_count(value: Optional[Union[int, str]]) -> int:
    """Resolve a caller-supplied worker count (``None`` = process default)."""
    if value is None:
        return default_worker_count()
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"worker count must be an integer, got {value!r}") from None
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def create_executor(
    schema: "Schema",
    store: "ObjectStore",
    mode: Optional[Union[str, ExecutionMode]] = None,
    join_strategy: str = "hash",
    workers: Optional[int] = None,
    min_partition_rows: Optional[int] = None,
    statistics_cache=None,
):
    """Build the executor implementing ``mode`` (default: the env default).

    Returns a :class:`~repro.engine.executor.QueryExecutor`, a
    :class:`~repro.engine.vectorized.VectorizedExecutor` or a
    :class:`~repro.engine.parallel.ParallelExecutor`; all expose the same
    ``execute``/``execute_plan`` API and produce identical results and
    metrics, so callers can treat the return value uniformly.  ``workers``
    only applies to the parallel engine (``None`` = ``REPRO_WORKERS`` env
    var, else the core count capped at :data:`MAX_DEFAULT_WORKERS`).

    >>> from repro.engine.storage import ObjectStore
    >>> from repro.schema import build_example_schema
    >>> schema = build_example_schema()
    >>> executor = create_executor(schema, ObjectStore(schema), mode="vectorized")
    >>> executor.mode.value
    'vectorized'
    >>> create_executor(schema, ObjectStore(schema), mode="warp")
    Traceback (most recent call last):
        ...
    ValueError: unknown execution mode 'warp' (choose from: rowwise, vectorized, parallel)
    """
    resolved = resolve_execution_mode(mode)
    if resolved is ExecutionMode.PARALLEL:
        from .parallel import DEFAULT_MIN_PARTITION_ROWS, ParallelExecutor

        return ParallelExecutor(
            schema,
            store,
            join_strategy=join_strategy,
            workers=workers,
            min_partition_rows=(
                min_partition_rows
                if min_partition_rows is not None
                else DEFAULT_MIN_PARTITION_ROWS
            ),
            statistics_cache=statistics_cache,
        )
    if resolved is ExecutionMode.VECTORIZED:
        from .vectorized import VectorizedExecutor

        return VectorizedExecutor(
            schema,
            store,
            join_strategy=join_strategy,
            statistics_cache=statistics_cache,
        )
    from .executor import QueryExecutor

    return QueryExecutor(
        schema, store, join_strategy=join_strategy, statistics_cache=statistics_cache
    )
