"""Physical plan trees.

The conventional optimizer of the substrate produces small left-deep plans
made of four node types:

* :class:`ScanNode` — read an object-class extent, optionally through an
  index on one of its selective predicates, applying the remaining
  single-class predicates as filters.
* :class:`TraverseNode` — follow a relationship from the instances produced
  by the child plan to the instances of a neighbouring class (a pointer
  join), applying that class's single-class predicates on the way.
* :class:`FilterNode` — apply cross-class predicates (joins introduced by
  constraints, or explicit join predicates) once both sides are bound.
* :class:`ProjectNode` — keep only the projected attributes.

Plans are pure descriptions; evaluation lives in
:mod:`repro.engine.executor` and cost prediction in
:mod:`repro.engine.cost_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..constraints.predicate import Predicate
from .modes import ExecutionMode


def _predicate_columns(predicates: Sequence[Predicate]) -> Tuple[str, ...]:
    """Qualified attributes referenced by ``predicates``, deduplicated."""
    seen = dict.fromkeys(
        operand.qualified_name
        for predicate in predicates
        for operand in predicate.referenced_attributes()
    )
    return tuple(seen)


@dataclass
class PlanNode:
    """Base class for plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child nodes (empty for leaves)."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A human-readable, indented description of the plan subtree."""
        raise NotImplementedError

    def walk(self):
        """Yield this node and, recursively, every descendant."""
        yield self
        for child in self.children():
            yield from child.walk()

    def required_columns(self) -> Tuple[str, ...]:
        """Qualified attributes this node reads (its batch contract).

        The vectorized executor moves data in per-class columns; this
        declares which columns the node's predicates (or pointers or
        projections) touch.  It is introspection surface — callers that
        pre-extract columns, size batches, or audit plans read it; the
        planner/executor tests pin it.
        """
        return ()

    def partition_safe(self) -> bool:
        """Whether this node distributes over a partition of its input rows.

        A node is partition-safe when executing it independently on any
        disjoint split of its child's output — with whole-store access for
        lookups and join builds — and concatenating the per-partition
        outputs (in input order) yields exactly the single-partition
        output.  Traversals, filters and projections qualify: each output
        row is a function of one input row and shared store state.  The
        scan contract is different (it *produces* the partitioning), so
        scans report ``False`` and plans expose the scan through
        :meth:`QueryPlan.partition_leaf` instead.
        """
        return False


@dataclass
class ScanNode(PlanNode):
    """Scan one object class, optionally via an index."""

    class_name: str
    predicates: Tuple[Predicate, ...] = ()
    index_predicate: Optional[Predicate] = None

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        access = (
            f"IndexScan({self.index_predicate})"
            if self.index_predicate is not None
            else "Scan"
        )
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        return f"{pad}{access} {self.class_name} [filters: {filters}]"

    def required_columns(self) -> Tuple[str, ...]:
        predicates = list(self.predicates)
        if self.index_predicate is not None:
            predicates.append(self.index_predicate)
        return _predicate_columns(predicates)

    def partition_safe(self) -> bool:
        """Scans *produce* the partitioning rather than distributing over
        one, so they sit under :meth:`QueryPlan.partition_leaf`, never
        inside a partition-safe suffix."""
        return False


@dataclass
class TraverseNode(PlanNode):
    """Traverse a relationship from the child plan's bound class."""

    child: PlanNode
    relationship: str
    source_class: str
    target_class: str
    pointer_attribute: str
    forward: bool
    predicates: Tuple[Predicate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        direction = "->" if self.forward else "<-"
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        lines = [
            f"{pad}Traverse {self.relationship} {self.source_class} {direction} "
            f"{self.target_class} [filters: {filters}]",
            self.child.explain(indent + 1),
        ]
        return "\n".join(lines)

    def required_columns(self) -> Tuple[str, ...]:
        columns = [f"{self.source_class}.{self.pointer_attribute}"]
        columns.extend(_predicate_columns(self.predicates))
        return tuple(dict.fromkeys(columns))

    def partition_safe(self) -> bool:
        """Joins distribute over source-row partitions (build is shared)."""
        return True


@dataclass
class FilterNode(PlanNode):
    """Apply predicates that span more than one bound class."""

    child: PlanNode
    predicates: Tuple[Predicate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        return "\n".join(
            [f"{pad}Filter [{filters}]", self.child.explain(indent + 1)]
        )

    def required_columns(self) -> Tuple[str, ...]:
        return _predicate_columns(self.predicates)

    def partition_safe(self) -> bool:
        """Cross-class filters are per-row decisions and distribute freely."""
        return True


@dataclass
class ProjectNode(PlanNode):
    """Project result rows onto the requested attributes."""

    child: PlanNode
    projections: Tuple[str, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = ", ".join(self.projections) or "*"
        return "\n".join(
            [f"{pad}Project [{attrs}]", self.child.explain(indent + 1)]
        )

    def required_columns(self) -> Tuple[str, ...]:
        return tuple(self.projections)

    def partition_safe(self) -> bool:
        """Projection keeps rows intact; it distributes trivially."""
        return True


@dataclass
class QueryPlan:
    """A complete plan: the root node plus bookkeeping for explain output.

    ``execution_mode`` records which engine the planner targeted.  Plans are
    engine-agnostic descriptions — either executor accepts any plan — so the
    mode is advisory: it tells :func:`~repro.engine.modes.create_executor`
    callers and traces which path produced a measurement.
    """

    root: PlanNode
    class_order: Tuple[str, ...] = ()
    notes: List[str] = field(default_factory=list)
    execution_mode: ExecutionMode = ExecutionMode.ROWWISE

    def explain(self) -> str:
        """Multi-line explain output."""
        lines = [self.root.explain()]
        if self.notes:
            lines.append("notes: " + "; ".join(self.notes))
        return "\n".join(lines)

    def scan_nodes(self) -> List[ScanNode]:
        """All scan leaves of the plan."""
        return [node for node in self.root.walk() if isinstance(node, ScanNode)]

    def traverse_nodes(self) -> List[TraverseNode]:
        """All traversal nodes of the plan."""
        return [node for node in self.root.walk() if isinstance(node, TraverseNode)]

    def uses_index(self) -> bool:
        """Whether any scan in the plan goes through an index."""
        return any(node.index_predicate is not None for node in self.scan_nodes())

    def required_columns(self) -> Tuple[str, ...]:
        """Every column any node of the plan reads, deduplicated."""
        seen = dict.fromkeys(
            column
            for node in self.root.walk()
            for column in node.required_columns()
        )
        return tuple(seen)

    def partition_leaf(self) -> Optional[ScanNode]:
        """The scan whose output may be hash-partitioned across shards.

        This is the plan's partition contract: when the plan is a single
        left-deep chain whose every interior node is
        :meth:`~PlanNode.partition_safe`, the leaf scan's output can be
        split by driver OID, the remaining nodes executed per partition,
        and the per-partition outputs merged back in driver order to
        reproduce the sequential result exactly.  Returns ``None`` when no
        such contract holds (bushy plan, or an unsafe interior node), which
        tells the parallel executor to stay in-process.
        """
        node: PlanNode = self.root
        while True:
            children = node.children()
            if not children:
                return node if isinstance(node, ScanNode) else None
            if len(children) > 1 or not node.partition_safe():
                return None
            node = children[0]


def plan_predicates(plan: QueryPlan) -> List[Predicate]:
    """All predicates applied anywhere in ``plan`` (for tests and traces)."""
    predicates: List[Predicate] = []
    for node in plan.root.walk():
        if isinstance(node, ScanNode):
            predicates.extend(node.predicates)
            if node.index_predicate is not None:
                predicates.append(node.index_predicate)
        elif isinstance(node, (TraverseNode, FilterNode)):
            predicates.extend(node.predicates)
    return predicates
