"""Physical plan trees.

The conventional optimizer of the substrate produces small left-deep plans
made of four node types:

* :class:`ScanNode` — read an object-class extent, optionally through an
  index on one of its selective predicates, applying the remaining
  single-class predicates as filters.
* :class:`TraverseNode` — follow a relationship from the instances produced
  by the child plan to the instances of a neighbouring class (a pointer
  join), applying that class's single-class predicates on the way.
* :class:`FilterNode` — apply cross-class predicates (joins introduced by
  constraints, or explicit join predicates) once both sides are bound.
* :class:`ProjectNode` — keep only the projected attributes.

Plans are pure descriptions; evaluation lives in
:mod:`repro.engine.executor` and cost prediction in
:mod:`repro.engine.cost_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..constraints.predicate import Predicate


@dataclass
class PlanNode:
    """Base class for plan nodes."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child nodes (empty for leaves)."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A human-readable, indented description of the plan subtree."""
        raise NotImplementedError

    def walk(self):
        """Yield this node and, recursively, every descendant."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """Scan one object class, optionally via an index."""

    class_name: str
    predicates: Tuple[Predicate, ...] = ()
    index_predicate: Optional[Predicate] = None

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        access = (
            f"IndexScan({self.index_predicate})"
            if self.index_predicate is not None
            else "Scan"
        )
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        return f"{pad}{access} {self.class_name} [filters: {filters}]"


@dataclass
class TraverseNode(PlanNode):
    """Traverse a relationship from the child plan's bound class."""

    child: PlanNode
    relationship: str
    source_class: str
    target_class: str
    pointer_attribute: str
    forward: bool
    predicates: Tuple[Predicate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        direction = "->" if self.forward else "<-"
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        lines = [
            f"{pad}Traverse {self.relationship} {self.source_class} {direction} "
            f"{self.target_class} [filters: {filters}]",
            self.child.explain(indent + 1),
        ]
        return "\n".join(lines)


@dataclass
class FilterNode(PlanNode):
    """Apply predicates that span more than one bound class."""

    child: PlanNode
    predicates: Tuple[Predicate, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        filters = ", ".join(str(p) for p in self.predicates) or "-"
        return "\n".join(
            [f"{pad}Filter [{filters}]", self.child.explain(indent + 1)]
        )


@dataclass
class ProjectNode(PlanNode):
    """Project result rows onto the requested attributes."""

    child: PlanNode
    projections: Tuple[str, ...] = ()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = ", ".join(self.projections) or "*"
        return "\n".join(
            [f"{pad}Project [{attrs}]", self.child.explain(indent + 1)]
        )


@dataclass
class QueryPlan:
    """A complete plan: the root node plus bookkeeping for explain output."""

    root: PlanNode
    class_order: Tuple[str, ...] = ()
    notes: List[str] = field(default_factory=list)

    def explain(self) -> str:
        """Multi-line explain output."""
        lines = [self.root.explain()]
        if self.notes:
            lines.append("notes: " + "; ".join(self.notes))
        return "\n".join(lines)

    def scan_nodes(self) -> List[ScanNode]:
        """All scan leaves of the plan."""
        return [node for node in self.root.walk() if isinstance(node, ScanNode)]

    def traverse_nodes(self) -> List[TraverseNode]:
        """All traversal nodes of the plan."""
        return [node for node in self.root.walk() if isinstance(node, TraverseNode)]

    def uses_index(self) -> bool:
        """Whether any scan in the plan goes through an index."""
        return any(node.index_predicate is not None for node in self.scan_nodes())


def plan_predicates(plan: QueryPlan) -> List[Predicate]:
    """All predicates applied anywhere in ``plan`` (for tests and traces)."""
    predicates: List[Predicate] = []
    for node in plan.root.walk():
        if isinstance(node, ScanNode):
            predicates.extend(node.predicates)
            if node.index_predicate is not None:
                predicates.append(node.index_predicate)
        elif isinstance(node, (TraverseNode, FilterNode)):
            predicates.extend(node.predicates)
    return predicates
