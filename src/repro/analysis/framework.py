"""Core of the static invariant checker: findings, passes, the context.

The checker is a small AST-level analysis framework purpose-built for this
codebase's contracts.  It deliberately is *not* a general linter: each
:class:`AnalysisPass` encodes one invariant the runtime oracles enforce
dynamically (engine exhaustiveness, lock discipline, determinism, wire
protocol coherence, metrics parity) so violations surface at review time
instead of after a 300-schedule oracle run — the same compile-time use of
integrity constraints the source paper applies to queries.

The moving parts:

* :class:`AnalysisContext` — the parsed module set of one package tree
  (every ``*.py`` under a package root), plus the docs directory and a
  lightweight **import graph** mapping each module to the package-internal
  modules it imports.  Passes never read files themselves; they ask the
  context, which is what makes the whole checker runnable against the
  fixture trees in ``tests/analysis`` exactly as against ``src/repro``.
* :class:`Finding` — one violation: rule id, file:line, the symbol it
  anchors to, and a human message.  The ``(rule, check, file, symbol)``
  fingerprint is line-number-free, so baselined findings survive unrelated
  edits to the same file.
* :class:`AnalysisPass` — the pass interface; concrete passes live in
  :mod:`repro.analysis.passes`.
* :func:`run_analysis` — run passes over a context, split the findings
  against a :class:`~repro.analysis.baseline.Baseline`, and return an
  :class:`AnalysisReport`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Finding:
    """One static-analysis violation.

    ``rule`` is the pass id (e.g. ``"determinism"``); ``check`` names the
    specific sub-invariant (e.g. ``"set-iteration"``); ``symbol`` is the
    enclosing definition (``Class.method`` or a module-level name), which
    keeps the fingerprint stable as line numbers drift.
    """

    rule: str
    check: str
    file: str
    line: int
    symbol: str
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.check, self.file, self.symbol)

    def location(self) -> str:
        """``file:line`` (line 0 means the finding is file-level)."""
        return f"{self.file}:{self.line}" if self.line else self.file


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module of the analyzed package."""

    relpath: str
    path: Path
    tree: ast.Module
    source: str


class AnalysisContext:
    """The parsed package tree every pass runs against.

    Parameters
    ----------
    package_root:
        Directory of the package to analyze (the ``repro`` package dir).
    docs_root:
        Optional directory holding the reference docs the protocol-drift
        pass cross-checks (``docs/`` at the repo root); ``None`` disables
        doc checks, which is what fixture trees without docs want.
    """

    def __init__(
        self, package_root: Path, docs_root: Optional[Path] = None
    ) -> None:
        self.package_root = Path(package_root)
        self.docs_root = Path(docs_root) if docs_root is not None else None
        self.modules: Dict[str, ModuleInfo] = {}
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        for path in sorted(self.package_root.rglob("*.py")):
            relpath = path.relative_to(self.package_root).as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:  # surfaced as a finding by run_analysis
                raise AnalysisError(
                    f"cannot parse {relpath}: {exc}"
                ) from None
            self.modules[relpath] = ModuleInfo(
                relpath=relpath, path=path, tree=tree, source=source
            )

    # ------------------------------------------------------------------
    # Module lookup
    # ------------------------------------------------------------------
    def module(self, relpath: str) -> Optional[ModuleInfo]:
        """The module at ``relpath`` (e.g. ``"engine/plan.py"``), if present."""
        return self.modules.get(relpath)

    def in_dir(self, prefix: str) -> List[ModuleInfo]:
        """Every module under ``prefix`` (e.g. ``"engine/"``), sorted."""
        return [
            info
            for relpath, info in sorted(self.modules.items())
            if relpath.startswith(prefix)
        ]

    def doc_text(self, name: str) -> Optional[str]:
        """The text of ``docs_root/name`` when the docs root is configured."""
        if self.docs_root is None:
            return None
        path = self.docs_root / name
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------
    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """Package-internal imports: module relpath -> imported relpaths.

        Relative imports are resolved against the importing module's
        package; absolute imports are matched when their tail resolves to
        a module in the tree.  Imports of package ``__init__`` facades
        resolve to the facade file, so "who imports the engine at all"
        questions stay answerable.
        """
        if self._import_graph is None:
            self._import_graph = {
                relpath: self._imports_of(info)
                for relpath, info in self.modules.items()
            }
        return self._import_graph

    def importers_of(self, relpath: str) -> List[str]:
        """Modules whose import set contains ``relpath``, sorted."""
        return sorted(
            importer
            for importer, imported in self.import_graph.items()
            if relpath in imported
        )

    def _imports_of(self, info: ModuleInfo) -> Set[str]:
        package_parts = info.relpath.split("/")[:-1]
        resolved: Set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[: len(package_parts) - (node.level - 1)]
                    module_parts = base + (
                        node.module.split(".") if node.module else []
                    )
                else:
                    module_parts = (node.module or "").split(".")
                target = self._resolve(module_parts)
                if target is not None:
                    resolved.add(target)
                else:
                    # ``from .package import module`` names modules in the
                    # import list rather than the dotted path.
                    for alias in node.names:
                        target = self._resolve(module_parts + [alias.name])
                        if target is not None:
                            resolved.add(target)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._resolve(alias.name.split("."))
                    if target is not None:
                        resolved.add(target)
        resolved.discard(info.relpath)
        return resolved

    def _resolve(self, parts: Sequence[str]) -> Optional[str]:
        """Map dotted-name parts onto a module relpath in this tree."""
        parts = [part for part in parts if part]
        if not parts:
            return None
        # Strip a leading package name matching the root directory name.
        if parts[0] == self.package_root.name:
            parts = parts[1:] or parts
        for candidate in (
            "/".join(parts) + ".py",
            "/".join(parts) + "/__init__.py",
        ):
            if candidate in self.modules:
                return candidate
        return None


class AnalysisError(Exception):
    """A configuration/parse problem that prevents analysis from running."""


class AnalysisPass:
    """Base class for concrete invariant passes.

    Subclasses set ``rule`` (the stable rule id findings carry) and
    ``description`` (one line for ``--list-rules`` and the docs) and
    implement :meth:`run`.
    """

    rule: str = ""
    description: str = ""

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        """Yield every violation of this pass's invariant in ``context``."""
        raise NotImplementedError

    def finding(
        self, check: str, file: str, line: int, symbol: str, message: str
    ) -> Finding:
        """Convenience constructor stamping this pass's rule id."""
        return Finding(
            rule=self.rule,
            check=check,
            file=file,
            line=line,
            symbol=symbol,
            message=message,
        )


@dataclass
class AnalysisReport:
    """The outcome of one analysis run.

    ``new`` are unbaselined findings (the gate: non-empty fails CI);
    ``baselined`` were matched — and silenced — by a baseline entry;
    ``stale_entries`` are baseline entries that matched nothing, reported
    so the baseline cannot silently rot.
    """

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Tuple[Finding, "object"]] = field(default_factory=list)
    stale_entries: List["object"] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the tree is clean modulo the baseline."""
        return not self.new


def run_analysis(
    context: AnalysisContext,
    passes: Sequence[AnalysisPass],
    baseline: Optional["object"] = None,
) -> AnalysisReport:
    """Run ``passes`` over ``context`` and split findings by the baseline."""
    findings: List[Finding] = []
    for analysis_pass in passes:
        findings.extend(analysis_pass.run(context))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.check, f.symbol))
    report = AnalysisReport(
        findings=findings,
        rules_run=tuple(p.rule for p in passes),
    )
    if baseline is None:
        report.new = list(findings)
        return report
    new, baselined, stale = baseline.split(findings)
    report.new = new
    report.baselined = baselined
    report.stale_entries = stale
    return report
