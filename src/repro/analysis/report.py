"""Text and JSON reporters for analysis runs.

The text form is what humans read in a terminal/CI log; the JSON form is
the machine artifact CI uploads (and what ``--output`` writes), carrying
enough structure to regenerate baseline entries by hand.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .framework import AnalysisReport, Finding


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "check": finding.check,
        "file": finding.file,
        "line": finding.line,
        "symbol": finding.symbol,
        "message": finding.message,
    }


def report_to_dict(report: AnalysisReport) -> Dict[str, object]:
    """The JSON-serializable shape of a run, used by ``--format json``."""
    return {
        "ok": report.ok,
        "rules_run": list(report.rules_run),
        "counts": {
            "total": len(report.findings),
            "new": len(report.new),
            "baselined": len(report.baselined),
            "stale_baseline_entries": len(report.stale_entries),
        },
        "new": [_finding_dict(f) for f in report.new],
        "baselined": [
            {**_finding_dict(f), "justification": entry.justification}
            for f, entry in report.baselined
        ],
        "stale_baseline_entries": [
            {
                "rule": entry.rule,
                "check": entry.check,
                "file": entry.file,
                "symbol": entry.symbol,
                "justification": entry.justification,
            }
            for entry in report.stale_entries
        ],
    }


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True) + "\n"


def render_text(report: AnalysisReport) -> str:
    """Human-readable run summary: one line per finding, then totals."""
    lines: List[str] = []
    for finding in report.new:
        lines.append(
            f"{finding.location()}: [{finding.rule}/{finding.check}]"
            f" {finding.symbol}: {finding.message}"
        )
    if report.baselined:
        lines.append("")
        lines.append(f"baselined ({len(report.baselined)}):")
        for finding, entry in report.baselined:
            lines.append(
                f"  {finding.location()}: [{finding.rule}/{finding.check}]"
                f" {finding.symbol} — {entry.justification}"
            )
    if report.stale_entries:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(report.stale_entries)}) —"
            " remove them from analysis-baseline.json:"
        )
        for entry in report.stale_entries:
            lines.append(
                f"  [{entry.rule}/{entry.check}] {entry.file} :: {entry.symbol}"
            )
    lines.append("")
    verdict = "clean" if report.ok else "FAILED"
    lines.append(
        f"analysis {verdict}: {len(report.new)} new,"
        f" {len(report.baselined)} baselined,"
        f" {len(report.stale_entries)} stale baseline entries"
        f" ({len(report.rules_run)} rules)"
    )
    return "\n".join(lines).lstrip("\n") + "\n"
