"""Command-line driver: ``python -m repro.analysis`` / ``repro-cli lint``.

Exit codes: ``0`` clean (modulo baseline), ``1`` unbaselined findings,
``2`` configuration problems (bad baseline, unknown rule, parse error).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .framework import AnalysisContext, AnalysisError, run_analysis
from .passes import all_passes
from .report import render_json, render_text

#: ``src/repro`` — the package this checker ships inside, which is also
#: its default analysis target.
DEFAULT_PACKAGE_ROOT = Path(__file__).resolve().parents[1]


def _default_repo_root(package_root: Path) -> Path:
    """``src/repro`` -> the repository root two levels up."""
    return package_root.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Statically check the repo's engine, locking, determinism, "
            "wire-protocol and metrics-parity invariants."
        ),
    )
    parser.add_argument(
        "--package-root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--docs-root",
        type=Path,
        default=None,
        help="docs directory for protocol-drift doc checks "
        "(default: <repo>/docs next to the default package root; "
        "pass a nonexistent path to disable)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON of grandfathered findings "
        "(default: <repo>/analysis-baseline.json for the default package root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the JSON report to this path (CI artifact)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rule ids and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    passes = all_passes()
    if args.list_rules:
        for analysis_pass in passes:
            print(f"{analysis_pass.rule}: {analysis_pass.description}")
        return 0

    if args.rule:
        known = {p.rule for p in passes}
        unknown = sorted(set(args.rule) - known)
        if unknown:
            print(
                f"unknown rule(s): {', '.join(unknown)}"
                f" (known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        passes = [p for p in passes if p.rule in set(args.rule)]

    defaulted = args.package_root is None
    package_root = (args.package_root or DEFAULT_PACKAGE_ROOT).resolve()
    if not package_root.is_dir():
        print(f"package root {package_root} is not a directory", file=sys.stderr)
        return 2

    docs_root = args.docs_root
    baseline_path = args.baseline
    if defaulted:
        # Only the in-repo default target inherits the repo's docs and
        # baseline; explicit fixture trees start from nothing.
        repo_root = _default_repo_root(package_root)
        if docs_root is None:
            docs_root = repo_root / "docs"
        if baseline_path is None:
            baseline_path = repo_root / "analysis-baseline.json"
    if docs_root is not None and not Path(docs_root).is_dir():
        docs_root = None

    try:
        baseline = Baseline.load(baseline_path)
        context = AnalysisContext(package_root, docs_root=docs_root)
        report = run_analysis(context, passes, baseline)
    except AnalysisError as exc:
        print(f"analysis error: {exc}", file=sys.stderr)
        return 2

    if args.output is not None:
        args.output.write_text(render_json(report), encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(render_json(report))
    else:
        sys.stdout.write(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
