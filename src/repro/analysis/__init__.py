"""Static invariant checker for the repro codebase.

An AST-based analysis framework plus five concrete passes that enforce
the contracts the runtime oracles can only check dynamically: engine
exhaustiveness (``engine-contract``), readers-writer lock discipline
(``lock-discipline``), cross-process determinism (``determinism``),
wire-protocol coherence (``protocol-drift``) and the metrics surface
(``metrics-parity-surface``).  See ``docs/analysis.md`` for the rule
catalogue and ``python -m repro.analysis --help`` for the driver.
"""

from .baseline import Baseline, BaselineEntry
from .framework import (
    AnalysisContext,
    AnalysisError,
    AnalysisPass,
    AnalysisReport,
    Finding,
    run_analysis,
)
from .passes import all_passes
from .report import render_json, render_text, report_to_dict

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisPass",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "all_passes",
    "render_json",
    "render_text",
    "report_to_dict",
    "run_analysis",
]
